//! Geo-tiered edge/origin delivery: the whole workspace composed into
//! one scenario (E16).
//!
//! The paper's thesis is *holistic* design — storage, network, and
//! client layers co-designed rather than optimised per layer. This
//! module is the composition: a per-region [`ClusterSim`] fleet of
//! edge servers fronts one shared origin uplink, and every layer of
//! the workspace does the job it was built for:
//!
//! * **Content popularity** is Zipf over a fixed catalog with a
//!   deterministic hot-set *churn* process ([`ContentModel`]): every
//!   churn epoch the rank→id mapping rotates, so yesterday's cached
//!   hot set goes cold and the edge caches re-fill through the origin.
//! * **Edge caching** is plain LRU per region; a miss must *fetch
//!   through the shared origin*, whose uplink is guarded by the same
//!   M/M/1/K [`AdmissionController`] predictor the servers use — an
//!   over-subscribed origin rejects fetches outright (the flash-crowd
//!   failure mode of a flat fleet).
//! * **Arrivals** are the [`ArrivalProcess::FlashCrowd`] process:
//!   self-similar session arrivals shaped by a per-region diurnal
//!   envelope (timezone-shifted) with superimposed flash-crowd spikes.
//! * **The last hop** is device-class aware ([`DeviceClass`]): wired
//!   clients take a constant-energy NIC path, wireless clients pay the
//!   `dms-wireless` adaptive-modulation energy plus the JSCC-chosen
//!   FEC decoder energy at their tier's channel gain, and mesh clients
//!   pay the `dms-manet` multi-hop relay energy of an actual routed
//!   path. Each class decodes a capped number of `dms-media` FGS
//!   layers, so the bits shipped on the last hop are matched to what
//!   the device can use ([`ClassMix`]).
//!
//! Serving from the edge is worth real joules: the edge AP sees a
//! better channel (higher gain → cheaper modulation), the mesh
//! gateway is fewer hops away, and a cache hit skips the core-network
//! transit entirely. [`LastHopEnergy::derive`] computes all of those
//! numbers *from the underlying models* rather than hard-coding them.
//!
//! Determinism contract: workload generation and the cache/origin pass
//! are sequential; the per-region fleet runs fan out on a
//! [`ParRunner`] and are merged in region order (each fleet internally
//! fans out per shard the same way), so a [`TieredReport`] is
//! byte-identical at any `DMS_THREADS`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dms_manet::{routing, Manet, Protocol, RadioParams};
use dms_media::ImageModel;
use dms_serve::workload::SessionRequest;
use dms_serve::{
    AdmissionController, AdmissionPolicy, ArrivalProcess, CapacityModel, ServeError,
    SessionTemplate, Workload,
};
use dms_sim::{MetricsRegistry, ParRunner, SimRng};
use dms_wireless::jscc::CodecEnergy;
use dms_wireless::{AdaptivePolicy, JsccOptimizer, Modulation, Transceiver};
use serde::{Deserialize, Serialize};

use crate::cluster::{ClusterConfig, ClusterReport, ClusterSim};

/// Number of device classes ([`DeviceClass::ALL`]).
pub const DEVICE_CLASSES: usize = 3;

/// The client population of a region, by last-hop technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Fixed broadband: constant per-bit NIC energy, decodes every
    /// FGS layer.
    Wired,
    /// WLAN/cellular: adaptive-modulation transmit energy plus the
    /// JSCC-chosen FEC decoder energy at the tier's channel gain.
    Wireless,
    /// Ad-hoc mesh: multi-hop relay energy over a routed `dms-manet`
    /// path to the tier's gateway.
    Mesh,
}

impl DeviceClass {
    /// Every class, in canonical (index) order.
    pub const ALL: [DeviceClass; DEVICE_CLASSES] =
        [DeviceClass::Wired, DeviceClass::Wireless, DeviceClass::Mesh];

    /// Canonical index into per-class arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            DeviceClass::Wired => 0,
            DeviceClass::Wireless => 1,
            DeviceClass::Mesh => 2,
        }
    }

    /// Stable lower-case label for reports and metrics scopes.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Wired => "wired",
            DeviceClass::Wireless => "wireless",
            DeviceClass::Mesh => "mesh",
        }
    }
}

/// Zipf content popularity with deterministic hot-set churn.
///
/// Requests draw a popularity *rank* from a Zipf(`zipf_exponent`)
/// distribution over `catalog_size` items; the rank maps to a content
/// id through a rotation that advances every `churn_period_slots`
/// slots by `churn_stride` positions. Caches hold content *ids*, so
/// each rotation re-labels the hot set and previously-cached items go
/// cold — a deterministic stand-in for trending-content turnover.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentModel {
    /// Distinct content items.
    pub catalog_size: u64,
    /// Zipf skew `s` in `rank^-s` (`> 0`; ~1 for web-like popularity).
    pub zipf_exponent: f64,
    /// Slots between hot-set rotations; `0` disables churn.
    pub churn_period_slots: u64,
    /// Positions the rank→id mapping rotates per churn epoch.
    pub churn_stride: u64,
}

impl ContentModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.catalog_size == 0 || self.catalog_size > 10_000_000 {
            return Err(ServeError::InvalidParameter("catalog_size"));
        }
        if !(self.zipf_exponent.is_finite() && self.zipf_exponent > 0.0) {
            return Err(ServeError::InvalidParameter("zipf_exponent"));
        }
        if self.churn_period_slots > 0 && self.churn_stride == 0 {
            return Err(ServeError::InvalidParameter("churn_stride"));
        }
        Ok(())
    }

    /// The content id a popularity rank resolves to at `slot`.
    #[must_use]
    pub fn content_id(&self, rank: u64, slot: u64) -> u64 {
        debug_assert!(rank < self.catalog_size);
        if self.churn_period_slots == 0 {
            return rank;
        }
        let epoch = slot / self.churn_period_slots;
        (rank + epoch.wrapping_mul(self.churn_stride)) % self.catalog_size
    }
}

/// Inverse-CDF sampler for the Zipf rank distribution of a
/// [`ContentModel`]. Built once (O(catalog)), sampled in O(log catalog).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precomputes the cumulative rank weights `rank^-s`.
    ///
    /// # Errors
    ///
    /// Propagates [`ContentModel::validate`].
    pub fn new(model: &ContentModel) -> Result<Self, ServeError> {
        model.validate()?;
        let mut cdf = Vec::with_capacity(model.catalog_size as usize);
        let mut acc = 0.0f64;
        for rank in 0..model.catalog_size {
            acc += ((rank + 1) as f64).powf(-model.zipf_exponent);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        Ok(ZipfSampler { cdf })
    }

    /// Draws a popularity rank in `0..catalog_size` (one uniform).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.uniform();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Per-device-class population weights and FGS decode ceilings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Relative population weight per [`DeviceClass`] (index order).
    pub weights: [f64; DEVICE_CLASSES],
    /// FGS enhancement layers each class can decode — bits past this
    /// are never shipped on the last hop.
    pub layers: [usize; DEVICE_CLASSES],
}

impl ClassMix {
    /// A broadband-heavy default: 35 % wired (full quality), 45 %
    /// wireless (all but one layer), 20 % mesh (base + one layer).
    #[must_use]
    pub fn streaming_default(template: &SessionTemplate) -> Self {
        ClassMix {
            weights: [0.35, 0.45, 0.20],
            layers: [
                template.max_layers,
                template.max_layers.saturating_sub(1).max(1),
                1,
            ],
        }
    }

    /// Validates the mix.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if !self.weights.iter().all(|w| w.is_finite() && *w >= 0.0)
            || self.weights.iter().sum::<f64>() <= 0.0
        {
            return Err(ServeError::InvalidParameter("weights"));
        }
        Ok(())
    }
}

/// Joules per delivered bit on the last hop, per device class, per
/// serving tier — plus the core-network transit cost an origin fetch
/// pays. Derived from the `dms-wireless` and `dms-manet` energy
/// models by [`LastHopEnergy::derive`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LastHopEnergy {
    /// J/bit when the serving point is client-proximate (edge tier).
    pub edge_j_per_bit: [f64; DEVICE_CLASSES],
    /// J/bit when serving origin-direct (flat fleet, far gateway).
    pub origin_j_per_bit: [f64; DEVICE_CLASSES],
    /// Core-network transit J/bit charged for every bit fetched
    /// through the origin (cache hits skip this entirely).
    pub transit_j_per_bit: f64,
}

/// Channel gain a client of an *edge* AP sees, dB (short range).
const EDGE_GAIN_DB: f64 = 24.0;
/// Channel gain on the origin-direct macro hop, dB (long range).
const ORIGIN_GAIN_DB: f64 = 12.0;
/// Wired NIC energy, J/bit (edge) — an access switch hop.
const WIRED_EDGE_J_PER_BIT: f64 = 10e-9;
/// Wired path J/bit origin-direct — metro aggregation adds hops.
const WIRED_ORIGIN_J_PER_BIT: f64 = 25e-9;
/// Core-network transit J/bit for origin fetches.
const TRANSIT_J_PER_BIT: f64 = 15e-9;
/// Bits probed through the mesh when measuring per-bit route cost.
const MESH_PROBE_BITS: u64 = 1_000_000;

impl LastHopEnergy {
    /// Derives the per-class energy table from the workspace's own
    /// models:
    ///
    /// * **Wireless** — [`AdaptivePolicy::choose`] picks the cheapest
    ///   modulation/power meeting a 1e-5 BER at the tier's gain
    ///   (`EDGE_GAIN_DB` vs `ORIGIN_GAIN_DB`); on outage the radio
    ///   falls back to BPSK at maximum power. The JSCC optimiser's FEC
    ///   choice at the same gain adds its Viterbi decoder energy.
    /// * **Mesh** — a seeded [`Manet::random_deployment`] routed with
    ///   [`Protocol::BatteryCost`]: the edge gateway is the nearest
    ///   routable node outside the source's own radio cell, the origin
    ///   gateway the farthest routable node; per-bit cost is the
    ///   charged route energy over a probe transfer.
    /// * **Wired** — documented constants (access switch vs metro
    ///   aggregation path).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] if an underlying model
    /// rejects its (fixed) parameters — never in practice.
    pub fn derive(seed: u64) -> Result<Self, ServeError> {
        let radio =
            Transceiver::default_radio().map_err(|_| ServeError::InvalidParameter("radio"))?;
        let policy =
            AdaptivePolicy::new(1e-5).map_err(|_| ServeError::InvalidParameter("target_ber"))?;
        let image =
            ImageModel::new(352, 288, 2500.0).map_err(|_| ServeError::InvalidParameter("image"))?;
        let jscc = JsccOptimizer::new(image, radio, 30.0)
            .map_err(|_| ServeError::InvalidParameter("target_psnr"))?;
        let acs_op_j = CodecEnergy::default().acs_op_j;
        let wireless = |gain_db: f64| -> f64 {
            let tx = policy.choose(&radio, gain_db).map_or_else(
                || radio.energy_per_bit_j(Modulation::Bpsk, radio.max_tx_power_w),
                |c| c.energy_j,
            );
            let fec_decode = jscc
                .optimize(gain_db)
                .map_or(0.0, |c| c.fec.decoder_energy_per_bit_j(acs_op_j));
            tx + fec_decode
        };

        let mut rng = SimRng::new(seed).substream("tier-mesh", 0);
        let net = Manet::random_deployment(40, 600.0, 1_000.0, RadioParams::default(), &mut rng)
            .map_err(|_| ServeError::InvalidParameter("mesh"))?;
        let mesh_cost = |target_far: bool| -> f64 {
            // Candidate gateways sorted by distance from the source
            // node; near-but-multi-hop for the edge tier, farthest for
            // origin-direct. First routable candidate wins, so the
            // choice is deterministic in the deployment.
            let src = 0usize;
            let src_node = net.node(src).expect("node 0 exists");
            let mut by_distance: Vec<(usize, f64)> = (1..net.node_count())
                .map(|i| (i, src_node.distance_to(net.node(i).expect("node exists"))))
                .collect();
            by_distance.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
            if target_far {
                by_distance.reverse();
            } else {
                // Skip direct neighbours: an edge gateway still relays.
                let range = net.radio().range_m;
                by_distance.retain(|&(_, d)| d > range);
            }
            for (dst, _) in by_distance {
                if let Some(path) =
                    routing::route(&net, Protocol::BatteryCost, src, dst, MESH_PROBE_BITS)
                {
                    let mut probe_net = net.clone();
                    let joules = routing::charge_route(&mut probe_net, &path, MESH_PROBE_BITS);
                    return joules / MESH_PROBE_BITS as f64;
                }
            }
            // Disconnected deployment: fall back to one max-range hop.
            let r = net.radio();
            (r.tx_energy_j(MESH_PROBE_BITS, r.range_m) + r.rx_energy_j(MESH_PROBE_BITS))
                / MESH_PROBE_BITS as f64
        };

        Ok(LastHopEnergy {
            edge_j_per_bit: [
                WIRED_EDGE_J_PER_BIT,
                wireless(EDGE_GAIN_DB),
                mesh_cost(false),
            ],
            origin_j_per_bit: [
                WIRED_ORIGIN_J_PER_BIT,
                wireless(ORIGIN_GAIN_DB),
                mesh_cost(true),
            ],
            transit_j_per_bit: TRANSIT_J_PER_BIT,
        })
    }

    /// Validates the table.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] on a non-finite or
    /// negative entry.
    pub fn validate(&self) -> Result<(), ServeError> {
        let ok = |x: f64| x.is_finite() && x >= 0.0;
        if !self
            .edge_j_per_bit
            .iter()
            .chain(&self.origin_j_per_bit)
            .all(|&x| ok(x))
            || !ok(self.transit_j_per_bit)
        {
            return Err(ServeError::InvalidParameter("j_per_bit"));
        }
        Ok(())
    }
}

/// One geographic region: an edge fleet, its arrival process, and its
/// cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionConfig {
    /// The region's `dms-cluster` fleet (shards + balancer + recovery).
    pub fleet: ClusterConfig,
    /// How this region's sessions arrive (typically
    /// [`ArrivalProcess::FlashCrowd`] with a per-region diurnal phase).
    pub arrivals: ArrivalProcess,
    /// LRU cache capacity in content items; `0` disables caching (the
    /// flat-baseline arm: every session fetches through the origin).
    pub cache_items: usize,
    /// Whether the serving point is client-proximate: `true` bills the
    /// last hop at [`LastHopEnergy::edge_j_per_bit`], `false` (a flat
    /// central fleet) at [`LastHopEnergy::origin_j_per_bit`].
    pub proximate: bool,
}

/// The full tiered-delivery scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieredConfig {
    /// Edge regions (≥ 1).
    pub regions: Vec<RegionConfig>,
    /// Media profile all sessions stream.
    pub template: SessionTemplate,
    /// Horizon, slots.
    pub slots: u64,
    /// Popularity + churn process.
    pub content: ContentModel,
    /// The shared origin uplink the M/M/1/K predictor guards: a cache
    /// miss reserves the session's full-quality demand here for its
    /// whole holding time.
    pub origin: CapacityModel,
    /// Device-class population and FGS decode ceilings.
    pub classes: ClassMix,
    /// Last-hop energy table (see [`LastHopEnergy::derive`]).
    pub energy: LastHopEnergy,
    /// Master seed. Region `r`'s workload is generated with seed
    /// `seed + r`; content/class draws use labelled substreams of
    /// `seed`.
    pub seed: u64,
}

impl TieredConfig {
    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field; propagates nested validations.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.regions.is_empty() {
            return Err(ServeError::InvalidParameter("regions"));
        }
        if self.slots == 0 {
            return Err(ServeError::InvalidParameter("slots"));
        }
        for region in &self.regions {
            region.fleet.validate()?;
        }
        self.template.validate()?;
        self.content.validate()?;
        self.origin.validate()?;
        self.classes.validate()?;
        self.energy.validate()?;
        Ok(())
    }
}

/// Per-session content/class draw, made at generation time so the
/// cache pass never touches the rng (draws are a pure function of the
/// config, independent of cache or origin state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionDraw {
    /// Zipf popularity rank in `0..catalog_size`.
    pub rank: u64,
    /// The requesting device's class.
    pub class: DeviceClass,
}

/// Last-hop accounting for one device class of one region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// The class.
    pub class: DeviceClass,
    /// Sessions of this class that reached the region fleet.
    pub sessions: u64,
    /// Estimated served session-slots attributed to this class (fleet
    /// session-slots split by offered per-class holding time).
    pub est_session_slots: f64,
    /// Bits shipped per session-slot on the last hop: the fleet's mean
    /// delivered bits capped at the class's FGS decode ceiling.
    pub ship_bits_per_slot: u64,
    /// [`SessionTemplate::utility`] of the shipped bits, `[0, 1]`.
    pub utility: f64,
    /// Last-hop energy, joules.
    pub energy_j: f64,
}

/// One region's end-to-end report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionReport {
    /// Sessions the region's workload offered.
    pub offered: u64,
    /// Sessions answered from the region cache.
    pub edge_hits: u64,
    /// Cache misses the origin admitted (fetched through the uplink).
    pub origin_fetches: u64,
    /// Cache misses the origin predictor refused — lost demand.
    pub origin_rejected: u64,
    /// Bits of origin-fetch traffic (full demand × holding time).
    pub fetched_bits: u64,
    /// The region fleet's own report (admission, scheduling, QoS).
    pub fleet: ClusterReport,
    /// Per-device-class last-hop accounting.
    pub classes: Vec<ClassReport>,
    /// Session-slot-weighted mean last-hop utility, `[0, 1]`.
    pub last_hop_utility: f64,
    /// Core-network transit energy for this region's fetches, joules.
    pub transit_energy_j: f64,
    /// Total delivery energy: per-class last hop + transit, joules.
    pub energy_j: f64,
}

impl RegionReport {
    /// Conservation check: every offered session is exactly one of
    /// hit / fetched / rejected.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.edge_hits + self.origin_fetches + self.origin_rejected == self.offered
    }
}

/// The tiered scenario's end-to-end report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieredReport {
    /// Per-region reports, in region order.
    pub regions: Vec<RegionReport>,
    /// Mean origin uplink occupancy over the horizon, bits/slot.
    pub origin_mean_active_bits: f64,
    /// Per-slot origin uplink occupancy (bits reserved), for run-logs.
    pub origin_series: Vec<f64>,
    /// The origin uplink capacity the series is measured against.
    pub origin_capacity_bits_per_slot: u64,
    /// Horizon, slots.
    pub slots: u64,
}

impl TieredReport {
    /// Sessions offered across all regions.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.regions.iter().map(|r| r.offered).sum()
    }

    /// Cache hits across all regions.
    #[must_use]
    pub fn edge_hits(&self) -> u64 {
        self.regions.iter().map(|r| r.edge_hits).sum()
    }

    /// Origin-admitted fetches across all regions.
    #[must_use]
    pub fn origin_fetches(&self) -> u64 {
        self.regions.iter().map(|r| r.origin_fetches).sum()
    }

    /// Origin-refused sessions across all regions.
    #[must_use]
    pub fn origin_rejected(&self) -> u64 {
        self.regions.iter().map(|r| r.origin_rejected).sum()
    }

    /// Fraction of offered sessions answered from an edge cache.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            return 0.0;
        }
        self.edge_hits() as f64 / offered as f64
    }

    /// Mean origin uplink load: reserved bits over capacity, `ρ`-like.
    #[must_use]
    pub fn origin_load(&self) -> f64 {
        if self.origin_capacity_bits_per_slot == 0 {
            return 0.0;
        }
        self.origin_mean_active_bits / self.origin_capacity_bits_per_slot as f64
    }

    /// Deadline-miss rate across every region fleet.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let slots: u64 = self.regions.iter().map(|r| r.fleet.session_slots()).sum();
        if slots == 0 {
            return 0.0;
        }
        let misses: u64 = self.regions.iter().map(|r| r.fleet.deadline_misses()).sum();
        misses as f64 / slots as f64
    }

    /// Session-slot-weighted mean last-hop utility, `[0, 1]`. Unlike
    /// the fleet's own mean utility this includes the device-class FGS
    /// truncation of the last hop.
    #[must_use]
    pub fn mean_utility(&self) -> f64 {
        let mut weight = 0.0;
        let mut acc = 0.0;
        for region in &self.regions {
            let w = region.fleet.session_slots() as f64;
            weight += w;
            acc += w * region.last_hop_utility;
        }
        if weight == 0.0 {
            return 0.0;
        }
        acc / weight
    }

    /// Total delivered utility: each region's last-hop utility summed
    /// over its served session-slots. Unlike [`TieredReport::mean_utility`]
    /// this is *volume-sensitive* — sessions an arm sheds at the origin
    /// are utility it never delivers.
    #[must_use]
    pub fn delivered_utility(&self) -> f64 {
        self.regions
            .iter()
            .map(|r| r.last_hop_utility * r.fleet.session_slots() as f64)
            .sum()
    }

    /// Total delivery energy (last hop + transit), joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.regions.iter().map(|r| r.energy_j).sum()
    }

    /// Bits delivered by every region fleet.
    #[must_use]
    pub fn delivered_bits(&self) -> u64 {
        self.regions.iter().map(|r| r.fleet.delivered_bits()).sum()
    }

    /// Delivery energy per fleet-delivered bit, J/bit.
    #[must_use]
    pub fn energy_per_bit(&self) -> f64 {
        let bits = self.delivered_bits();
        if bits == 0 {
            return 0.0;
        }
        self.total_energy_j() / bits as f64
    }

    /// Exports counters/gauges under `scope` plus per-region scopes.
    pub fn export(&self, registry: &mut MetricsRegistry, scope: &str) {
        {
            let mut s = registry.scoped(scope);
            s.counter_add("offered", self.offered());
            s.counter_add("edge_hits", self.edge_hits());
            s.counter_add("origin_fetches", self.origin_fetches());
            s.counter_add("origin_rejected", self.origin_rejected());
            s.gauge_set("hit_ratio", self.hit_ratio());
            s.gauge_set("origin_load", self.origin_load());
            s.gauge_set("miss_rate", self.miss_rate());
            s.gauge_set("mean_utility", self.mean_utility());
            s.gauge_set("delivered_utility", self.delivered_utility());
            s.gauge_set("energy_j", self.total_energy_j());
            s.gauge_set("energy_j_per_bit", self.energy_per_bit());
        }
        for (i, region) in self.regions.iter().enumerate() {
            let region_scope = format!("{scope}/region{i}");
            {
                let mut s = registry.scoped(&region_scope);
                s.counter_add("offered", region.offered);
                s.counter_add("edge_hits", region.edge_hits);
                s.counter_add("origin_fetches", region.origin_fetches);
                s.counter_add("origin_rejected", region.origin_rejected);
                s.counter_add("fetched_bits", region.fetched_bits);
                s.gauge_set("last_hop_utility", region.last_hop_utility);
                s.gauge_set("energy_j", region.energy_j);
            }
            for class in &region.classes {
                let mut s = registry.scoped(&format!("{region_scope}/{}", class.class.name()));
                s.counter_add("sessions", class.sessions);
                s.gauge_set("ship_bits_per_slot", class.ship_bits_per_slot as f64);
                s.gauge_set("utility", class.utility);
                s.gauge_set("energy_j", class.energy_j);
            }
            region
                .fleet
                .export(registry, &format!("{region_scope}/fleet"));
        }
    }
}

/// A per-region LRU cache of content ids. Region caches are a few
/// hundred items, so a recency-ordered `Vec` beats pointer-chasing.
#[derive(Debug, Clone)]
struct LruCache {
    items: Vec<u64>,
    cap: usize,
}

impl LruCache {
    fn new(cap: usize) -> Self {
        LruCache {
            items: Vec::with_capacity(cap),
            cap,
        }
    }

    /// Hit check + recency promotion.
    fn touch(&mut self, id: u64) -> bool {
        match self.items.iter().position(|&x| x == id) {
            Some(pos) => {
                let v = self.items.remove(pos);
                self.items.push(v);
                true
            }
            None => false,
        }
    }

    /// Inserts (evicting the least-recently used item when full).
    fn insert(&mut self, id: u64) {
        if self.cap == 0 {
            return;
        }
        if self.items.len() == self.cap {
            self.items.remove(0);
        }
        self.items.push(id);
    }
}

/// The tiered-delivery simulator.
#[derive(Debug, Clone)]
pub struct TieredSim {
    config: TieredConfig,
    zipf: ZipfSampler,
}

impl TieredSim {
    /// Builds a simulator after validating `config`.
    ///
    /// # Errors
    ///
    /// Propagates [`TieredConfig::validate`].
    pub fn new(config: TieredConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let zipf = ZipfSampler::new(&config.content)?;
        Ok(TieredSim { config, zipf })
    }

    /// The validated configuration.
    #[must_use]
    pub fn config(&self) -> &TieredConfig {
        &self.config
    }

    /// Generates every region's workload and its per-session
    /// content/class draws. Pure function of the config: region `r`
    /// uses workload seed `seed + r` and the labelled draw substream
    /// `("tier-draws", r)`.
    ///
    /// # Errors
    ///
    /// Propagates workload generation errors.
    pub fn generate(&self) -> Result<(Vec<Workload>, Vec<Vec<SessionDraw>>), ServeError> {
        let mut workloads = Vec::with_capacity(self.config.regions.len());
        let mut draws = Vec::with_capacity(self.config.regions.len());
        let master = SimRng::new(self.config.seed);
        for (r, region) in self.config.regions.iter().enumerate() {
            let workload = Workload::generate(
                region.arrivals,
                self.config.template,
                self.config.slots,
                self.config.seed + r as u64,
            )?;
            let mut rng = master.substream("tier-draws", r as u64);
            let session_draws = workload
                .sessions
                .iter()
                .map(|_| {
                    let rank = self.zipf.sample(&mut rng);
                    let class = DeviceClass::ALL[rng
                        .weighted_choice(&self.config.classes.weights)
                        .expect("validated weights")];
                    SessionDraw { rank, class }
                })
                .collect();
            workloads.push(workload);
            draws.push(session_draws);
        }
        Ok((workloads, draws))
    }

    /// Generates the configured workloads and runs them end to end.
    ///
    /// # Errors
    ///
    /// Propagates generation and fleet-run errors.
    pub fn run(&self) -> Result<TieredReport, ServeError> {
        let (workloads, draws) = self.generate()?;
        self.run_on(&workloads, &draws)
    }

    /// Runs explicit per-region workloads/draws end to end. The E16
    /// flat-baseline arm uses this to offer the *same* sessions and
    /// content draws to a single central fleet that the tiered arm
    /// splits across regions.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] on a length mismatch
    /// with the configured regions; propagates fleet-run errors.
    pub fn run_on(
        &self,
        workloads: &[Workload],
        draws: &[Vec<SessionDraw>],
    ) -> Result<TieredReport, ServeError> {
        let regions = &self.config.regions;
        if workloads.len() != regions.len() || draws.len() != regions.len() {
            return Err(ServeError::InvalidParameter("workloads"));
        }
        for (w, d) in workloads.iter().zip(draws) {
            if w.sessions.len() != d.len() || w.slots != self.config.slots {
                return Err(ServeError::InvalidParameter("draws"));
            }
        }
        let template = &self.config.template;
        let full_bits = template.full_bits();
        // The origin admission mirror: a cache miss reserves the
        // session's full demand on the uplink for its holding time.
        let origin = AdmissionController::new(
            self.config.origin,
            AdmissionPolicy::QueuePredictor,
            full_bits,
        )?;
        let mut origin_active_bits = 0u64;
        let mut departures: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut origin_series = Vec::with_capacity(self.config.slots as usize);

        let mut caches: Vec<LruCache> = regions
            .iter()
            .map(|r| LruCache::new(r.cache_items))
            .collect();
        let n = regions.len();
        let mut cursors = vec![0usize; n];
        let mut edge_sessions: Vec<Vec<SessionRequest>> = vec![Vec::new(); n];
        let mut edge_hits = vec![0u64; n];
        let mut origin_fetches = vec![0u64; n];
        let mut origin_rejected = vec![0u64; n];
        let mut fetched_bits = vec![0u64; n];
        let mut class_sessions = vec![[0u64; DEVICE_CLASSES]; n];
        let mut class_slots = vec![[0u64; DEVICE_CLASSES]; n];

        // Sequential cache/origin pass in global slot order, regions
        // in index order within a slot — the deterministic dispatch
        // discipline (the parallel fleet phase comes after).
        for slot in 0..self.config.slots {
            while let Some(&Reverse((when, bits))) = departures.peek() {
                if when > slot {
                    break;
                }
                departures.pop();
                origin_active_bits -= bits;
            }
            for r in 0..n {
                let sessions = &workloads[r].sessions;
                while cursors[r] < sessions.len() && sessions[cursors[r]].arrival_slot == slot {
                    let session = sessions[cursors[r]];
                    let draw = draws[r][cursors[r]];
                    cursors[r] += 1;
                    let cid = self.config.content.content_id(draw.rank, slot);
                    let cached = regions[r].cache_items > 0 && caches[r].touch(cid);
                    let to_fleet = if cached {
                        edge_hits[r] += 1;
                        true
                    } else if origin.would_admit(origin_active_bits, full_bits) {
                        origin_fetches[r] += 1;
                        origin_active_bits += full_bits;
                        departures.push(Reverse((slot + session.duration_slots, full_bits)));
                        fetched_bits[r] += full_bits * session.duration_slots;
                        caches[r].insert(cid);
                        true
                    } else {
                        origin_rejected[r] += 1;
                        false
                    };
                    if to_fleet {
                        let c = draw.class.index();
                        class_sessions[r][c] += 1;
                        class_slots[r][c] += session.duration_slots;
                        edge_sessions[r].push(session);
                    }
                }
            }
            origin_series.push(origin_active_bits as f64);
        }

        // Parallel fleet phase: each region's cluster runs on the
        // ParRunner (nesting its own per-shard fan-out) and results
        // merge in region order.
        let fleet_workloads: Vec<Workload> = edge_sessions
            .into_iter()
            .map(|sessions| Workload {
                sessions,
                template: *template,
                slots: self.config.slots,
            })
            .collect();
        let jobs: Vec<usize> = (0..n).collect();
        let results: Vec<Result<ClusterReport, ServeError>> = ParRunner::new().map(&jobs, |&r| {
            ClusterSim::new(regions[r].fleet.clone())?.run(&fleet_workloads[r])
        });

        let mut region_reports = Vec::with_capacity(n);
        for (r, result) in results.into_iter().enumerate() {
            let fleet = result?;
            let served_slots = fleet.session_slots();
            let mean_delivered = if served_slots == 0 {
                0.0
            } else {
                fleet.delivered_bits() as f64 / served_slots as f64
            };
            let offered_class_slots: u64 = class_slots[r].iter().sum();
            let j_per_bit = if regions[r].proximate {
                &self.config.energy.edge_j_per_bit
            } else {
                &self.config.energy.origin_j_per_bit
            };
            let mut classes = Vec::with_capacity(DEVICE_CLASSES);
            let mut utility_acc = 0.0;
            let mut slots_acc = 0.0;
            let mut energy_acc = 0.0;
            for class in DeviceClass::ALL {
                let c = class.index();
                let share = if offered_class_slots == 0 {
                    0.0
                } else {
                    class_slots[r][c] as f64 / offered_class_slots as f64
                };
                let est_session_slots = served_slots as f64 * share;
                let ceiling = template.demand_bits(self.config.classes.layers[c]);
                let ship_bits_per_slot = (mean_delivered.min(ceiling as f64)) as u64;
                let utility = template.utility(ship_bits_per_slot);
                let energy_j = est_session_slots * ship_bits_per_slot as f64 * j_per_bit[c];
                utility_acc += est_session_slots * utility;
                slots_acc += est_session_slots;
                energy_acc += energy_j;
                classes.push(ClassReport {
                    class,
                    sessions: class_sessions[r][c],
                    est_session_slots,
                    ship_bits_per_slot,
                    utility,
                    energy_j,
                });
            }
            let last_hop_utility = if slots_acc == 0.0 {
                0.0
            } else {
                utility_acc / slots_acc
            };
            let transit_energy_j = fetched_bits[r] as f64 * self.config.energy.transit_j_per_bit;
            region_reports.push(RegionReport {
                offered: workloads[r].sessions.len() as u64,
                edge_hits: edge_hits[r],
                origin_fetches: origin_fetches[r],
                origin_rejected: origin_rejected[r],
                fetched_bits: fetched_bits[r],
                fleet,
                classes,
                last_hop_utility,
                transit_energy_j,
                energy_j: energy_acc + transit_energy_j,
            });
        }

        let origin_mean_active_bits = if origin_series.is_empty() {
            0.0
        } else {
            origin_series.iter().sum::<f64>() / origin_series.len() as f64
        };
        Ok(TieredReport {
            regions: region_reports,
            origin_mean_active_bits,
            origin_series,
            origin_capacity_bits_per_slot: self.config.origin.link_bits_per_slot,
            slots: self.config.slots,
        })
    }
}

/// Merges per-region workloads/draws into one region's worth — the
/// flat-baseline arm offers the *same* sessions (and content/class
/// draws) to a single central fleet. Sessions interleave in
/// `(arrival_slot, region, id)` order — exactly the order the tiered
/// cache pass processes them — and are re-numbered sequentially so the
/// merged workload is a valid arrival stream.
#[must_use]
pub fn merge_regions(
    workloads: &[Workload],
    draws: &[Vec<SessionDraw>],
    template: SessionTemplate,
    slots: u64,
) -> (Workload, Vec<SessionDraw>) {
    let mut tagged: Vec<(u64, usize, u64, SessionRequest, SessionDraw)> = Vec::new();
    for (r, (workload, region_draws)) in workloads.iter().zip(draws).enumerate() {
        for (session, draw) in workload.sessions.iter().zip(region_draws) {
            tagged.push((session.arrival_slot, r, session.id, *session, *draw));
        }
    }
    tagged.sort_by_key(|&(slot, r, id, _, _)| (slot, r, id));
    let mut sessions = Vec::with_capacity(tagged.len());
    let mut merged_draws = Vec::with_capacity(tagged.len());
    for (i, (_, _, _, mut session, draw)) in tagged.into_iter().enumerate() {
        session.id = i as u64;
        sessions.push(session);
        merged_draws.push(draw);
    }
    (
        Workload {
            sessions,
            template,
            slots,
        },
        merged_draws,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::BalancerPolicy;
    use dms_serve::{RecoveryConfig, ServerConfig};

    fn template() -> SessionTemplate {
        SessionTemplate::streaming_default().expect("preset valid")
    }

    fn small_config(cache_items: usize, origin_capacity_sessions: u64) -> TieredConfig {
        let t = template();
        let full = t.full_bits();
        let shard = ServerConfig {
            capacity: CapacityModel {
                link_bits_per_slot: 40 * full,
                queue_frames: 64,
                occupancy_bound: 8.0,
            },
            policy: AdmissionPolicy::QueuePredictor,
            degrade: None,
            buffer_slots: 8,
            miss_slots: 4,
        };
        let region = |phase: u64| RegionConfig {
            fleet: ClusterConfig {
                shards: vec![shard; 2],
                balancer: BalancerPolicy::JoinShortestQueue,
                recovery: RecoveryConfig::default(),
                seed: 0xE16,
            },
            arrivals: ArrivalProcess::FlashCrowd {
                rate: 0.6,
                hurst: 0.8,
                burstiness: 0.6,
                diurnal_depth: 0.4,
                diurnal_period_slots: 200,
                diurnal_phase_slots: phase,
                spike_factor: 2.0,
                spike_period_slots: 100,
                spike_slots: 10,
            },
            cache_items,
            proximate: true,
        };
        TieredConfig {
            regions: vec![region(0), region(70)],
            template: t,
            slots: 200,
            content: ContentModel {
                catalog_size: 150,
                zipf_exponent: 1.2,
                churn_period_slots: 80,
                churn_stride: 37,
            },
            origin: CapacityModel {
                link_bits_per_slot: origin_capacity_sessions * full,
                queue_frames: 64,
                occupancy_bound: 8.0,
            },
            classes: ClassMix::streaming_default(&t),
            energy: LastHopEnergy::derive(7).expect("derivable"),
            seed: 11,
        }
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let model = ContentModel {
            catalog_size: 1000,
            zipf_exponent: 1.0,
            churn_period_slots: 0,
            churn_stride: 0,
        };
        let zipf = ZipfSampler::new(&model).expect("valid");
        let mut rng = SimRng::new(3);
        let mut top10 = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 1000);
            if rank < 10 {
                top10 += 1;
            }
        }
        // H(10)/H(1000) ≈ 0.39 at s = 1: the head dominates.
        let frac = top10 as f64 / draws as f64;
        assert!(frac > 0.3, "top-10 fraction {frac}");
    }

    #[test]
    fn churn_rotates_the_hot_set() {
        let model = ContentModel {
            catalog_size: 100,
            zipf_exponent: 1.0,
            churn_period_slots: 50,
            churn_stride: 10,
        };
        assert_eq!(model.content_id(0, 0), 0);
        assert_eq!(model.content_id(0, 49), 0);
        assert_eq!(model.content_id(0, 50), 10);
        assert_eq!(model.content_id(95, 50), 5, "rotation wraps");
        let no_churn = ContentModel {
            churn_period_slots: 0,
            ..model
        };
        assert_eq!(no_churn.content_id(7, 10_000), 7);
    }

    #[test]
    fn lru_cache_evicts_least_recent() {
        let mut cache = LruCache::new(2);
        cache.insert(1);
        cache.insert(2);
        assert!(cache.touch(1), "1 present");
        cache.insert(3); // evicts 2 (1 was promoted)
        assert!(!cache.touch(2));
        assert!(cache.touch(1));
        assert!(cache.touch(3));
    }

    #[test]
    fn zero_capacity_cache_holds_nothing_and_stays_conserved() {
        let mut cache = LruCache::new(0);
        cache.insert(1);
        assert!(!cache.touch(1), "capacity 0 stores nothing");
        cache.insert(2);
        cache.insert(2);
        assert!(!cache.touch(2), "re-insertion cannot smuggle an item in");

        // End to end: a cacheless region never hits, every session is
        // an origin fetch or an origin reject, and the ledger holds.
        let report = TieredSim::new(small_config(0, 25))
            .expect("valid")
            .run()
            .expect("runs");
        assert_eq!(report.edge_hits(), 0, "no cache, no hits");
        for region in &report.regions {
            assert!(region.conserved());
            assert_eq!(
                region.origin_fetches + region.origin_rejected,
                region.offered
            );
        }
    }

    #[test]
    fn single_content_catalogue_degenerates_to_the_compulsory_miss() {
        // Zipf over one item is the point mass at rank 0, churn
        // rotates modulo 1, and the sampler never leaves the head.
        let model = ContentModel {
            catalog_size: 1,
            zipf_exponent: 1.3,
            churn_period_slots: 50,
            churn_stride: 10,
        };
        assert!(model.validate().is_ok());
        assert_eq!(model.content_id(0, 0), 0);
        assert_eq!(model.content_id(0, 12_345), 0);
        let zipf = ZipfSampler::new(&model).expect("valid");
        let mut rng = SimRng::new(9);
        assert!((0..1_000).all(|_| zipf.sample(&mut rng) == 0));

        // With any cache at all, each region pays at most a handful of
        // compulsory misses (until the item first lands) and then hits
        // forever: the hit side must dominate the fetch side.
        let mut config = small_config(4, 25);
        config.content = model;
        let report = TieredSim::new(config).expect("valid").run().expect("runs");
        for region in &report.regions {
            assert!(region.conserved());
            assert!(region.edge_hits > 0);
            assert!(
                region.edge_hits > region.origin_fetches + region.origin_rejected,
                "hits {} must dominate misses {} + {}",
                region.edge_hits,
                region.origin_fetches,
                region.origin_rejected
            );
        }
    }

    #[test]
    fn tiered_run_conserves_sessions_and_is_deterministic() {
        let sim = TieredSim::new(small_config(64, 20)).expect("valid");
        let a = sim.run().expect("runs");
        for region in &a.regions {
            assert!(region.conserved(), "hits+fetches+rejects == offered");
            assert_eq!(
                region.fleet.offered(),
                region.edge_hits + region.origin_fetches,
                "fleet sees exactly the non-rejected sessions"
            );
        }
        assert!(a.offered() > 0);
        assert!(a.edge_hits() > 0, "cache must produce hits");
        assert!(a.origin_rejected() > 0, "tight origin must reject");
        let b = TieredSim::new(small_config(64, 20))
            .expect("valid")
            .run()
            .expect("runs");
        assert_eq!(a, b, "bit-identical reruns");
    }

    #[test]
    fn caching_relieves_the_origin() {
        let cached = TieredSim::new(small_config(64, 25))
            .expect("valid")
            .run()
            .expect("runs");
        let uncached = TieredSim::new(small_config(0, 25))
            .expect("valid")
            .run()
            .expect("runs");
        assert_eq!(uncached.edge_hits(), 0);
        assert!(cached.hit_ratio() > 0.2, "hit ratio {}", cached.hit_ratio());
        assert!(
            cached.origin_load() < uncached.origin_load(),
            "hits must unload the origin: {} vs {}",
            cached.origin_load(),
            uncached.origin_load()
        );
        assert!(
            cached.origin_rejected() < uncached.origin_rejected(),
            "hits must save sessions from origin rejection"
        );
    }

    #[test]
    fn last_hop_energy_prefers_the_edge() {
        let e = LastHopEnergy::derive(7).expect("derivable");
        for c in 0..DEVICE_CLASSES {
            assert!(
                e.edge_j_per_bit[c] <= e.origin_j_per_bit[c],
                "{}: edge {} vs origin {}",
                DeviceClass::ALL[c].name(),
                e.edge_j_per_bit[c],
                e.origin_j_per_bit[c]
            );
        }
        assert!(e.transit_j_per_bit > 0.0);
        // The wireless gap is the modulation-adaptation story: better
        // gain at the edge buys a cheaper constellation.
        assert!(e.edge_j_per_bit[1] < e.origin_j_per_bit[1]);
    }

    #[test]
    fn merge_regions_preserves_sessions_and_order() {
        let sim = TieredSim::new(small_config(64, 20)).expect("valid");
        let (workloads, draws) = sim.generate().expect("generates");
        let total: usize = workloads.iter().map(|w| w.sessions.len()).sum();
        let (merged, merged_draws) = merge_regions(
            &workloads,
            &draws,
            sim.config().template,
            sim.config().slots,
        );
        assert_eq!(merged.sessions.len(), total);
        assert_eq!(merged_draws.len(), total);
        for pair in merged.sessions.windows(2) {
            assert!(pair[0].arrival_slot <= pair[1].arrival_slot);
            assert!(pair[0].id < pair[1].id);
        }
    }

    #[test]
    fn run_on_rejects_mismatched_inputs() {
        let sim = TieredSim::new(small_config(64, 20)).expect("valid");
        let (workloads, mut draws) = sim.generate().expect("generates");
        assert!(sim.run_on(&workloads[..1], &draws[..1]).is_err());
        draws[0].pop();
        assert!(sim.run_on(&workloads, &draws).is_err());
    }
}
