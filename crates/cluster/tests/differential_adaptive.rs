//! Differential and property tests anchoring the adaptive fleet to
//! the static cluster it wraps.
//!
//! Three obligations:
//!
//! 1. **Pinned equivalence** — with the autoscaler pinned
//!    (`min_shards == max_shards`), no PI block and a fixed arm, the
//!    adaptive fleet must reproduce the static [`ClusterSim`] *bit
//!    for bit* under every balancer: identical cluster report (every
//!    `f64` compared exactly) and identical exported metrics text.
//! 2. **Conservation over scale events** — for arbitrary loads,
//!    thresholds and warm-up costs, the fleet ledger still balances:
//!    `dispatched + balancer_rejected + drained == offered + rerouted`,
//!    every drained shard's in-flight victims re-offer exactly once
//!    with their remaining duration, and no session is dispatched to
//!    a shard outside its provisioned interval.
//! 3. **Bandit determinism** — the same seed and trace yield the same
//!    arm sequence and the same report, run after run.

use dms_cluster::{
    AdaptiveConfig, AdaptiveSim, ArmSelection, AutoscaleConfig, BalancerPolicy, ClusterConfig,
    ClusterSim,
};
use dms_serve::{
    rate_for_load, AdmissionPolicy, ArrivalProcess, CapacityModel, DegradeConfig, RecoveryConfig,
    ServerConfig, SessionTemplate, Workload,
};
use dms_sim::MetricsRegistry;
use proptest::prelude::*;

fn shard_config(sessions: u64, template: &SessionTemplate) -> ServerConfig {
    ServerConfig {
        capacity: CapacityModel {
            link_bits_per_slot: sessions * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        },
        policy: AdmissionPolicy::AdmitAll,
        degrade: Some(DegradeConfig::default()),
        buffer_slots: 4,
        miss_slots: 2,
    }
}

fn workload(load: f64, capacity_sessions: u64, slots: u64, seed: u64) -> Workload {
    let mut template = SessionTemplate::streaming_default().expect("preset valid");
    template.mean_duration_slots = 40.0;
    let rate = rate_for_load(load, &template, capacity_sessions * template.full_bits());
    Workload::generate(ArrivalProcess::Poisson { rate }, template, slots, seed)
        .expect("valid workload")
}

/// An adaptive config whose every control loop is disabled: the
/// differential-test configuration.
fn pinned(shard: ServerConfig, shards: usize, policy: BalancerPolicy, seed: u64) -> AdaptiveConfig {
    AdaptiveConfig {
        shard,
        autoscale: AutoscaleConfig::pinned(shards, 20),
        arms: ArmSelection::Fixed(policy),
        recovery: RecoveryConfig::default(),
        seed,
    }
}

/// Pinned adaptive ≡ static cluster, bit for bit, under all three
/// balancers: the control loop still samples occupancy every period,
/// but sampling is pure, so report *and* exported metrics text match
/// exactly.
#[test]
fn pinned_adaptive_matches_static_cluster_bit_for_bit() {
    for &policy in &[
        BalancerPolicy::RoundRobin,
        BalancerPolicy::JoinShortestQueue,
        BalancerPolicy::PowerOfTwoChoices,
    ] {
        for &(shards, load, seed) in &[(1usize, 0.8, 81u64), (3, 1.2, 82), (4, 1.5, 83)] {
            let wl = workload(load, 60 * shards as u64, 160, seed);
            let config = shard_config(60, &wl.template);

            let static_sim = ClusterSim::new(ClusterConfig {
                shards: vec![config; shards],
                balancer: policy,
                recovery: RecoveryConfig::default(),
                seed: 99,
            })
            .expect("valid static config");
            let static_report = static_sim.run(&wl).expect("static run");

            let adaptive = AdaptiveSim::new(pinned(config, shards, policy, 99))
                .expect("valid adaptive config");
            let report = adaptive.run(&wl, None).expect("adaptive run");

            assert_eq!(
                report.cluster, static_report,
                "{policy:?} x{shards} load {load}"
            );
            assert!(
                report.control.scale_events.is_empty(),
                "pinned never scales"
            );
            assert_eq!(report.control.shard_slots, shards as u64 * wl.slots);

            // The static-shaped half of the export is also identical.
            let mut reg_static = MetricsRegistry::new();
            static_report.export(&mut reg_static, "fleet");
            let mut reg_adaptive = MetricsRegistry::new();
            report.cluster.export(&mut reg_adaptive, "fleet");
            assert_eq!(
                reg_static.to_json().render(),
                reg_adaptive.to_json().render(),
                "{policy:?}"
            );
        }
    }
}

/// A load burst against a small floor actually provisions spares, the
/// warm-up gate keeps traffic off them until `provisioned + warmup`,
/// and the bill counts the warming interval.
#[test]
fn burst_provisions_spares_and_warmup_gates_routing() {
    let wl = workload(3.0, 30, 200, 84);
    let config = shard_config(30, &wl.template);
    let sim = AdaptiveSim::new(AdaptiveConfig {
        shard: config,
        autoscale: AutoscaleConfig {
            min_shards: 1,
            max_shards: 4,
            control_period_slots: 10,
            scale_up_above: 1.0,
            scale_in_below: 0.05,
            warmup_slots: 6,
        },
        arms: ArmSelection::Fixed(BalancerPolicy::JoinShortestQueue),
        recovery: RecoveryConfig::default(),
        seed: 7,
    })
    .expect("valid config");
    let (workloads, _faults, report, control) = sim.dispatch(&wl).expect("dispatch");
    assert!(
        control.scale_events.iter().any(|e| e.up),
        "sustained 3x overload must scale up: {:?}",
        control.scale_events
    );
    for (i, shard_wl) in workloads.iter().enumerate() {
        let Some(at) = control.provisioned_at[i] else {
            assert!(shard_wl.sessions.is_empty(), "parked shard {i} got traffic");
            continue;
        };
        if at > 0 {
            let gate = at + 6;
            assert!(
                shard_wl.sessions.iter().all(|s| s.arrival_slot >= gate),
                "shard {i} (provisioned {at}) routed before warm-up ended"
            );
        }
    }
    // The bill covers each provisioned interval, warm-up included.
    let billed: u64 = control
        .provisioned_at
        .iter()
        .zip(&control.drained_at)
        .filter_map(|(p, d)| p.map(|a| d.unwrap_or(wl.slots) - a))
        .sum();
    assert_eq!(control.shard_slots, billed);
    assert_eq!(control.shard_count.len(), wl.slots as usize);
    assert_eq!(
        report.dispatched + report.balancer_rejected + report.drained,
        report.offered + report.rerouted
    );
}

/// Scale-in drains exactly once: each drained shard's in-flight
/// victims re-offer with their remaining duration, `rerouted` counts
/// them all, and a re-dispatched victim's new duration equals its
/// original departure minus the drain slot.
#[test]
fn drain_reoffers_each_victim_exactly_once_with_remaining_duration() {
    // Front-loaded burst then silence: the fleet scales up, then the
    // occupancy collapse forces a drain while sessions are in flight.
    let mut template = SessionTemplate::streaming_default().expect("preset valid");
    template.mean_duration_slots = 60.0;
    let rate = rate_for_load(2.5, &template, 30 * template.full_bits());
    let mut wl = Workload::generate(ArrivalProcess::Poisson { rate }, template, 300, 85)
        .expect("valid workload");
    wl.sessions.retain(|s| s.arrival_slot < 80);

    let config = shard_config(30, &template);
    let sim = AdaptiveSim::new(AdaptiveConfig {
        shard: config,
        // Two shards at most: a single drain is possible, so "exactly
        // once" is exact (a 3-shard fleet could drain twice and
        // legitimately re-offer a victim from each drain).
        autoscale: AutoscaleConfig {
            min_shards: 1,
            max_shards: 2,
            control_period_slots: 10,
            scale_up_above: 1.0,
            scale_in_below: 0.4,
            warmup_slots: 2,
        },
        arms: ArmSelection::Fixed(BalancerPolicy::JoinShortestQueue),
        recovery: RecoveryConfig::default(),
        seed: 7,
    })
    .expect("valid config");
    let (workloads, faults, report, control) = sim.dispatch(&wl).expect("dispatch");
    let drains: Vec<(usize, u64)> = control
        .drained_at
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|at| (i, at)))
        .collect();
    assert!(!drains.is_empty(), "burst-then-silence must scale in");
    assert!(!faults.is_empty(), "drains compile to crash plans");

    // Victims: sessions dispatched to a shard that straddle its drain
    // slot. Each re-offers exactly once, so `rerouted` is their count.
    let mut victims = 0u64;
    for &(i, at) in &drains {
        assert_eq!(faults[i].down_from, Some(at));
        for s in &workloads[i].sessions {
            if s.arrival_slot < at && s.arrival_slot + s.duration_slots > at {
                victims += 1;
                // If the survivor accepted it, the re-dispatch keeps
                // the remaining duration (ids are unique per origin).
                let redispatched = workloads
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, w)| &w.sessions)
                    .filter(|r| r.id == s.id)
                    .collect::<Vec<_>>();
                assert!(redispatched.len() <= 1, "victim {} re-offered once", s.id);
                for r in redispatched {
                    assert_eq!(
                        r.duration_slots,
                        s.arrival_slot + s.duration_slots - at,
                        "victim {} keeps its remaining duration",
                        s.id
                    );
                    assert!(r.arrival_slot > at, "re-dispatch is after the drain");
                }
            }
        }
    }
    assert_eq!(
        report.rerouted, victims,
        "rerouted counts every victim once"
    );
    assert_eq!(
        report.dispatched + report.balancer_rejected + report.drained,
        report.offered + report.rerouted
    );
}

/// The UCB bandit is a deterministic function of (seed, trace): two
/// runs yield the same arm sequence, the same pulls and the same
/// full report.
#[test]
fn bandit_arm_sequence_is_deterministic() {
    let wl = workload(1.3, 60, 240, 86);
    let config = shard_config(30, &wl.template);
    let make = || {
        AdaptiveSim::new(AdaptiveConfig {
            shard: config,
            autoscale: AutoscaleConfig {
                min_shards: 2,
                max_shards: 2,
                control_period_slots: 12,
                ..AutoscaleConfig::default()
            },
            arms: ArmSelection::ucb(),
            recovery: RecoveryConfig::default(),
            seed: 11,
        })
        .expect("valid config")
    };
    let a = make().run(&wl, None).expect("run a");
    let b = make().run(&wl, None).expect("run b");
    let arms_a: Vec<BalancerPolicy> = a.control.windows.iter().map(|w| w.arm).collect();
    let arms_b: Vec<BalancerPolicy> = b.control.windows.iter().map(|w| w.arm).collect();
    assert_eq!(arms_a, arms_b, "same seed + trace, same arm sequence");
    assert_eq!(a.cluster, b.cluster);
    assert_eq!(a.control, b.control);
    // The bandit has actually tried more than one arm on a 240-slot
    // run with 20 windows (UCB plays each arm once before exploiting).
    let distinct: std::collections::BTreeSet<&str> = arms_a.iter().map(|p| p.label()).collect();
    assert!(distinct.len() > 1, "bandit explored: {arms_a:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fleet ledger balances for arbitrary loads, thresholds,
    /// warm-up costs and arm selections, however many scale events
    /// fire: `dispatched + balancer_rejected + drained ==
    /// offered + rerouted`, shard workloads sum to the dispatch
    /// count, and every dispatched session sits inside its shard's
    /// provisioned interval.
    #[test]
    fn adaptive_ledger_balances_over_arbitrary_scale_events(
        load in 0.3f64..2.5,
        seed in 0u64..1_000,
        period in 5u64..40,
        warmup in 0u64..12,
        up_above in 0.8f64..3.0,
        ucb in proptest::bool::ANY,
    ) {
        let wl = workload(load, 40, 150, 3_000 + seed);
        let config = shard_config(40, &wl.template);
        let sim = AdaptiveSim::new(AdaptiveConfig {
            shard: config,
            autoscale: AutoscaleConfig {
                min_shards: 1,
                max_shards: 4,
                control_period_slots: period,
                scale_up_above: up_above,
                scale_in_below: up_above / 4.0,
                warmup_slots: warmup,
            },
            arms: if ucb {
                ArmSelection::ucb()
            } else {
                ArmSelection::Fixed(BalancerPolicy::PowerOfTwoChoices)
            },
            recovery: RecoveryConfig::default(),
            seed,
        })
        .expect("valid config");
        let (workloads, _faults, report, control) = sim.dispatch(&wl).expect("dispatch");
        prop_assert_eq!(report.offered, wl.sessions.len() as u64);
        prop_assert_eq!(
            report.dispatched + report.balancer_rejected + report.drained,
            report.offered + report.rerouted
        );
        prop_assert_eq!(report.drained, 0, "batch dispatch never leaves offers pending");
        prop_assert_eq!(
            workloads.iter().map(|w| w.sessions.len() as u64).sum::<u64>(),
            report.dispatched
        );
        prop_assert_eq!(
            report.shard_sessions.iter().sum::<u64>(),
            report.dispatched
        );
        for (i, shard_wl) in workloads.iter().enumerate() {
            match control.provisioned_at[i] {
                None => prop_assert!(shard_wl.sessions.is_empty()),
                Some(at) => {
                    let gate = if at > 0 { at + warmup } else { 0 };
                    let end = control.drained_at[i].unwrap_or(wl.slots);
                    for s in &shard_wl.sessions {
                        prop_assert!(
                            s.arrival_slot >= gate && s.arrival_slot < end,
                            "shard {} session at {} outside [{}, {})",
                            i, s.arrival_slot, gate, end
                        );
                    }
                }
            }
        }
        // Windows cover every routed offer (expired re-offers are
        // rejected before the window counter sees them).
        let windowed: u64 = control.windows.iter().map(|w| w.offered).sum();
        prop_assert!(windowed >= report.dispatched);
        prop_assert!(
            windowed <= report.dispatched + report.balancer_rejected + report.retries
        );
        // The full pipeline stays conserved after execution too.
        let full = sim.run(&wl, None).expect("run");
        prop_assert_eq!(&full.cluster.dispatch, &report);
        // `rejected()` folds balancer refusals in with the in-shard
        // rejections, so the closed ledger is against offered+rerouted.
        prop_assert_eq!(
            full.cluster.admitted() + full.cluster.rejected(),
            report.offered + report.rerouted
        );
    }
}
