//! Differential and conservation tests for the geo-tiered layer.
//!
//! Two obligations anchor `dms_cluster::tiers` to the fleet model it
//! composes:
//!
//! 1. **Degenerate equivalence** — a one-region tier whose origin
//!    admits everything (huge uplink) and whose cache is disabled
//!    passes every offered session straight through to its fleet, so
//!    the embedded [`ClusterReport`] must reproduce a bare
//!    [`ClusterSim::run`] on the identical workload *bit for bit*
//!    (every `f64` compared exactly) — the same pattern as the
//!    single-shard-cluster ≡ bare-server test one layer down.
//! 2. **Session conservation** — every offered session is exactly one
//!    of cache hit / origin fetch / origin reject, for arbitrary Zipf
//!    exponents, churn processes, cache sizes, and seeds; and the
//!    fleet sees exactly the non-rejected sessions.

use dms_cluster::{
    BalancerPolicy, ClassMix, ClusterConfig, ClusterSim, ContentModel, LastHopEnergy, RegionConfig,
    TieredConfig, TieredSim,
};
use dms_serve::{
    AdmissionPolicy, ArrivalProcess, CapacityModel, RecoveryConfig, ServerConfig, SessionTemplate,
    Workload,
};
use proptest::prelude::*;

fn template() -> SessionTemplate {
    let mut t = SessionTemplate::streaming_default().expect("preset valid");
    t.mean_duration_slots = 40.0;
    t
}

fn shard(sessions: u64, template: &SessionTemplate) -> ServerConfig {
    ServerConfig {
        capacity: CapacityModel {
            link_bits_per_slot: sessions * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        },
        policy: AdmissionPolicy::QueuePredictor,
        degrade: None,
        buffer_slots: 8,
        miss_slots: 4,
    }
}

fn fleet(template: &SessionTemplate, seed: u64) -> ClusterConfig {
    ClusterConfig {
        shards: vec![shard(30, template), shard(50, template)],
        balancer: BalancerPolicy::JoinShortestQueue,
        recovery: RecoveryConfig::default(),
        seed,
    }
}

fn arrivals(rate: f64) -> ArrivalProcess {
    ArrivalProcess::FlashCrowd {
        rate,
        hurst: 0.8,
        burstiness: 0.6,
        diurnal_depth: 0.3,
        diurnal_period_slots: 160,
        diurnal_phase_slots: 0,
        spike_factor: 2.0,
        spike_period_slots: 80,
        spike_slots: 8,
    }
}

/// A one-region tier with caching disabled and an effectively infinite
/// origin is the identity wrapper around its fleet: the embedded
/// cluster report equals the bare `ClusterSim::run` bitwise.
#[test]
fn one_region_tier_matches_bare_cluster_bit_for_bit() {
    let t = template();
    for &(rate, seed) in &[(0.8f64, 21u64), (1.6, 22), (2.4, 23)] {
        let fleet_config = fleet(&t, 7);
        let tier = TieredSim::new(TieredConfig {
            regions: vec![RegionConfig {
                fleet: fleet_config.clone(),
                arrivals: arrivals(rate),
                cache_items: 0,
                proximate: true,
            }],
            template: t,
            slots: 160,
            content: ContentModel {
                catalog_size: 400,
                zipf_exponent: 1.0,
                churn_period_slots: 40,
                churn_stride: 13,
            },
            // An origin that can hold every concurrent session: the
            // predictor admits everything, so no session is dropped
            // before the fleet.
            origin: CapacityModel {
                link_bits_per_slot: 1_000_000 * t.full_bits(),
                queue_frames: 64,
                occupancy_bound: 8.0,
            },
            classes: ClassMix::streaming_default(&t),
            energy: LastHopEnergy::derive(5).expect("derivable"),
            seed,
        })
        .expect("valid tier");

        let report = tier.run().expect("tier runs");
        assert_eq!(report.regions.len(), 1);
        let region = &report.regions[0];
        assert_eq!(region.origin_rejected, 0, "infinite origin rejects nothing");
        assert_eq!(region.edge_hits, 0, "caching disabled");
        assert_eq!(region.origin_fetches, region.offered);

        // The equivalent bare fleet run on the identical workload:
        // region r generates with seed `config.seed + r`.
        let workload = Workload::generate(arrivals(rate), t, 160, seed).expect("valid workload");
        assert_eq!(region.offered, workload.sessions.len() as u64);
        let bare = ClusterSim::new(fleet_config)
            .expect("valid fleet")
            .run(&workload)
            .expect("bare run");
        assert_eq!(
            region.fleet, bare,
            "rate {rate} seed {seed}: tier must be the identity wrapper"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `edge_hits + origin_fetches + origin_rejected == offered` for
    /// arbitrary popularity, churn, cache, and origin parameters — and
    /// the fleet sees exactly the non-rejected sessions.
    #[test]
    fn sessions_are_conserved_across_tiers(
        seed in 0u64..1_000,
        zipf_exponent in 0.5f64..1.6,
        catalog_size in 50u64..400,
        churn_period_slots in prop_oneof![Just(0u64), 10u64..60],
        churn_stride in 1u64..40,
        cache_items in prop_oneof![Just(0usize), 8usize..96],
        origin_sessions in 5u64..60,
        rate in 0.5f64..2.5,
    ) {
        let t = template();
        let tier = TieredSim::new(TieredConfig {
            regions: vec![
                RegionConfig {
                    fleet: fleet(&t, 3),
                    arrivals: arrivals(rate),
                    cache_items,
                    proximate: true,
                },
                RegionConfig {
                    fleet: fleet(&t, 4),
                    arrivals: arrivals(rate * 0.7),
                    cache_items,
                    proximate: true,
                },
            ],
            template: t,
            slots: 120,
            content: ContentModel {
                catalog_size,
                zipf_exponent,
                churn_period_slots,
                churn_stride,
            },
            origin: CapacityModel {
                link_bits_per_slot: origin_sessions * t.full_bits(),
                queue_frames: 64,
                occupancy_bound: 8.0,
            },
            classes: ClassMix::streaming_default(&t),
            energy: LastHopEnergy::derive(5).expect("derivable"),
            seed,
        }).expect("valid tier");

        let report = tier.run().expect("tier runs");
        for region in &report.regions {
            prop_assert!(region.conserved(),
                "hits {} + fetches {} + rejects {} != offered {}",
                region.edge_hits, region.origin_fetches,
                region.origin_rejected, region.offered);
            prop_assert_eq!(
                region.fleet.offered(),
                region.edge_hits + region.origin_fetches,
                "fleet must see exactly the non-rejected sessions");
            if cache_items == 0 {
                prop_assert_eq!(region.edge_hits, 0);
            }
        }
        // The run is a pure function of the config.
        let again = tier.run().expect("tier reruns");
        prop_assert_eq!(report, again);
    }
}
