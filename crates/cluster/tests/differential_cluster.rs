//! Differential and conservation tests for the cluster layer.
//!
//! Two obligations anchor `dms-cluster` to the single-server model it
//! shards:
//!
//! 1. **Degenerate equivalence** — with one shard and the oblivious
//!    round-robin balancer, the dispatch pass is the identity and the
//!    cluster must reproduce a bare [`ServerSim::run`] *bit for bit*:
//!    identical report (every `f64` compared exactly) and identical
//!    per-slot metric series.
//! 2. **Offer conservation** — the PR 3 bit-conservation invariant
//!    (`admitted + rejected == offered`) lifted to the fleet: every
//!    offered session is either routed to exactly one shard or
//!    rejected by the balancer, and crash re-offers are accounted
//!    explicitly, so
//!    `dispatched + balancer_rejected == offered + rerouted` and the
//!    shard ledgers sum back to the dispatch ledger.

use dms_cluster::{aggregate_utility, BalancerPolicy, ClusterConfig, ClusterSim, ShardFault};
use dms_serve::{
    rate_for_load, AdmissionPolicy, ArrivalProcess, CapacityModel, DegradeConfig, RecoveryConfig,
    ServeMetricsSink, ServerConfig, ServerSim, SessionTemplate, Workload,
};
use dms_sim::{FaultPlan, FaultSpec};
use proptest::prelude::*;

fn shard_config(sessions: u64, template: &SessionTemplate) -> ServerConfig {
    ServerConfig {
        capacity: CapacityModel {
            link_bits_per_slot: sessions * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        },
        policy: AdmissionPolicy::AdmitAll,
        degrade: Some(DegradeConfig::default()),
        buffer_slots: 4,
        miss_slots: 2,
    }
}

fn workload(load: f64, capacity_sessions: u64, slots: u64, seed: u64) -> Workload {
    let mut template = SessionTemplate::streaming_default().expect("preset valid");
    template.mean_duration_slots = 40.0;
    let rate = rate_for_load(load, &template, capacity_sessions * template.full_bits());
    Workload::generate(ArrivalProcess::Poisson { rate }, template, slots, seed)
        .expect("valid workload")
}

fn cluster(shards: Vec<ServerConfig>, balancer: BalancerPolicy, seed: u64) -> ClusterSim {
    ClusterSim::new(ClusterConfig {
        shards,
        balancer,
        recovery: RecoveryConfig::default(),
        seed,
    })
    .expect("valid config")
}

/// A single-shard round-robin cluster is the identity wrapper: same
/// report (bitwise, `PartialEq` over every `f64` field) and same
/// per-slot series as the bare server on the same workload.
#[test]
fn single_shard_cluster_matches_bare_server_bit_for_bit() {
    for &(load, seed) in &[(0.6, 71u64), (1.0, 72), (1.4, 73)] {
        let wl = workload(load, 200, 160, seed);
        let config = shard_config(200, &wl.template);

        let server = ServerSim::new(config).expect("valid config");
        let mut bare_sink = ServeMetricsSink::with_capacity(wl.slots as usize);
        let bare = server
            .run_instrumented(&wl, Some(&mut bare_sink))
            .expect("bare run");

        let sim = cluster(vec![config], BalancerPolicy::RoundRobin, 99);
        let mut sinks = Vec::new();
        let report = sim
            .run_faulted(&wl, &[], Some(&mut sinks))
            .expect("cluster run");

        assert_eq!(report.shards.len(), 1);
        // FaultReport's base is the full ServerReport; exact equality
        // covers every counter and every f64 bit pattern.
        assert_eq!(report.shards[0].base, bare, "load {load}");
        assert_eq!(report.shards[0].crashed, 0);
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].admitted(), bare_sink.admitted());
        assert_eq!(sinks[0].active(), bare_sink.active());
        assert_eq!(sinks[0].backlog_bits(), bare_sink.backlog_bits());
        assert_eq!(sinks[0].deadline_misses(), bare_sink.deadline_misses());
        assert_eq!(sinks[0].utility(), bare_sink.utility());
        assert_eq!(sinks[0].enqueued_bits(), bare_sink.enqueued_bits());
        // Aggregates collapse to the single shard's numbers.
        assert_eq!(report.offered(), bare.offered);
        assert_eq!(report.admitted(), bare.admitted);
        assert_eq!(report.rejected(), bare.rejected);
        assert_eq!(aggregate_utility(&sinks), bare_sink.utility());
    }
}

/// The smart balancers are also transparent at a single shard while
/// their mirror admits — at low load the gate never fires, so the run
/// still matches the bare server exactly.
#[test]
fn single_shard_smart_balancers_match_at_low_load() {
    let wl = workload(0.5, 200, 160, 74);
    let config = shard_config(200, &wl.template);
    let bare = ServerSim::new(config)
        .expect("valid config")
        .run(&wl)
        .expect("bare run");
    for balancer in [
        BalancerPolicy::JoinShortestQueue,
        BalancerPolicy::PowerOfTwoChoices,
    ] {
        let report = cluster(vec![config], balancer, 99)
            .run(&wl)
            .expect("cluster run");
        assert_eq!(report.dispatch.balancer_rejected, 0, "{balancer:?}");
        assert_eq!(report.shards[0].base, bare, "{balancer:?}");
    }
}

/// Killing one of two shards re-offers its in-flight sessions to the
/// survivor and keeps the ledgers conserved.
#[test]
fn crash_rerouting_conserves_and_reaches_the_survivor() {
    let wl = workload(0.7, 200, 160, 75);
    let template = wl.template;
    let death = 80u64;
    let sim = cluster(
        vec![shard_config(100, &template), shard_config(100, &template)],
        BalancerPolicy::JoinShortestQueue,
        99,
    );
    let faults = vec![
        ShardFault::default(),
        ShardFault {
            plan: FaultPlan::compile(
                &[FaultSpec::CrashBurst {
                    slot: death,
                    fraction: 1.0,
                }],
                wl.slots,
                7,
            )
            .expect("valid spec"),
            down_from: Some(death),
        },
    ];
    let report = sim.run_faulted(&wl, &faults, None).expect("cluster run");
    assert!(report.dispatch.rerouted > 0, "in-flight sessions re-offer");
    assert!(report.shards[1].crashed > 0, "the dead shard crashed them");
    let d = &report.dispatch;
    assert_eq!(d.dispatched + d.balancer_rejected, d.offered + d.rerouted);
    let shard_offered: u64 = report.shards.iter().map(|s| s.base.offered).sum();
    assert_eq!(shard_offered, d.dispatched);
    assert_eq!(
        report.admitted() + report.rejected(),
        d.offered + d.rerouted
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fleet-level offer conservation for arbitrary shard counts,
    /// balancers, loads and crash schedules: every offer is routed
    /// exactly once or rejected, shard ledgers sum to the dispatch
    /// ledger, and the in-shard `admitted + rejected == offered`
    /// invariant survives the sharding.
    #[test]
    fn cluster_offers_are_conserved(
        shard_count in 1usize..=4,
        balancer_pick in 0u8..3,
        load in 0.3f64..1.6,
        seed in 0u64..1_000,
        crash in proptest::bool::ANY,
    ) {
        let balancer = match balancer_pick {
            0 => BalancerPolicy::RoundRobin,
            1 => BalancerPolicy::JoinShortestQueue,
            _ => BalancerPolicy::PowerOfTwoChoices,
        };
        let wl = workload(load, 40 * shard_count as u64, 100, 1_000 + seed);
        let template = wl.template;
        // Heterogeneous fleet: odd shards get a third of the capacity.
        let shards: Vec<ServerConfig> = (0..shard_count)
            .map(|i| shard_config(if i % 2 == 0 { 60 } else { 20 }, &template))
            .collect();
        let sim = cluster(shards, balancer, seed);
        let faults: Vec<ShardFault> = if crash {
            (0..shard_count)
                .map(|i| {
                    if i == shard_count - 1 {
                        ShardFault {
                            plan: FaultPlan::compile(
                                &[FaultSpec::CrashBurst { slot: 50, fraction: 1.0 }],
                                wl.slots,
                                7,
                            )
                            .expect("valid spec"),
                            down_from: Some(50),
                        }
                    } else {
                        ShardFault::default()
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let report = sim.run_faulted(&wl, &faults, None).expect("cluster run");
        let d = &report.dispatch;
        prop_assert_eq!(d.offered, wl.sessions.len() as u64);
        prop_assert_eq!(d.dispatched + d.balancer_rejected, d.offered + d.rerouted);
        prop_assert_eq!(d.shard_sessions.iter().sum::<u64>(), d.dispatched);
        let shard_offered: u64 = report.shards.iter().map(|s| s.base.offered).sum();
        prop_assert_eq!(shard_offered, d.dispatched);
        for (i, shard) in report.shards.iter().enumerate() {
            prop_assert_eq!(
                shard.base.admitted + shard.base.rejected,
                shard.base.offered,
                "shard {} of {} ({:?})", i, shard_count, balancer
            );
        }
        prop_assert_eq!(
            report.admitted() + report.rejected(),
            d.offered + d.rerouted
        );
        // No crash schedule, no re-offers; with one the dead shard
        // stops taking traffic at the death slot.
        if !crash {
            prop_assert_eq!(d.rerouted, 0);
        }
    }

    /// Determinism: the same cluster run twice yields identical
    /// reports and identical per-slot series, whatever the thread
    /// count of the inner `ParRunner` happens to be.
    #[test]
    fn cluster_runs_are_reproducible(
        shard_count in 1usize..=3,
        balancer_pick in 0u8..3,
        seed in 0u64..500,
    ) {
        let balancer = match balancer_pick {
            0 => BalancerPolicy::RoundRobin,
            1 => BalancerPolicy::JoinShortestQueue,
            _ => BalancerPolicy::PowerOfTwoChoices,
        };
        let wl = workload(1.1, 40 * shard_count as u64, 80, 2_000 + seed);
        let template = wl.template;
        let shards: Vec<ServerConfig> = (0..shard_count)
            .map(|_| shard_config(40, &template))
            .collect();
        let sim = cluster(shards, balancer, seed);
        let mut sinks_a = Vec::new();
        let mut sinks_b = Vec::new();
        let a = sim.run_faulted(&wl, &[], Some(&mut sinks_a)).expect("run a");
        let b = sim.run_faulted(&wl, &[], Some(&mut sinks_b)).expect("run b");
        prop_assert_eq!(a, b);
        prop_assert_eq!(aggregate_utility(&sinks_a), aggregate_utility(&sinks_b));
    }
}
