//! Hosts: position, battery, and the first-order radio energy model.

use serde::{Deserialize, Serialize};

use crate::error::ManetError;

/// Radio energy parameters: `E_tx(k, d) = e_elec·k + e_amp·k·d^α`,
/// `E_rx(k) = e_elec·k` — the classic first-order model used throughout
/// the energy-aware-routing literature \[30–32\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioParams {
    /// Electronics energy per bit, joules (Tx and Rx alike).
    pub e_elec_j: f64,
    /// Amplifier energy coefficient, joules per bit per metre^α.
    pub e_amp_j: f64,
    /// Path-loss exponent α.
    pub alpha: f64,
    /// Maximum radio range in metres (unit-disk connectivity).
    pub range_m: f64,
}

impl Default for RadioParams {
    /// Textbook sensor/ad-hoc values: 50 nJ/bit electronics,
    /// 100 pJ/bit/m², α = 2, 250 m range.
    fn default() -> Self {
        RadioParams {
            e_elec_j: 50e-9,
            e_amp_j: 100e-12,
            alpha: 2.0,
            range_m: 250.0,
        }
    }
}

impl RadioParams {
    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ManetError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ManetError> {
        if !(self.e_elec_j.is_finite() && self.e_elec_j > 0.0) {
            return Err(ManetError::InvalidParameter("e_elec_j"));
        }
        if !(self.e_amp_j.is_finite() && self.e_amp_j > 0.0) {
            return Err(ManetError::InvalidParameter("e_amp_j"));
        }
        if !(self.alpha >= 1.0 && self.alpha <= 6.0) {
            return Err(ManetError::InvalidParameter("alpha"));
        }
        if !(self.range_m.is_finite() && self.range_m > 0.0) {
            return Err(ManetError::InvalidParameter("range_m"));
        }
        Ok(())
    }

    /// Energy to transmit `bits` over distance `d_m`, joules.
    #[must_use]
    pub fn tx_energy_j(&self, bits: u64, d_m: f64) -> f64 {
        bits as f64 * (self.e_elec_j + self.e_amp_j * d_m.max(0.0).powf(self.alpha))
    }

    /// Energy to receive `bits`, joules.
    #[must_use]
    pub fn rx_energy_j(&self, bits: u64) -> f64 {
        bits as f64 * self.e_elec_j
    }
}

/// One multimedia host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
    /// Remaining battery, joules.
    pub battery_j: f64,
    /// Battery at deployment, joules.
    pub initial_battery_j: f64,
    /// Exponential moving average of recent per-round energy drain,
    /// joules/round (drives lifetime-prediction routing \[32\]).
    pub drain_ema_j: f64,
}

impl Node {
    /// Creates a node at `(x, y)` with the given battery.
    #[must_use]
    pub fn new(x: f64, y: f64, battery_j: f64) -> Self {
        Node {
            x,
            y,
            battery_j,
            initial_battery_j: battery_j,
            drain_ema_j: 0.0,
        }
    }

    /// Whether the node still has energy.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.battery_j > 0.0
    }

    /// Remaining battery as a fraction of the initial charge.
    #[must_use]
    pub fn residual_fraction(&self) -> f64 {
        if self.initial_battery_j <= 0.0 {
            0.0
        } else {
            (self.battery_j / self.initial_battery_j).max(0.0)
        }
    }

    /// Euclidean distance to another node, metres.
    #[must_use]
    pub fn distance_to(&self, other: &Node) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Spends `energy_j` joules (battery floors at zero) and feeds the
    /// drain estimator.
    pub fn consume(&mut self, energy_j: f64) {
        self.battery_j = (self.battery_j - energy_j.max(0.0)).max(0.0);
    }

    /// Predicted rounds until exhaustion at the current drain rate
    /// (∞ with no observed drain — the node looks immortal until it
    /// starts working).
    #[must_use]
    pub fn predicted_lifetime_rounds(&self) -> f64 {
        if self.drain_ema_j <= 0.0 {
            f64::INFINITY
        } else {
            self.battery_j / self.drain_ema_j
        }
    }

    /// Updates the drain EMA with this round's consumption.
    pub fn record_drain(&mut self, round_drain_j: f64) {
        const SMOOTHING: f64 = 0.3;
        self.drain_ema_j =
            SMOOTHING * round_drain_j.max(0.0) + (1.0 - SMOOTHING) * self.drain_ema_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radio_validation() {
        let mut r = RadioParams::default();
        assert!(r.validate().is_ok());
        r.e_elec_j = 0.0;
        assert!(r.validate().is_err());
        let mut r = RadioParams::default();
        r.alpha = 0.5;
        assert!(r.validate().is_err());
        let mut r = RadioParams::default();
        r.range_m = -1.0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn tx_energy_grows_with_distance_and_bits() {
        let r = RadioParams::default();
        assert!(r.tx_energy_j(1000, 200.0) > r.tx_energy_j(1000, 50.0));
        assert!(r.tx_energy_j(2000, 50.0) > r.tx_energy_j(1000, 50.0));
        // At distance 0 only electronics energy remains.
        assert!((r.tx_energy_j(1000, 0.0) - r.rx_energy_j(1000)).abs() < 1e-18);
    }

    #[test]
    fn short_hops_spend_less_amplifier_energy() {
        // e_amp·d² convexity: two d/2 hops beat one d hop on amplifier
        // energy but pay electronics twice — the §4.2 trade-off.
        let r = RadioParams::default();
        let one_hop = r.tx_energy_j(1000, 200.0);
        let two_hops = 2.0 * r.tx_energy_j(1000, 100.0) + r.rx_energy_j(1000);
        assert!(two_hops < one_hop, "{two_hops} !< {one_hop}");
    }

    #[test]
    fn battery_floors_at_zero() {
        let mut n = Node::new(0.0, 0.0, 1.0);
        n.consume(0.6);
        assert!(n.is_alive());
        assert!((n.residual_fraction() - 0.4).abs() < 1e-12);
        n.consume(5.0);
        assert!(!n.is_alive());
        assert_eq!(n.battery_j, 0.0);
        assert_eq!(n.residual_fraction(), 0.0);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Node::new(0.0, 0.0, 1.0);
        let b = Node::new(3.0, 4.0, 1.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(&a), 0.0);
    }

    #[test]
    fn lifetime_prediction_tracks_drain() {
        let mut n = Node::new(0.0, 0.0, 10.0);
        assert!(n.predicted_lifetime_rounds().is_infinite());
        n.record_drain(1.0);
        let t1 = n.predicted_lifetime_rounds();
        assert!(t1.is_finite() && t1 > 0.0);
        // Heavier drain shortens the prediction.
        n.record_drain(5.0);
        assert!(n.predicted_lifetime_rounds() < t1);
    }
}
