//! # dms-manet — mobile ad hoc networks of multimedia hosts
//!
//! §4.2 of the paper: "In MANETs, every multimedia host has to perform
//! the functions of a router. So if some hosts die early due to lack of
//! energy, thereby causing the network to become fragmented, then it may
//! not be possible for other hosts in the network to communicate ...
//! It is therefore critical to develop energy-aware routing protocols
//! for MANETs whose aim is to maximize the network lifetime."
//!
//! * [`node`] — hosts with position, finite battery and the first-order
//!   radio model `E_tx = e_el·k + e_amp·k·d^α`, `E_rx = e_el·k`;
//! * [`network`] — unit-disk connectivity over a random deployment,
//!   aliveness and fragmentation checks;
//! * [`routing`] — the two §4.2 protocol families: **Minimum-Power
//!   Routing** \[30\] (repeatedly drains the cheapest paths) and the
//!   lifetime-aware family — **battery-cost routing** \[31\] and
//!   **lifetime-prediction routing** \[32\] — plus a max–min-residual
//!   baseline;
//! * [`lifetime`] — the experiment-E9 driver: random traffic sessions
//!   until a fixed fraction of hosts die, measuring network lifetime,
//!   delivered traffic and fragmentation.
//!
//! ## Example
//!
//! ```
//! use dms_manet::lifetime::{LifetimeConfig, run_lifetime};
//! use dms_manet::routing::Protocol;
//!
//! # fn main() -> Result<(), dms_manet::ManetError> {
//! let cfg = LifetimeConfig::small();
//! let mpr = run_lifetime(&cfg, Protocol::MinimumPower, 1)?;
//! let lpr = run_lifetime(&cfg, Protocol::LifetimePrediction, 1)?;
//! assert!(lpr.lifetime_rounds >= mpr.lifetime_rounds);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod lifetime;
pub mod network;
pub mod node;
pub mod routing;

pub use error::ManetError;
pub use lifetime::{run_lifetime, LifetimeConfig, LifetimeReport};
pub use network::Manet;
pub use node::{Node, RadioParams};
pub use routing::Protocol;
