//! The network: deployment, connectivity and fragmentation.

use dms_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::error::ManetError;
use crate::node::{Node, RadioParams};

/// A mobile-ad-hoc network of multimedia hosts with unit-disk links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manet {
    nodes: Vec<Node>,
    radio: RadioParams,
}

impl Manet {
    /// Creates a network from explicit nodes.
    ///
    /// # Errors
    ///
    /// Propagates radio-parameter validation failures.
    pub fn new(nodes: Vec<Node>, radio: RadioParams) -> Result<Self, ManetError> {
        radio.validate()?;
        Ok(Manet { nodes, radio })
    }

    /// Deploys `count` nodes uniformly at random in a
    /// `side_m × side_m` area, each with `battery_j` joules.
    ///
    /// # Errors
    ///
    /// Returns [`ManetError::InvalidParameter`] for a zero count or
    /// non-positive side/battery, and propagates radio validation.
    pub fn random_deployment(
        count: usize,
        side_m: f64,
        battery_j: f64,
        radio: RadioParams,
        rng: &mut SimRng,
    ) -> Result<Self, ManetError> {
        if count == 0 {
            return Err(ManetError::InvalidParameter("count"));
        }
        if !(side_m.is_finite() && side_m > 0.0) {
            return Err(ManetError::InvalidParameter("side_m"));
        }
        if !(battery_j.is_finite() && battery_j > 0.0) {
            return Err(ManetError::InvalidParameter("battery_j"));
        }
        let nodes = (0..count)
            .map(|_| Node::new(rng.uniform() * side_m, rng.uniform() * side_m, battery_j))
            .collect();
        Manet::new(nodes, radio)
    }

    /// Number of nodes (alive or dead).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The radio model.
    #[must_use]
    pub fn radio(&self) -> &RadioParams {
        &self.radio
    }

    /// Immutable node access.
    ///
    /// # Errors
    ///
    /// Returns [`ManetError::UnknownNode`] for an out-of-range index.
    pub fn node(&self, id: usize) -> Result<&Node, ManetError> {
        self.nodes.get(id).ok_or(ManetError::UnknownNode(id))
    }

    /// Mutable node access.
    ///
    /// # Errors
    ///
    /// Returns [`ManetError::UnknownNode`] for an out-of-range index.
    pub fn node_mut(&mut self, id: usize) -> Result<&mut Node, ManetError> {
        self.nodes.get_mut(id).ok_or(ManetError::UnknownNode(id))
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Fraction of nodes that have exhausted their battery.
    #[must_use]
    pub fn dead_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().filter(|n| !n.is_alive()).count() as f64 / self.nodes.len() as f64
    }

    /// Whether two *alive* nodes are within radio range of each other.
    #[must_use]
    pub fn linked(&self, a: usize, b: usize) -> bool {
        match (self.nodes.get(a), self.nodes.get(b)) {
            (Some(na), Some(nb)) if a != b && na.is_alive() && nb.is_alive() => {
                na.distance_to(nb) <= self.radio.range_m
            }
            _ => false,
        }
    }

    /// Alive neighbours of `id`.
    #[must_use]
    pub fn neighbors(&self, id: usize) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&j| self.linked(id, j))
            .collect()
    }

    /// Whether the set of alive nodes forms one connected component.
    ///
    /// A fragmented network is the §4.2 failure mode: "it may not be
    /// possible for other hosts in the network to communicate".
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let alive: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_alive())
            .collect();
        let Some(&start) = alive.first() else {
            return true;
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for j in self.neighbors(i) {
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == alive.len()
    }

    /// Total residual energy across the network, joules.
    #[must_use]
    pub fn total_residual_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.battery_j).sum()
    }

    /// Moves node `id` by `(dx, dy)` metres, clamping to the
    /// `[0, side] × [0, side]` deployment area — one step of the
    /// Brownian mobility model used by the lifetime experiments (the
    /// "mobile" in MANET).
    ///
    /// # Errors
    ///
    /// Returns [`ManetError::UnknownNode`] for an out-of-range index.
    pub fn move_node(
        &mut self,
        id: usize,
        dx: f64,
        dy: f64,
        side_m: f64,
    ) -> Result<(), ManetError> {
        let node = self.nodes.get_mut(id).ok_or(ManetError::UnknownNode(id))?;
        node.x = (node.x + dx).clamp(0.0, side_m);
        node.y = (node.y + dy).clamp(0.0, side_m);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_network() -> Manet {
        // Four nodes in a line, 200 m apart (range 250 m: only adjacent
        // nodes are linked).
        let nodes = (0..4)
            .map(|i| Node::new(200.0 * i as f64, 0.0, 10.0))
            .collect();
        Manet::new(nodes, RadioParams::default()).expect("valid radio")
    }

    #[test]
    fn deployment_validation() {
        let mut rng = SimRng::new(1);
        assert!(Manet::random_deployment(0, 100.0, 1.0, RadioParams::default(), &mut rng).is_err());
        assert!(Manet::random_deployment(5, 0.0, 1.0, RadioParams::default(), &mut rng).is_err());
        assert!(Manet::random_deployment(5, 100.0, 0.0, RadioParams::default(), &mut rng).is_err());
        let net = Manet::random_deployment(50, 1000.0, 5.0, RadioParams::default(), &mut rng)
            .expect("valid");
        assert_eq!(net.node_count(), 50);
        assert!(net.nodes().all(|n| n.x >= 0.0 && n.x <= 1000.0));
    }

    #[test]
    fn unit_disk_links() {
        let net = line_network();
        assert!(net.linked(0, 1));
        assert!(!net.linked(0, 2)); // 400 m > 250 m
        assert!(!net.linked(1, 1)); // no self link
        assert!(!net.linked(0, 99));
        assert_eq!(net.neighbors(1), vec![0, 2]);
    }

    #[test]
    fn dead_nodes_break_links() {
        let mut net = line_network();
        assert!(net.is_connected());
        net.node_mut(1).expect("exists").consume(100.0);
        assert!(!net.linked(0, 1));
        assert!(
            !net.is_connected(),
            "killing a line's interior node fragments it"
        );
        assert!((net.dead_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn connectivity_edge_cases() {
        let net = Manet::new(vec![], RadioParams::default()).expect("valid radio");
        assert!(net.is_connected());
        let one = Manet::new(vec![Node::new(0.0, 0.0, 1.0)], RadioParams::default())
            .expect("valid radio");
        assert!(one.is_connected());
    }

    #[test]
    fn mobility_stays_in_bounds() {
        let mut net = line_network();
        net.move_node(0, -500.0, 1e6, 600.0).expect("node exists");
        let n = net.node(0).expect("exists");
        assert_eq!(n.x, 0.0);
        assert_eq!(n.y, 600.0);
        assert!(net.move_node(99, 1.0, 1.0, 600.0).is_err());
    }

    #[test]
    fn mobility_changes_connectivity() {
        let mut net = line_network();
        assert!(net.linked(0, 1));
        // Walk node 1 far away: the link breaks.
        net.move_node(1, 0.0, 500.0, 1000.0).expect("node exists");
        assert!(!net.linked(0, 1));
    }

    #[test]
    fn residual_energy_accounting() {
        let mut net = line_network();
        let before = net.total_residual_j();
        net.node_mut(0).expect("exists").consume(3.0);
        assert!((before - net.total_residual_j() - 3.0).abs() < 1e-12);
    }
}
