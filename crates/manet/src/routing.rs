//! Energy-aware routing protocols.
//!
//! §4.2 classifies the field into two families:
//!
//! * **Minimum-power routing** \[30\]: "selects a routing path ... so as
//!   to minimize the total energy consumption ... Dijkstra's shortest
//!   path algorithm is used". Its "key disadvantage is that they
//!   repeatedly select the least-power cost routes ... nodes along these
//!   least-power cost routes tend to die soon."
//! * **Lifetime-aware routing** \[31\]\[32\]: "heuristics that consider the
//!   residual battery power at different nodes and route around nodes
//!   that have a low level of remaining battery energy".
//!
//! [`Protocol::BatteryCost`] scales each relay's cost by the inverse of
//! its remaining capacity (Toh's battery-cost routing \[31\]);
//! [`Protocol::LifetimePrediction`] additionally folds in each node's
//! *predicted* lifetime from its recent drain rate (LPR \[32\]);
//! [`Protocol::MaxMinResidual`] is the classic bottleneck baseline.

use serde::{Deserialize, Serialize};

use crate::network::Manet;

/// The routing protocol under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Protocol {
    /// Minimum total transmission+reception energy (Dijkstra) \[30\].
    MinimumPower,
    /// Battery-cost-aware: energy cost weighted by `1/residual` \[31\].
    BatteryCost,
    /// Lifetime-prediction routing: avoid nodes predicted to die soon \[32\].
    LifetimePrediction,
    /// Maximise the minimum residual battery along the route.
    MaxMinResidual,
}

impl Protocol {
    /// All protocols, the §4.2 baseline first.
    pub const ALL: [Protocol; 4] = [
        Protocol::MinimumPower,
        Protocol::BatteryCost,
        Protocol::LifetimePrediction,
        Protocol::MaxMinResidual,
    ];

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Protocol::MinimumPower => "minimum-power",
            Protocol::BatteryCost => "battery-cost",
            Protocol::LifetimePrediction => "lifetime-prediction",
            Protocol::MaxMinResidual => "max-min-residual",
        }
    }
}

/// Edge cost of relaying `bits` from `from` over link `(from, to)`
/// under `protocol`.
///
/// The cost always contains the physical energy; the lifetime-aware
/// protocols inflate it for weak relays.
fn edge_cost(net: &Manet, protocol: Protocol, from: usize, to: usize, bits: u64) -> f64 {
    let a = net.node(from).expect("caller verified");
    let b = net.node(to).expect("caller verified");
    let energy = net.radio().tx_energy_j(bits, a.distance_to(b)) + net.radio().rx_energy_j(bits);
    match protocol {
        Protocol::MinimumPower => energy,
        Protocol::BatteryCost => {
            // Toh's battery-cost function: cost inflates as the *sender's*
            // remaining capacity depletes (it is the sender that spends PA
            // energy). Absolute remaining joules, not a fraction — a
            // nearly-empty small battery must repel routes just like a
            // drained big one.
            energy / a.battery_j.max(1e-9)
        }
        Protocol::LifetimePrediction => {
            // Route around nodes predicted to die soon: weight by the
            // inverse predicted lifetime, floored to keep routes finite.
            let predicted = a.predicted_lifetime_rounds().min(1e6);
            energy * (1.0 + 100.0 / predicted.max(1.0)) / a.battery_j.max(1e-9)
        }
        Protocol::MaxMinResidual => {
            // Handled by the bottleneck search in `route`; the additive
            // cost only breaks ties by energy.
            energy
        }
    }
}

/// Computes a route from `src` to `dst` for `bits` under `protocol`.
///
/// Returns the node sequence `src..=dst`, or `None` when no path over
/// alive nodes exists (dead relays fragment the network, §4.2).
#[must_use]
pub fn route(
    net: &Manet,
    protocol: Protocol,
    src: usize,
    dst: usize,
    bits: u64,
) -> Option<Vec<usize>> {
    let n = net.node_count();
    if src >= n || dst >= n {
        return None;
    }
    if !net.node(src).ok()?.is_alive() || !net.node(dst).ok()?.is_alive() {
        return None;
    }
    if src == dst {
        return Some(vec![src]);
    }
    match protocol {
        Protocol::MaxMinResidual => bottleneck_route(net, src, dst, bits),
        _ => dijkstra(net, protocol, src, dst, bits),
    }
}

/// Dijkstra over alive-node links with protocol-specific edge costs.
fn dijkstra(
    net: &Manet,
    protocol: Protocol,
    src: usize,
    dst: usize,
    bits: u64,
) -> Option<Vec<usize>> {
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut done = vec![false; n];
    dist[src] = 0.0;
    loop {
        // Linear-scan extract-min: fine for the ≤ a-few-hundred-node
        // networks of E9.
        let u = (0..n)
            .filter(|&i| !done[i] && dist[i].is_finite())
            .min_by(|&a, &b| {
                dist[a]
                    .partial_cmp(&dist[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })?;
        if u == dst {
            break;
        }
        done[u] = true;
        for v in net.neighbors(u) {
            if done[v] {
                continue;
            }
            let alt = dist[u] + edge_cost(net, protocol, u, v, bits);
            if alt < dist[v] {
                dist[v] = alt;
                prev[v] = u;
            }
        }
    }
    reconstruct(&prev, src, dst)
}

/// Widest-path (maximise the minimum residual battery along the route),
/// with energy as tie-break via a tiny additive term.
fn bottleneck_route(net: &Manet, src: usize, dst: usize, bits: u64) -> Option<Vec<usize>> {
    let n = net.node_count();
    // width[i] = best achievable bottleneck residual on a path src→i.
    let mut width = vec![f64::NEG_INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut done = vec![false; n];
    width[src] = net.node(src).ok()?.battery_j;
    loop {
        let u = (0..n)
            .filter(|&i| !done[i] && width[i] > f64::NEG_INFINITY)
            .max_by(|&a, &b| {
                width[a]
                    .partial_cmp(&width[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })?;
        if u == dst {
            break;
        }
        done[u] = true;
        for v in net.neighbors(u) {
            if done[v] {
                continue;
            }
            let relay_residual = net.node(v).expect("neighbor exists").battery_j;
            // Tiny energy penalty keeps routes short among equals.
            let cost_bias = edge_cost(net, Protocol::MinimumPower, u, v, bits) * 1e-6;
            let alt = width[u].min(relay_residual) - cost_bias;
            if alt > width[v] {
                width[v] = alt;
                prev[v] = u;
            }
        }
    }
    reconstruct(&prev, src, dst)
}

fn reconstruct(prev: &[usize], src: usize, dst: usize) -> Option<Vec<usize>> {
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur];
        if cur == usize::MAX {
            return None;
        }
        path.push(cur);
        if path.len() > prev.len() {
            return None; // defensive: malformed predecessor chain
        }
    }
    path.reverse();
    Some(path)
}

/// Charges the physical energy of moving `bits` along `path` to the
/// batteries of its nodes and returns the total energy spent.
///
/// Every non-terminal node pays reception *and* retransmission; the
/// source only transmits, the destination only receives.
pub fn charge_route(net: &mut Manet, path: &[usize], bits: u64) -> f64 {
    let mut total = 0.0;
    for w in path.windows(2) {
        let (from, to) = (w[0], w[1]);
        let d = {
            let a = net.node(from).expect("path nodes exist");
            let b = net.node(to).expect("path nodes exist");
            a.distance_to(b)
        };
        let tx = net.radio().tx_energy_j(bits, d);
        let rx = net.radio().rx_energy_j(bits);
        net.node_mut(from).expect("path nodes exist").consume(tx);
        net.node_mut(to).expect("path nodes exist").consume(rx);
        total += tx + rx;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, RadioParams};

    /// Two parallel two-hop corridors between src (0) and dst (1):
    /// relays 2 (upper) and 3 (lower).
    fn twin_corridor(upper_battery: f64, lower_battery: f64) -> Manet {
        let nodes = vec![
            Node::new(0.0, 0.0, 10.0),              // 0 src
            Node::new(400.0, 0.0, 10.0),            // 1 dst (two hops away)
            Node::new(200.0, 60.0, upper_battery),  // 2 upper relay
            Node::new(200.0, -60.0, lower_battery), // 3 lower relay
        ];
        Manet::new(nodes, RadioParams::default()).expect("valid radio")
    }

    #[test]
    fn min_power_prefers_short_relays() {
        // Direct 0→1 is 400 m (out of range); both relays give two-hop
        // paths; the cheaper one is the closer (smaller detour) relay.
        let net = twin_corridor(10.0, 10.0);
        let path = route(&net, Protocol::MinimumPower, 0, 1, 1000).expect("reachable");
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], 0);
        assert_eq!(path[2], 1);
    }

    #[test]
    fn battery_cost_routes_around_weak_relays() {
        // Upper relay nearly drained: lifetime-aware protocols must take
        // the lower corridor even though geometry is symmetric.
        let mut net = twin_corridor(10.0, 10.0);
        net.node_mut(2).expect("exists").consume(9.9); // 1% residual
        for protocol in [
            Protocol::BatteryCost,
            Protocol::LifetimePrediction,
            Protocol::MaxMinResidual,
        ] {
            let path = route(&net, protocol, 0, 1, 1000).expect("reachable");
            assert_eq!(
                path,
                vec![0, 3, 1],
                "{protocol:?} should avoid the weak relay"
            );
        }
    }

    #[test]
    fn min_power_ignores_batteries() {
        // Make the upper corridor geometrically cheaper but nearly dead:
        // minimum-power takes it anyway (its documented flaw).
        let nodes = vec![
            Node::new(0.0, 0.0, 10.0),
            Node::new(400.0, 0.0, 10.0),
            Node::new(200.0, 10.0, 0.1),    // cheap but weak
            Node::new(200.0, -120.0, 10.0), // detour but strong
        ];
        let net = Manet::new(nodes, RadioParams::default()).expect("valid radio");
        let path = route(&net, Protocol::MinimumPower, 0, 1, 1000).expect("reachable");
        assert_eq!(path, vec![0, 2, 1]);
        let path = route(&net, Protocol::BatteryCost, 0, 1, 1000).expect("reachable");
        assert_eq!(path, vec![0, 3, 1]);
    }

    #[test]
    fn unreachable_and_trivial_cases() {
        let net = twin_corridor(10.0, 10.0);
        assert_eq!(
            route(&net, Protocol::MinimumPower, 0, 0, 100),
            Some(vec![0])
        );
        assert_eq!(route(&net, Protocol::MinimumPower, 0, 99, 100), None);
        // Kill both relays: dst unreachable.
        let mut net = twin_corridor(10.0, 10.0);
        net.node_mut(2).expect("exists").consume(100.0);
        net.node_mut(3).expect("exists").consume(100.0);
        assert_eq!(route(&net, Protocol::MinimumPower, 0, 1, 100), None);
    }

    #[test]
    fn dead_endpoint_has_no_route() {
        let mut net = twin_corridor(10.0, 10.0);
        net.node_mut(1).expect("exists").consume(100.0);
        assert_eq!(route(&net, Protocol::BatteryCost, 0, 1, 100), None);
    }

    #[test]
    fn charge_route_conserves_energy() {
        let mut net = twin_corridor(10.0, 10.0);
        let path = route(&net, Protocol::MinimumPower, 0, 1, 1000).expect("reachable");
        let before = net.total_residual_j();
        let spent = charge_route(&mut net, &path, 1000);
        assert!(spent > 0.0);
        assert!((before - net.total_residual_j() - spent).abs() < 1e-12);
    }

    #[test]
    fn all_protocols_find_some_route_in_healthy_network() {
        let net = twin_corridor(10.0, 10.0);
        for p in Protocol::ALL {
            assert!(route(&net, p, 0, 1, 500).is_some(), "{p:?}");
        }
    }
}
