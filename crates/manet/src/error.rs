//! Error type for the MANET substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by MANET construction and experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManetError {
    /// A node index is outside the network.
    UnknownNode(usize),
    /// A numeric parameter was out of range.
    InvalidParameter(&'static str),
}

impl fmt::Display for ManetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManetError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            ManetError::InvalidParameter(name) => write!(f, "parameter `{name}` is out of range"),
        }
    }
}

impl Error for ManetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ManetError::UnknownNode(5).to_string().contains('5'));
    }

    #[test]
    fn is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ManetError>();
    }
}
