//! Network-lifetime evaluation — experiment E9.
//!
//! §4.2 defines network lifetime "as the duration of time after which a
//! fixed percentage of multimedia hosts in the network 'die' as a result
//! of energy exhaustion", and reports that lifetime-aware protocols
//! "improve the network lifetime by more than 20%, on average" despite
//! extra control traffic.
//!
//! [`run_lifetime`] drives a random-session workload over one protocol
//! until the death threshold is crossed, measuring lifetime in rounds,
//! delivered traffic, first-death time and fragmentation.

use dms_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::error::ManetError;
use crate::network::Manet;
use crate::node::RadioParams;
use crate::routing::{charge_route, route, Protocol};

/// Configuration of one lifetime experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeConfig {
    /// Number of hosts.
    pub nodes: usize,
    /// Deployment area side, metres.
    pub side_m: f64,
    /// Initial battery per host, joules.
    pub battery_j: f64,
    /// Radio parameters.
    pub radio: RadioParams,
    /// Random sessions initiated per round.
    pub sessions_per_round: usize,
    /// Bits per session.
    pub session_bits: u64,
    /// Fraction of dead hosts that ends the network's life.
    pub death_threshold: f64,
    /// Hard cap on simulated rounds.
    pub max_rounds: u64,
    /// Extra per-round control-traffic energy for lifetime-aware
    /// protocols, as a fraction of a session's energy ("these protocols
    /// indeed create additional control traffic").
    pub control_overhead: f64,
    /// Per-round Brownian mobility step (standard deviation in metres
    /// per axis); 0 = static network.
    pub mobility_sigma_m: f64,
}

impl LifetimeConfig {
    /// The E9 reference setup: 50 hosts in 1000 m × 1000 m.
    #[must_use]
    pub fn reference() -> Self {
        LifetimeConfig {
            nodes: 50,
            side_m: 1000.0,
            battery_j: 5.0,
            radio: RadioParams::default(),
            sessions_per_round: 5,
            session_bits: 10_000,
            death_threshold: 0.2,
            max_rounds: 100_000,
            control_overhead: 0.02,
            mobility_sigma_m: 0.0,
        }
    }

    /// A quick small instance for unit tests and doc examples.
    #[must_use]
    pub fn small() -> Self {
        LifetimeConfig {
            nodes: 20,
            side_m: 600.0,
            battery_j: 1.0,
            ..Self::reference()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ManetError::InvalidParameter`] naming the offending
    /// field, and propagates radio validation.
    pub fn validate(&self) -> Result<(), ManetError> {
        if self.nodes < 2 {
            return Err(ManetError::InvalidParameter("nodes"));
        }
        if !(self.death_threshold > 0.0 && self.death_threshold <= 1.0) {
            return Err(ManetError::InvalidParameter("death_threshold"));
        }
        if self.sessions_per_round == 0 || self.session_bits == 0 || self.max_rounds == 0 {
            return Err(ManetError::InvalidParameter("workload"));
        }
        if !(self.control_overhead >= 0.0 && self.control_overhead < 1.0) {
            return Err(ManetError::InvalidParameter("control_overhead"));
        }
        if !(self.mobility_sigma_m.is_finite() && self.mobility_sigma_m >= 0.0) {
            return Err(ManetError::InvalidParameter("mobility_sigma_m"));
        }
        self.radio.validate()
    }
}

/// Measured outcome of one lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeReport {
    /// Protocol evaluated.
    pub protocol: Protocol,
    /// Rounds survived before the death threshold was crossed.
    pub lifetime_rounds: u64,
    /// Round at which the first host died (0 if none did).
    pub first_death_round: u64,
    /// Sessions successfully routed.
    pub delivered_sessions: u64,
    /// Sessions that found no route.
    pub failed_sessions: u64,
    /// Whether the alive subgraph was still connected at the end.
    pub connected_at_end: bool,
    /// Total energy spent, joules.
    pub energy_spent_j: f64,
    /// Total hops over all delivered sessions (for mean route length).
    pub total_hops: u64,
}

impl LifetimeReport {
    /// Mean route length in hops over delivered sessions.
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.delivered_sessions == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered_sessions as f64
        }
    }

    /// Delivery ratio over all attempted sessions.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.delivered_sessions + self.failed_sessions;
        if total == 0 {
            0.0
        } else {
            self.delivered_sessions as f64 / total as f64
        }
    }
}

/// Runs the lifetime experiment for one protocol.
///
/// The deployment and the session sequence depend only on `seed`, so
/// different protocols face *identical* workloads.
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn run_lifetime(
    cfg: &LifetimeConfig,
    protocol: Protocol,
    seed: u64,
) -> Result<LifetimeReport, ManetError> {
    cfg.validate()?;
    let root = SimRng::new(seed);
    let mut deploy_rng = root.substream("manet-deploy", 0);
    let mut session_rng = root.substream("manet-sessions", 0);
    let mut mobility_rng = root.substream("manet-mobility", 0);
    let mut net = Manet::random_deployment(
        cfg.nodes,
        cfg.side_m,
        cfg.battery_j,
        cfg.radio,
        &mut deploy_rng,
    )?;
    let is_lifetime_aware = matches!(
        protocol,
        Protocol::BatteryCost | Protocol::LifetimePrediction
    );
    let session_energy_estimate = cfg.radio.tx_energy_j(cfg.session_bits, cfg.side_m / 4.0);
    let mut delivered = 0u64;
    let mut failed = 0u64;
    let mut first_death = 0u64;
    let mut energy = 0.0;
    let mut total_hops = 0u64;
    let mut round = 0u64;
    while round < cfg.max_rounds {
        round += 1;
        let mut round_drain = vec![0.0; cfg.nodes];
        for _ in 0..cfg.sessions_per_round {
            let src = session_rng.below(cfg.nodes);
            let mut dst = session_rng.below(cfg.nodes);
            while dst == src {
                dst = session_rng.below(cfg.nodes);
            }
            match route(&net, protocol, src, dst, cfg.session_bits) {
                Some(path) => {
                    let before: Vec<f64> = path
                        .iter()
                        .map(|&i| net.node(i).expect("path node").battery_j)
                        .collect();
                    energy += charge_route(&mut net, &path, cfg.session_bits);
                    for (k, &i) in path.iter().enumerate() {
                        let spent = before[k] - net.node(i).expect("path node").battery_j;
                        round_drain[i] += spent;
                    }
                    delivered += 1;
                    total_hops += (path.len() - 1) as u64;
                }
                None => failed += 1,
            }
        }
        // Lifetime-aware protocols pay for their control traffic: a small
        // broadcast charge on every alive node.
        if is_lifetime_aware {
            let control = cfg.control_overhead * session_energy_estimate / cfg.nodes.max(1) as f64;
            for i in 0..cfg.nodes {
                if net.node(i).expect("index in range").is_alive() {
                    net.node_mut(i).expect("index in range").consume(control);
                    round_drain[i] += control;
                    energy += control;
                }
            }
        }
        // Feed the drain estimators (used by lifetime prediction).
        for i in 0..cfg.nodes {
            net.node_mut(i)
                .expect("index in range")
                .record_drain(round_drain[i]);
        }
        // Hosts wander (Brownian mobility, reflected at the area edges).
        if cfg.mobility_sigma_m > 0.0 {
            for i in 0..cfg.nodes {
                if net.node(i).expect("index in range").is_alive() {
                    let dx = mobility_rng.normal(0.0, cfg.mobility_sigma_m);
                    let dy = mobility_rng.normal(0.0, cfg.mobility_sigma_m);
                    net.move_node(i, dx, dy, cfg.side_m)
                        .expect("index in range");
                }
            }
        }
        if first_death == 0 && net.dead_fraction() > 0.0 {
            first_death = round;
        }
        if net.dead_fraction() >= cfg.death_threshold {
            break;
        }
    }
    Ok(LifetimeReport {
        protocol,
        lifetime_rounds: round,
        first_death_round: first_death,
        delivered_sessions: delivered,
        failed_sessions: failed,
        connected_at_end: net.is_connected(),
        energy_spent_j: energy,
        total_hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let mut c = LifetimeConfig::small();
        c.nodes = 1;
        assert!(run_lifetime(&c, Protocol::MinimumPower, 1).is_err());
        let mut c = LifetimeConfig::small();
        c.death_threshold = 0.0;
        assert!(run_lifetime(&c, Protocol::MinimumPower, 1).is_err());
        let mut c = LifetimeConfig::small();
        c.control_overhead = 1.0;
        assert!(run_lifetime(&c, Protocol::MinimumPower, 1).is_err());
    }

    #[test]
    fn experiment_terminates_and_accounts() {
        let r = run_lifetime(&LifetimeConfig::small(), Protocol::MinimumPower, 3)
            .expect("valid config");
        assert!(r.lifetime_rounds > 0);
        assert!(r.delivered_sessions > 0);
        assert!(r.energy_spent_j > 0.0);
        assert!(r.first_death_round <= r.lifetime_rounds);
        assert!(r.delivery_ratio() > 0.0 && r.delivery_ratio() <= 1.0);
    }

    #[test]
    fn route_length_accounting() {
        let r = run_lifetime(&LifetimeConfig::small(), Protocol::MinimumPower, 3)
            .expect("valid config");
        assert!(
            r.mean_hops() >= 1.0,
            "delivered sessions take at least one hop"
        );
        assert!(r.total_hops >= r.delivered_sessions);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LifetimeConfig::small();
        let a = run_lifetime(&cfg, Protocol::BatteryCost, 7).expect("valid");
        let b = run_lifetime(&cfg, Protocol::BatteryCost, 7).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn lifetime_aware_protocols_beat_minimum_power() {
        // E9: >20% average lifetime improvement. Averaged over a few
        // seeds to damp deployment luck.
        let cfg = LifetimeConfig::small();
        let seeds = [1u64, 2, 3, 4, 5];
        let avg = |p: Protocol| {
            seeds
                .iter()
                .map(|&s| run_lifetime(&cfg, p, s).expect("valid").lifetime_rounds as f64)
                .sum::<f64>()
                / seeds.len() as f64
        };
        let mpr = avg(Protocol::MinimumPower);
        let bc = avg(Protocol::BatteryCost);
        let lpr = avg(Protocol::LifetimePrediction);
        let best = bc.max(lpr);
        let improvement = best / mpr - 1.0;
        assert!(
            improvement > 0.20,
            "lifetime-aware improvement {:.1}% should exceed 20% (mpr {mpr}, bc {bc}, lpr {lpr})",
            improvement * 100.0
        );
    }

    #[test]
    fn first_death_is_postponed_by_lifetime_awareness() {
        let cfg = LifetimeConfig::small();
        let seeds = [11u64, 12, 13];
        let avg_first = |p: Protocol| {
            seeds
                .iter()
                .map(|&s| run_lifetime(&cfg, p, s).expect("valid").first_death_round as f64)
                .sum::<f64>()
                / seeds.len() as f64
        };
        assert!(avg_first(Protocol::BatteryCost) > avg_first(Protocol::MinimumPower));
    }

    #[test]
    fn mobility_validation_and_determinism() {
        let mut cfg = LifetimeConfig::small();
        cfg.mobility_sigma_m = -1.0;
        assert!(run_lifetime(&cfg, Protocol::MinimumPower, 1).is_err());
        cfg.mobility_sigma_m = 15.0;
        let a = run_lifetime(&cfg, Protocol::BatteryCost, 5).expect("valid");
        let b = run_lifetime(&cfg, Protocol::BatteryCost, 5).expect("valid");
        assert_eq!(a, b);
        assert!(a.lifetime_rounds > 0);
    }

    #[test]
    fn mobility_changes_the_outcome() {
        let mut still = LifetimeConfig::small();
        still.max_rounds = 200;
        still.death_threshold = 1.0;
        let mut moving = still;
        moving.mobility_sigma_m = 25.0;
        let rs = run_lifetime(&still, Protocol::MinimumPower, 7).expect("valid");
        let rm = run_lifetime(&moving, Protocol::MinimumPower, 7).expect("valid");
        // Same workload, different topology evolution: measurably different.
        assert_ne!(rs.energy_spent_j, rm.energy_spent_j);
    }

    #[test]
    fn control_overhead_costs_energy() {
        // Batteries must outlast the horizon: if nodes die mid-run, the
        // extra control drain can kill relays early and *reduce* total
        // session energy, making the comparison seed-dependent.
        let mut cfg = LifetimeConfig::small();
        cfg.max_rounds = 50;
        cfg.death_threshold = 1.0; // run the full 50 rounds
        cfg.battery_j = 100.0;
        let with = run_lifetime(&cfg, Protocol::BatteryCost, 9).expect("valid");
        cfg.control_overhead = 0.0;
        let without = run_lifetime(&cfg, Protocol::BatteryCost, 9).expect("valid");
        assert_eq!(with.first_death_round, 0, "no node should die");
        assert!(with.energy_spent_j > without.energy_spent_j);
    }
}
