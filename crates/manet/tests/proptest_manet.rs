//! Property-based tests for the MANET substrate.

use dms_manet::network::Manet;
use dms_manet::node::RadioParams;
use dms_manet::routing::{charge_route, route, Protocol};
use dms_sim::SimRng;
use proptest::prelude::*;

fn random_network(nodes: usize, side: f64, seed: u64) -> Manet {
    let mut rng = SimRng::new(seed);
    Manet::random_deployment(nodes, side, 5.0, RadioParams::default(), &mut rng)
        .expect("valid deployment")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any returned route is a real path: starts at src, ends at dst,
    /// every hop within radio range, no dead relays, no repeated nodes.
    #[test]
    fn routes_are_well_formed(nodes in 5usize..40, seed in 0u64..200, pair in 0u64..1000) {
        let net = random_network(nodes, 800.0, seed);
        let src = (pair as usize) % nodes;
        let dst = (pair as usize / nodes) % nodes;
        for protocol in Protocol::ALL {
            if let Some(path) = route(&net, protocol, src, dst, 1_000) {
                prop_assert_eq!(path[0], src);
                prop_assert_eq!(*path.last().expect("non-empty"), dst);
                for w in path.windows(2) {
                    prop_assert!(net.linked(w[0], w[1]), "{:?}: hop out of range", protocol);
                }
                let mut sorted = path.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), path.len(), "{:?}: route revisits a node", protocol);
            }
        }
    }

    /// If minimum-power finds a route, its physical energy is minimal
    /// among all protocols' routes (it is the energy-optimal baseline).
    #[test]
    fn min_power_route_is_cheapest(nodes in 5usize..30, seed in 0u64..100) {
        let net = random_network(nodes, 700.0, seed);
        let bits = 1_000;
        let physical = |path: &[usize]| -> f64 {
            path.windows(2)
                .map(|w| {
                    let a = net.node(w[0]).expect("exists");
                    let b = net.node(w[1]).expect("exists");
                    net.radio().tx_energy_j(bits, a.distance_to(b))
                        + net.radio().rx_energy_j(bits)
                })
                .sum()
        };
        if let Some(mp) = route(&net, Protocol::MinimumPower, 0, nodes - 1, bits) {
            let e_mp = physical(&mp);
            for protocol in [Protocol::BatteryCost, Protocol::LifetimePrediction, Protocol::MaxMinResidual] {
                if let Some(other) = route(&net, protocol, 0, nodes - 1, bits) {
                    prop_assert!(
                        e_mp <= physical(&other) + 1e-12,
                        "{:?} found a cheaper route than minimum-power",
                        protocol
                    );
                }
            }
        }
    }

    /// Charging a route never makes a battery negative and conserves
    /// total energy exactly.
    #[test]
    fn charging_conserves_energy(nodes in 5usize..30, seed in 0u64..100, bits in 100u64..100_000) {
        let mut net = random_network(nodes, 700.0, seed);
        if let Some(path) = route(&net, Protocol::MinimumPower, 0, nodes - 1, bits) {
            let before = net.total_residual_j();
            let spent = charge_route(&mut net, &path, bits);
            prop_assert!(spent >= 0.0);
            prop_assert!((before - net.total_residual_j() - spent).abs() < 1e-9);
            for node in net.nodes() {
                prop_assert!(node.battery_j >= 0.0);
            }
        }
    }

    /// Max-min-residual routes never traverse a relay weaker than the
    /// best achievable bottleneck (verified against brute force on tiny
    /// networks).
    #[test]
    fn max_min_bottleneck_optimal_on_small_nets(seed in 0u64..60) {
        let mut rng = SimRng::new(seed);
        let n = 6;
        let mut net = Manet::random_deployment(n, 450.0, 5.0, RadioParams::default(), &mut rng)
            .expect("valid");
        // Randomly drain some batteries to create contrast.
        for i in 0..n {
            let drain = 4.9 * rng.uniform();
            net.node_mut(i).expect("exists").consume(drain);
        }
        let src = 0;
        let dst = n - 1;
        if !net.node(src).expect("exists").is_alive() || !net.node(dst).expect("exists").is_alive() {
            return Ok(());
        }
        let bottleneck = |path: &[usize]| {
            path.iter()
                .map(|&i| net.node(i).expect("exists").battery_j)
                .fold(f64::INFINITY, f64::min)
        };
        // Brute force: enumerate all simple paths with DFS.
        fn dfs(
            net: &Manet,
            cur: usize,
            dst: usize,
            visited: &mut Vec<usize>,
            best: &mut f64,
        ) {
            if cur == dst {
                let b = visited
                    .iter()
                    .map(|&i| net.node(i).expect("exists").battery_j)
                    .fold(f64::INFINITY, f64::min);
                *best = best.max(b);
                return;
            }
            for next in net.neighbors(cur) {
                if !visited.contains(&next) {
                    visited.push(next);
                    dfs(net, next, dst, visited, best);
                    visited.pop();
                }
            }
        }
        let mut best = f64::NEG_INFINITY;
        let mut visited = vec![src];
        dfs(&net, src, dst, &mut visited, &mut best);
        match route(&net, Protocol::MaxMinResidual, src, dst, 1_000) {
            Some(path) => {
                prop_assert!(
                    bottleneck(&path) >= best - 1e-6,
                    "widest-path bottleneck {} below optimum {best}",
                    bottleneck(&path)
                );
            }
            None => prop_assert!(best == f64::NEG_INFINITY, "router missed an existing path"),
        }
    }
}
