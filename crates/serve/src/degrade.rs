//! Graceful QoS degradation by FGS layer shedding.
//!
//! Admission control bounds the *mean* load, but long-range-dependent
//! arrivals (§3.2) still pile sessions up in bursts that no mean-based
//! bound prevents. [`LayerController`] is the second line of defence:
//! when the instantaneous full-quality demand of the active sessions
//! overruns the link, it sheds FGS enhancement planes server-wide —
//! every session keeps its mandatory base layer and loses quality
//! *fine-granularly* instead of missing deadlines. This is the E11
//! property ("graceful degradation, no cliffs") raised to server scale,
//! and the server-side dual of the client-feedback truncation of
//! [`dms_wireless::fgs`].
//!
//! Hysteresis (separate shed/restore thresholds, restore only once the
//! backlog has drained) keeps the controller from oscillating at a
//! threshold.

use dms_media::fgs::BIT_PLANES;
use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// Fixed-point (Q16) gains for the feedback shedding controller.
///
/// The closed-loop alternative to the hysteresis thresholds: instead
/// of stepping one plane per overloaded slot, a PI law on the
/// *measured* per-slot deadline-miss rate computes the shed depth
/// directly. All arithmetic is `i64` integer math on Q16 fixed-point
/// values so the controller is bit-deterministic on every platform —
/// the same property that keeps the cluster run-logs byte-identical
/// at any `DMS_THREADS`.
///
/// Per slot, with `m` the previous slot's miss count over `n` active
/// sessions (both integers):
///
/// ```text
/// r  = (m << 16) / max(n, 1)                    // miss rate, Q16
/// e  = r - target_miss_q16                      // error, Q16
/// I  = clamp(I + e, 0, integral_max_q16)        // anti-windup
/// s  = clamp((kp·e + ki·I) >> 32, 0, BIT_PLANES - min_layers)
/// layers = BIT_PLANES - s
/// ```
///
/// The target is strictly positive so the integral *unwinds* at
/// `target` per slot once misses stop; the `[0, integral_max]` clamp
/// is the anti-windup — the integral can never demand more shed than
/// `(ki·integral_max) >> 32` planes, and never goes negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PiConfig {
    /// Proportional gain, Q16 (`6.0` ≈ one plane shed per 0.17 of
    /// instantaneous miss rate above target).
    pub kp_q16: i64,
    /// Integral gain, Q16.
    pub ki_q16: i64,
    /// Miss-rate setpoint, Q16; must be in `(0, 1]` so the loop has
    /// headroom to unwind.
    pub target_miss_q16: i64,
    /// Anti-windup clamp on the accumulated error, Q16.
    pub integral_max_q16: i64,
}

impl Default for PiConfig {
    fn default() -> Self {
        PiConfig {
            kp_q16: 6 << 16,
            ki_q16: 1 << 16,
            // ~2% target miss rate.
            target_miss_q16: 1_311,
            // With ki = 1.0 the integral term alone can shed at most
            // every enhancement plane, never more.
            integral_max_q16: (BIT_PLANES as i64) << 16,
        }
    }
}

impl PiConfig {
    /// Validates gains and bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ServeError> {
        const GAIN_MAX: i64 = 1 << 32;
        if !(0..=GAIN_MAX).contains(&self.kp_q16) {
            return Err(ServeError::InvalidParameter("kp_q16"));
        }
        if !(0..=GAIN_MAX).contains(&self.ki_q16) {
            return Err(ServeError::InvalidParameter("ki_q16"));
        }
        if self.kp_q16 == 0 && self.ki_q16 == 0 {
            return Err(ServeError::InvalidParameter("kp_q16"));
        }
        if !(1..=(1i64 << 16)).contains(&self.target_miss_q16) {
            return Err(ServeError::InvalidParameter("target_miss_q16"));
        }
        if self.integral_max_q16 < 0 {
            return Err(ServeError::InvalidParameter("integral_max_q16"));
        }
        Ok(())
    }
}

/// Configuration of the layer-shedding controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeConfig {
    /// Shed one plane when demand/capacity exceeds this (e.g. `1.0`).
    pub shed_above: f64,
    /// Restore one plane when demand/capacity falls below this *and*
    /// the backlog has drained. Must be `< shed_above`.
    pub restore_below: f64,
    /// Planes the controller will never shed below (0 = base layer
    /// only is acceptable under extreme overload).
    pub min_layers: usize,
    /// Closed-loop PI shedding on the measured deadline-miss rate.
    /// `None` keeps the open-loop hysteresis law above, bit for bit.
    #[serde(default)]
    pub pi: Option<PiConfig>,
    /// Warm-up: the server rejects every arrival offered before this
    /// slot (a freshly provisioned shard serves nothing while it
    /// fills caches / pages in state). `0` = always warm.
    #[serde(default)]
    pub warmup_slots: u64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            shed_above: 1.0,
            restore_below: 0.9,
            min_layers: 0,
            pi: None,
            warmup_slots: 0,
        }
    }
}

impl DegradeConfig {
    /// Validates thresholds and bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if !(self.shed_above.is_finite() && self.shed_above > 0.0) {
            return Err(ServeError::InvalidParameter("shed_above"));
        }
        if !(self.restore_below.is_finite()
            && self.restore_below > 0.0
            && self.restore_below < self.shed_above)
        {
            return Err(ServeError::InvalidParameter("restore_below"));
        }
        if self.min_layers > BIT_PLANES {
            return Err(ServeError::InvalidParameter("min_layers"));
        }
        if let Some(pi) = &self.pi {
            pi.validate()?;
        }
        Ok(())
    }
}

/// The server-wide enhancement-layer cap, adapted once per slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerController {
    config: DegradeConfig,
    layers: usize,
    /// PI accumulated error, Q16 (unused by the hysteresis law).
    #[serde(default)]
    integral_q16: i64,
}

impl LayerController {
    /// Creates a controller starting at full quality ([`BIT_PLANES`]
    /// enhancement planes allowed).
    ///
    /// # Errors
    ///
    /// Propagates [`DegradeConfig::validate`] failures.
    pub fn new(config: DegradeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        Ok(LayerController {
            config,
            layers: BIT_PLANES,
            integral_q16: 0,
        })
    }

    /// Current server-wide enhancement-layer cap.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// PI accumulated error, Q16 (`0` for the hysteresis law).
    #[must_use]
    pub fn integral_q16(&self) -> i64 {
        self.integral_q16
    }

    /// Observes one slot — `full_demand_bits` is what the active
    /// sessions would request at *full* quality, `backlog_bits` the
    /// bits still queued from previous slots — and returns the layer
    /// cap to serve the coming slot with.
    ///
    /// Shedding reacts to the full-quality pressure (so the controller
    /// converges to the deepest cut that relieves the link instead of
    /// flapping), restoring additionally waits for the backlog to
    /// drain.
    pub fn observe(
        &mut self,
        full_demand_bits: u64,
        capacity_bits: u64,
        backlog_bits: u64,
    ) -> usize {
        let util = full_demand_bits as f64 / capacity_bits.max(1) as f64;
        if util > self.config.shed_above {
            // One plane per slot: sheds within BIT_PLANES slots of a
            // burst onset, without overreacting to a single spike.
            if self.layers > self.config.min_layers {
                self.layers -= 1;
            }
        } else if util < self.config.restore_below && backlog_bits == 0 && self.layers < BIT_PLANES
        {
            self.layers += 1;
        }
        self.layers
    }

    /// Observes one slot with closed-loop feedback: `prev_misses`
    /// deadline misses over `prev_active` active sessions on the
    /// *previous* slot (the freshest measurement the controller can
    /// act on without seeing the future). Dispatches to the PI law
    /// when [`DegradeConfig::pi`] is set, otherwise falls back to the
    /// hysteresis law — bit for bit, so every existing run is
    /// untouched.
    pub fn observe_feedback(
        &mut self,
        full_demand_bits: u64,
        capacity_bits: u64,
        backlog_bits: u64,
        prev_misses: u64,
        prev_active: u64,
    ) -> usize {
        let Some(pi) = self.config.pi else {
            return self.observe(full_demand_bits, capacity_bits, backlog_bits);
        };
        // Q16 miss rate; misses <= active (one miss per session per
        // slot), so r <= 1<<16 and every product below fits i64.
        let rate_q16 = ((prev_misses as i64) << 16) / prev_active.max(1) as i64;
        let error_q16 = rate_q16 - pi.target_miss_q16;
        self.integral_q16 = (self.integral_q16 + error_q16).clamp(0, pi.integral_max_q16);
        let raw_planes = (pi.kp_q16 * error_q16 + pi.ki_q16 * self.integral_q16) >> 32;
        let max_shed = (BIT_PLANES - self.config.min_layers) as i64;
        self.layers = BIT_PLANES - raw_planes.clamp(0, max_shed) as usize;
        self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(LayerController::new(DegradeConfig::default()).is_ok());
        let mut c = DegradeConfig::default();
        c.restore_below = 1.5; // >= shed_above
        assert!(LayerController::new(c).is_err());
        let mut c = DegradeConfig::default();
        c.min_layers = BIT_PLANES + 1;
        assert!(LayerController::new(c).is_err());
        let mut c = DegradeConfig::default();
        c.shed_above = f64::NAN;
        assert!(LayerController::new(c).is_err());
    }

    #[test]
    fn sheds_one_plane_per_overloaded_slot_down_to_floor() {
        let mut ctl = LayerController::new(DegradeConfig {
            min_layers: 1,
            ..DegradeConfig::default()
        })
        .expect("valid");
        assert_eq!(ctl.layers(), BIT_PLANES);
        for expect in (1..BIT_PLANES).rev() {
            assert_eq!(ctl.observe(150, 100, 10), expect);
        }
        // At the floor: stays put no matter how hard the overload.
        assert_eq!(ctl.observe(1_000, 100, 10), 1);
        assert_eq!(ctl.observe(1_000, 100, 10), 1);
    }

    #[test]
    fn restores_only_after_backlog_drains() {
        let mut ctl = LayerController::new(DegradeConfig::default()).expect("valid");
        ctl.observe(150, 100, 0); // shed one
        assert_eq!(ctl.layers(), BIT_PLANES - 1);
        // Load is light again but the backlog hasn't drained: hold.
        assert_eq!(ctl.observe(50, 100, 7), BIT_PLANES - 1);
        // Backlog gone: restore.
        assert_eq!(ctl.observe(50, 100, 0), BIT_PLANES);
        // Never exceeds the plane count.
        assert_eq!(ctl.observe(50, 100, 0), BIT_PLANES);
    }

    #[test]
    fn feedback_without_pi_is_the_hysteresis_law_bit_for_bit() {
        let mut a = LayerController::new(DegradeConfig::default()).expect("valid");
        let mut b = LayerController::new(DegradeConfig::default()).expect("valid");
        let trace = [
            (150u64, 100u64, 0u64, 3u64, 10u64),
            (150, 100, 5, 9, 10),
            (50, 100, 0, 0, 10),
            (95, 100, 2, 1, 10),
        ];
        for &(demand, cap, backlog, misses, active) in &trace {
            assert_eq!(
                a.observe(demand, cap, backlog),
                b.observe_feedback(demand, cap, backlog, misses, active)
            );
        }
        assert_eq!(a, b);
        assert_eq!(b.integral_q16(), 0);
    }

    #[test]
    fn pi_validation() {
        let ok = PiConfig::default();
        assert!(ok.validate().is_ok());
        assert!(PiConfig { kp_q16: -1, ..ok }.validate().is_err());
        assert!(PiConfig {
            kp_q16: 0,
            ki_q16: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(PiConfig {
            target_miss_q16: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(PiConfig {
            integral_max_q16: -5,
            ..ok
        }
        .validate()
        .is_err());
        // An invalid PI block fails the whole degrade config.
        let cfg = DegradeConfig {
            pi: Some(PiConfig {
                target_miss_q16: 0,
                ..ok
            }),
            ..DegradeConfig::default()
        };
        assert!(LayerController::new(cfg).is_err());
    }

    /// Step response of the PI loop: a sustained 50% miss rate drives
    /// the shed to the floor within a handful of slots; once misses
    /// stop, the integral unwinds at `target` per slot and the cap
    /// recovers fully, never overshooting `BIT_PLANES`.
    #[test]
    fn pi_step_response_sheds_then_recovers_without_overshoot() {
        let pi = PiConfig::default();
        let mut ctl = LayerController::new(DegradeConfig {
            pi: Some(pi),
            ..DegradeConfig::default()
        })
        .expect("valid");
        // Onset: the proportional term alone sheds several planes on
        // the very first overloaded slot.
        let first = ctl.observe_feedback(0, 1, 0, 50, 100);
        assert!(first < BIT_PLANES, "P term reacts immediately");
        // Sustained overload: the integral winds up to the clamp and
        // the cap settles at the floor.
        for _ in 0..20 {
            ctl.observe_feedback(0, 1, 0, 50, 100);
        }
        assert_eq!(ctl.layers(), 0);
        assert_eq!(ctl.integral_q16(), pi.integral_max_q16);
        // Recovery: zero misses unwind the integral; the cap climbs
        // monotonically back to full quality and stays there.
        let mut prev = ctl.layers();
        for _ in 0..400 {
            let l = ctl.observe_feedback(0, 1, 0, 0, 100);
            assert!(l >= prev, "recovery is monotone");
            assert!(l <= BIT_PLANES, "no overshoot past full quality");
            prev = l;
        }
        assert_eq!(ctl.layers(), BIT_PLANES);
        assert_eq!(ctl.integral_q16(), 0);
    }

    /// Anti-windup: however long the overload lasts, the integral
    /// never exceeds its clamp and the output never sheds below
    /// `min_layers`.
    #[test]
    fn pi_anti_windup_respects_clamps() {
        let pi = PiConfig::default();
        let mut ctl = LayerController::new(DegradeConfig {
            min_layers: 2,
            pi: Some(pi),
            ..DegradeConfig::default()
        })
        .expect("valid");
        for _ in 0..10_000 {
            let l = ctl.observe_feedback(0, 1, 0, 100, 100);
            assert!(l >= 2, "output clamp holds the floor");
            assert!(ctl.integral_q16() <= pi.integral_max_q16);
            assert!(ctl.integral_q16() >= 0);
        }
        // Bounded recovery: the clamped integral unwinds in
        // `integral_max / target` slots, not "however long the
        // overload lasted".
        let budget = (pi.integral_max_q16 / pi.target_miss_q16 + BIT_PLANES as i64) as usize;
        for _ in 0..budget * 2 {
            ctl.observe_feedback(0, 1, 0, 0, 100);
        }
        assert_eq!(ctl.layers(), BIT_PLANES);
    }

    #[test]
    fn hysteresis_band_holds_steady() {
        let mut ctl = LayerController::new(DegradeConfig::default()).expect("valid");
        ctl.observe(150, 100, 0);
        let level = ctl.layers();
        // Utilisation inside (restore_below, shed_above): no movement.
        for _ in 0..10 {
            assert_eq!(ctl.observe(95, 100, 0), level);
        }
    }
}
