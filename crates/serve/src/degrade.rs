//! Graceful QoS degradation by FGS layer shedding.
//!
//! Admission control bounds the *mean* load, but long-range-dependent
//! arrivals (§3.2) still pile sessions up in bursts that no mean-based
//! bound prevents. [`LayerController`] is the second line of defence:
//! when the instantaneous full-quality demand of the active sessions
//! overruns the link, it sheds FGS enhancement planes server-wide —
//! every session keeps its mandatory base layer and loses quality
//! *fine-granularly* instead of missing deadlines. This is the E11
//! property ("graceful degradation, no cliffs") raised to server scale,
//! and the server-side dual of the client-feedback truncation of
//! [`dms_wireless::fgs`].
//!
//! Hysteresis (separate shed/restore thresholds, restore only once the
//! backlog has drained) keeps the controller from oscillating at a
//! threshold.

use dms_media::fgs::BIT_PLANES;
use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// Configuration of the layer-shedding controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeConfig {
    /// Shed one plane when demand/capacity exceeds this (e.g. `1.0`).
    pub shed_above: f64,
    /// Restore one plane when demand/capacity falls below this *and*
    /// the backlog has drained. Must be `< shed_above`.
    pub restore_below: f64,
    /// Planes the controller will never shed below (0 = base layer
    /// only is acceptable under extreme overload).
    pub min_layers: usize,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            shed_above: 1.0,
            restore_below: 0.9,
            min_layers: 0,
        }
    }
}

impl DegradeConfig {
    /// Validates thresholds and bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if !(self.shed_above.is_finite() && self.shed_above > 0.0) {
            return Err(ServeError::InvalidParameter("shed_above"));
        }
        if !(self.restore_below.is_finite()
            && self.restore_below > 0.0
            && self.restore_below < self.shed_above)
        {
            return Err(ServeError::InvalidParameter("restore_below"));
        }
        if self.min_layers > BIT_PLANES {
            return Err(ServeError::InvalidParameter("min_layers"));
        }
        Ok(())
    }
}

/// The server-wide enhancement-layer cap, adapted once per slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerController {
    config: DegradeConfig,
    layers: usize,
}

impl LayerController {
    /// Creates a controller starting at full quality ([`BIT_PLANES`]
    /// enhancement planes allowed).
    ///
    /// # Errors
    ///
    /// Propagates [`DegradeConfig::validate`] failures.
    pub fn new(config: DegradeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        Ok(LayerController {
            config,
            layers: BIT_PLANES,
        })
    }

    /// Current server-wide enhancement-layer cap.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Observes one slot — `full_demand_bits` is what the active
    /// sessions would request at *full* quality, `backlog_bits` the
    /// bits still queued from previous slots — and returns the layer
    /// cap to serve the coming slot with.
    ///
    /// Shedding reacts to the full-quality pressure (so the controller
    /// converges to the deepest cut that relieves the link instead of
    /// flapping), restoring additionally waits for the backlog to
    /// drain.
    pub fn observe(
        &mut self,
        full_demand_bits: u64,
        capacity_bits: u64,
        backlog_bits: u64,
    ) -> usize {
        let util = full_demand_bits as f64 / capacity_bits.max(1) as f64;
        if util > self.config.shed_above {
            // One plane per slot: sheds within BIT_PLANES slots of a
            // burst onset, without overreacting to a single spike.
            if self.layers > self.config.min_layers {
                self.layers -= 1;
            }
        } else if util < self.config.restore_below && backlog_bits == 0 && self.layers < BIT_PLANES
        {
            self.layers += 1;
        }
        self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(LayerController::new(DegradeConfig::default()).is_ok());
        let mut c = DegradeConfig::default();
        c.restore_below = 1.5; // >= shed_above
        assert!(LayerController::new(c).is_err());
        let mut c = DegradeConfig::default();
        c.min_layers = BIT_PLANES + 1;
        assert!(LayerController::new(c).is_err());
        let mut c = DegradeConfig::default();
        c.shed_above = f64::NAN;
        assert!(LayerController::new(c).is_err());
    }

    #[test]
    fn sheds_one_plane_per_overloaded_slot_down_to_floor() {
        let mut ctl = LayerController::new(DegradeConfig {
            min_layers: 1,
            ..DegradeConfig::default()
        })
        .expect("valid");
        assert_eq!(ctl.layers(), BIT_PLANES);
        for expect in (1..BIT_PLANES).rev() {
            assert_eq!(ctl.observe(150, 100, 10), expect);
        }
        // At the floor: stays put no matter how hard the overload.
        assert_eq!(ctl.observe(1_000, 100, 10), 1);
        assert_eq!(ctl.observe(1_000, 100, 10), 1);
    }

    #[test]
    fn restores_only_after_backlog_drains() {
        let mut ctl = LayerController::new(DegradeConfig::default()).expect("valid");
        ctl.observe(150, 100, 0); // shed one
        assert_eq!(ctl.layers(), BIT_PLANES - 1);
        // Load is light again but the backlog hasn't drained: hold.
        assert_eq!(ctl.observe(50, 100, 7), BIT_PLANES - 1);
        // Backlog gone: restore.
        assert_eq!(ctl.observe(50, 100, 0), BIT_PLANES);
        // Never exceeds the plane count.
        assert_eq!(ctl.observe(50, 100, 0), BIT_PLANES);
    }

    #[test]
    fn hysteresis_band_holds_steady() {
        let mut ctl = LayerController::new(DegradeConfig::default()).expect("valid");
        ctl.observe(150, 100, 0);
        let level = ctl.layers();
        // Utilisation inside (restore_below, shed_above): no movement.
        for _ in 0..10 {
            assert_eq!(ctl.observe(95, 100, 0), level);
        }
    }
}
