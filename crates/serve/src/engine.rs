//! The incremental server engine: the one slotted loop behind every
//! [`ServerSim`](crate::ServerSim) runner, exposed as a stepper.
//!
//! [`ServerEngine`] is the *offer-source seam*: synthetic workloads
//! ([`ServerSim::run`](crate::ServerSim::run) pre-injects every
//! [`SessionRequest`]) and socket-delivered offers (`dms-net`'s
//! lockstep driver injects them as frames arrive) feed the exact same
//! admission/multiplexing/recovery code path through
//! [`ServerEngine::offer`] + [`ServerEngine::step_slot`]. A batch run
//! is literally "inject everything, then step to the horizon", so the
//! engine is bit-identical to the pre-seam `run_core` loop (pinned by
//! the `ReferenceServerSim` differential proptests and the golden
//! run-logs).
//!
//! The engine advances one slot per [`ServerEngine::step_slot`] call
//! and never looks at a wall clock: whoever drives it (a `for` loop or
//! a network driver pacing real time through `dms_sim::TickClock`)
//! owns the mapping from ticks to slots. That inversion is what keeps
//! socket-fed runs byte-deterministic — the simulation only ever sees
//! the slot numbers stamped on the offers.

use dms_sim::{EventQueue, FaultEvent, FaultPlan, ScheduledFault, SimTime};

use crate::admission::{AdmissionController, AdmissionMemo};
use crate::arena::SessionArena;
use crate::degrade::LayerController;
use crate::error::ServeError;
use crate::faults::{FaultReport, RecoveryConfig};
use crate::metrics::ServeMetricsSink;
use crate::session::{ServerConfig, ServerReport};
use crate::workload::{SessionRequest, SessionTemplate};

/// Event payload of the server's slotted event loop.
#[derive(Debug, Clone, Copy)]
enum ServerEvent {
    /// Index into the engine's offer ledger.
    Arrive(usize),
    /// Activation to deactivate, addressed by arena handle. The `act`
    /// generation tag makes the departure O(1) *and* safe: a `Depart`
    /// scheduled for a crashed activation must not kill whatever later
    /// activation recycled the slot, so [`SessionArena::depart`]
    /// matches on `act` before freeing.
    Depart { handle: u32, act: u64 },
    /// A crashed or timed-out session re-offering itself after backoff.
    Retry {
        /// Index into the engine's offer ledger.
        idx: usize,
        /// Retry attempts consumed before this one fires.
        attempt: u32,
        /// Service slots the session still wants.
        remaining: u64,
    },
}

/// One first-offer admission verdict, recorded when
/// [`ServerEngine::record_verdicts`] is on: `(session id, admitted)`.
pub type Verdict = (u64, bool);

/// The incremental slotted server: offers in, verdicts and a
/// [`FaultReport`] out, one slot per [`ServerEngine::step_slot`].
///
/// `faults: None` takes the exact nominal path (fault state pinned at
/// "no fault", zero extra arithmetic on the served bits). The loop
/// itself draws no randomness — all of it lives pre-compiled inside
/// the [`FaultPlan`] — which is what keeps runs deterministic at any
/// `DMS_THREADS` and lets socket-fed runs byte-match direct injection.
#[derive(Debug)]
pub struct ServerEngine {
    template: SessionTemplate,
    full_bits: u64,
    buffer_bits: u64,
    miss_bits: u64,
    nominal_bits: u64,
    slots: u64,
    recovery: Option<RecoveryConfig>,

    admission: AdmissionController,
    degrade: Option<LayerController>,
    memo: AdmissionMemo,
    queue: EventQueue<ServerEvent>,
    arena: SessionArena,

    /// Every offer ever injected, in injection order. Events address
    /// offers by index, so the ledger only grows.
    sessions: Vec<SessionRequest>,

    // Per-slot scratch hoisted out of the loop.
    due: Vec<ServerEvent>,
    grants: Vec<u64>,
    sorted: Vec<u32>,
    crash_buf: Vec<u32>,

    // Fault state. The plan's events are walked with a cursor, not
    // spliced into `queue`, so the arrival/departure FIFO order within
    // a slot is untouched by fault injection.
    fault_events: Vec<ScheduledFault>,
    fault_cursor: usize,
    link_factor: f64,
    next_act: u64,
    stall_streak: u64,

    /// Arrivals before this slot are rejected outright (the warm-up
    /// cost of a freshly provisioned shard); `0` = always warm.
    warmup_slots: u64,
    /// Previous slot's deadline-miss count / active-set size — the
    /// measurement the PI shedding law closes its loop on.
    prev_misses: u64,
    prev_active: u64,

    /// Next slot to step; slots `0..slot` are already simulated.
    slot: u64,
    report: FaultReport,
    verdicts: Option<Vec<Verdict>>,
}

impl ServerEngine {
    /// Builds a nominal (fault-free, no-recovery) engine for `slots`
    /// slots of simulated time.
    ///
    /// # Errors
    ///
    /// Propagates template/config validation; fails if the config's
    /// buffer/deadline thresholds overflow at this template's demand
    /// ([`ServerConfig::validate_for`]).
    pub fn new(
        config: &ServerConfig,
        template: SessionTemplate,
        slots: u64,
    ) -> Result<Self, ServeError> {
        Self::with_faults(config, template, slots, None, None)
    }

    /// Builds an engine that applies `faults` while stepping and (with
    /// `Some(recovery)`) retries crashed/timed-out sessions with
    /// exponential backoff.
    ///
    /// # Errors
    ///
    /// Same contract as [`ServerEngine::new`]; additionally propagates
    /// [`RecoveryConfig::validate`] failures.
    pub fn with_faults(
        config: &ServerConfig,
        template: SessionTemplate,
        slots: u64,
        faults: Option<&FaultPlan>,
        recovery: Option<&RecoveryConfig>,
    ) -> Result<Self, ServeError> {
        template.validate()?;
        if let Some(rec) = recovery {
            rec.validate()?;
        }
        let full_bits = template.full_bits();
        let (buffer_bits, miss_bits) = config.validate_for(full_bits)?;
        let admission = AdmissionController::new(config.capacity, config.policy, full_bits)?;
        let degrade = config.degrade.map(LayerController::new).transpose()?;
        Ok(ServerEngine {
            template,
            full_bits,
            buffer_bits,
            miss_bits,
            nominal_bits: config.capacity.link_bits_per_slot,
            slots,
            recovery: recovery.copied(),
            admission,
            degrade,
            memo: AdmissionMemo::new(),
            queue: EventQueue::with_capacity(1024),
            arena: SessionArena::with_capacity(1024),
            sessions: Vec::new(),
            due: Vec::new(),
            grants: Vec::new(),
            sorted: Vec::new(),
            crash_buf: Vec::new(),
            fault_events: faults.map_or_else(Vec::new, |f| f.events().to_vec()),
            fault_cursor: 0,
            link_factor: 1.0,
            next_act: 0,
            stall_streak: 0,
            warmup_slots: config.degrade.map_or(0, |d| d.warmup_slots),
            prev_misses: 0,
            prev_active: 0,
            slot: 0,
            report: FaultReport::default(),
            verdicts: None,
        })
    }

    /// Pre-sizes the offer ledger (purely an allocation hint).
    pub fn reserve(&mut self, additional: usize) {
        self.sessions.reserve(additional);
    }

    /// Injects one offer. An offer stamped for a slot already stepped
    /// arrives at the next unstepped slot — the socket driver's
    /// "late frame lands now" rule; pre-injected workloads never hit
    /// it. Offers within one slot keep injection order (FIFO), exactly
    /// like `Workload` arrivals keep generation order.
    pub fn offer(&mut self, request: SessionRequest) {
        let idx = self.sessions.len();
        let at = request.arrival_slot.max(self.slot);
        self.sessions.push(request);
        self.queue
            .schedule(SimTime::from_ticks(at), ServerEvent::Arrive(idx));
    }

    /// Next slot [`ServerEngine::step_slot`] will simulate (slots
    /// `0..slot()` are done).
    #[must_use]
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The simulation horizon in slots.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.slots
    }

    /// Offers injected so far.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.sessions.len() as u64
    }

    /// First offers admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admission.admitted()
    }

    /// First offers rejected so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.admission.rejected()
    }

    /// Offers whose arrival slot has not been stepped yet — the
    /// sessions a shutdown drains without a verdict. The driver's
    /// conservation assertion is
    /// `admitted + rejected + undecided == offered` at every step
    /// boundary.
    #[must_use]
    pub fn undecided(&self) -> u64 {
        self.offered() - self.admitted() - self.rejected()
    }

    /// Total bits delivered so far (for per-slot `Data` telemetry).
    #[must_use]
    pub fn delivered_bits(&self) -> u64 {
        self.report.base.delivered_bits
    }

    /// Turns first-offer verdict recording on or off. While on, every
    /// `Arrive` drained by [`ServerEngine::step_slot`] appends
    /// `(id, admitted)` to the buffer drained by
    /// [`ServerEngine::take_verdicts`]. Retries are re-admissions of
    /// already-decided sessions and are deliberately not re-reported —
    /// the wire ledger counts each session's first offer once, like
    /// the `admitted + rejected == offered` report invariant.
    pub fn record_verdicts(&mut self, on: bool) {
        if on {
            if self.verdicts.is_none() {
                self.verdicts = Some(Vec::new());
            }
        } else {
            self.verdicts = None;
        }
    }

    /// Moves the verdicts recorded since the last call into `out`.
    pub fn take_verdicts(&mut self, out: &mut Vec<Verdict>) {
        if let Some(v) = self.verdicts.as_mut() {
            out.append(v);
        }
    }

    /// Simulates one slot; returns `false` (and does nothing) once the
    /// horizon is reached. The body is the seed `run_core` slot loop,
    /// verbatim modulo `self.` — auditable against
    /// [`crate::ReferenceServerSim`].
    #[allow(clippy::too_many_lines)] // one slot loop, kept linear for auditability
    pub fn step_slot(&mut self, mut sink: Option<&mut ServeMetricsSink>) -> bool {
        if self.slot >= self.slots {
            return false;
        }
        let slot = self.slot;
        let now = SimTime::from_ticks(slot);
        let template = self.template;
        let full_bits = self.full_bits;
        let admitted_before = self.admission.admitted();
        let misses_before = self.report.base.deadline_misses;
        let utility_before = self.report.base.utility_sum;

        // 1. Apply this slot's scheduled faults, in plan order.
        //    Crashes strike the sessions active at the slot edge —
        //    newest first, they hold the freshest reservations.
        let mut stalled = false;
        let mut corrupt_loss = 0.0f64;
        while self.fault_cursor < self.fault_events.len()
            && self.fault_events[self.fault_cursor].slot <= slot
        {
            match self.fault_events[self.fault_cursor].event {
                FaultEvent::LinkRate { factor } => self.link_factor = factor,
                FaultEvent::LinkRestore => self.link_factor = 1.0,
                FaultEvent::SlotStall => stalled = true,
                FaultEvent::Corrupt { loss } => corrupt_loss = loss,
                FaultEvent::SessionCrash { fraction } => {
                    let victims = ((self.arena.live() as f64 * fraction).ceil() as usize)
                        .min(self.arena.live());
                    self.arena.take_newest(victims, &mut self.crash_buf);
                    for &h in &self.crash_buf {
                        let hi = h as usize;
                        self.report.crashed += 1;
                        self.report.lost_to_fault_bits += self.arena.backlogs[hi];
                        if let Some(rec) = self.recovery {
                            let remaining = self.arena.depart_slots[hi].saturating_sub(slot);
                            if self.arena.attempts[hi] < rec.max_retries && remaining > 0 {
                                self.report.retries += 1;
                                self.queue.schedule(
                                    SimTime::from_ticks(slot.saturating_add(
                                        rec.backoff_slots(self.arena.attempts[hi]),
                                    )),
                                    ServerEvent::Retry {
                                        idx: self.arena.idxs[hi],
                                        attempt: self.arena.attempts[hi],
                                        remaining,
                                    },
                                );
                            }
                        }
                    }
                }
                // Component faults belong to population consumers
                // (the E11 sensor census); the server has none.
                FaultEvent::ComponentDown { .. } | FaultEvent::ComponentUp { .. } => {}
            }
            self.fault_cursor += 1;
        }

        // 2. Drain due arrivals / departures / retries (FIFO within
        //    the slot; retries were scheduled after arrivals, so
        //    fresh offers keep their admission priority).
        let mut due = std::mem::take(&mut self.due);
        due.clear();
        due.extend(self.queue.drain_ready(now).map(|ev| ev.payload));
        for &ev in &due {
            match ev {
                ServerEvent::Arrive(idx) => {
                    let req = self.sessions[idx];
                    let admitted = if slot < self.warmup_slots {
                        // Warm-up gate: the shard exists but is not
                        // ready to serve; the rejection is recorded so
                        // `admitted + rejected == offered` stays exact.
                        self.admission.record_rejection();
                        false
                    } else {
                        self.memo
                            .decide(&mut self.admission, self.arena.live() as u64)
                    };
                    if let Some(v) = self.verdicts.as_mut() {
                        v.push((req.id, admitted));
                    }
                    if admitted {
                        let act = self.next_act;
                        self.next_act += 1;
                        let depart_slot = slot + req.duration_slots;
                        let handle = self.arena.insert(req.id, act, idx, depart_slot, 0);
                        self.queue.schedule(
                            SimTime::from_ticks(depart_slot),
                            ServerEvent::Depart { handle, act },
                        );
                    }
                }
                ServerEvent::Depart { handle, act } => {
                    if self.arena.depart(handle, act) {
                        // The slot's fields stay valid until recycled:
                        // read the departed session's trace for the
                        // bounded sink's per-session reservoir.
                        if let Some(s) = sink.as_deref_mut() {
                            let hi = handle as usize;
                            s.record_departure(self.arena.ids[hi], self.arena.misses[hi]);
                        }
                    }
                }
                ServerEvent::Retry {
                    idx,
                    attempt,
                    remaining,
                } => {
                    // Re-admissions preview the predicate without
                    // recording: the `admitted + rejected == offered`
                    // ledger counts each session's first offer once.
                    if slot >= self.warmup_slots
                        && self
                            .memo
                            .would_admit(&self.admission, self.arena.live() as u64)
                    {
                        self.report.readmitted += 1;
                        let act = self.next_act;
                        self.next_act += 1;
                        let depart_slot = slot.saturating_add(remaining);
                        let handle = self.arena.insert(
                            self.sessions[idx].id,
                            act,
                            idx,
                            depart_slot,
                            attempt + 1,
                        );
                        self.queue.schedule(
                            SimTime::from_ticks(depart_slot),
                            ServerEvent::Depart { handle, act },
                        );
                    } else {
                        self.report.retry_rejected += 1;
                        if let Some(rec) = self.recovery {
                            if attempt + 1 < rec.max_retries {
                                self.report.retries += 1;
                                self.queue.schedule(
                                    SimTime::from_ticks(
                                        slot.saturating_add(rec.backoff_slots(attempt + 1)),
                                    ),
                                    ServerEvent::Retry {
                                        idx,
                                        attempt: attempt + 1,
                                        remaining,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
        self.due = due;

        let full_demand = self.arena.live() as u64 * full_bits;
        self.report.base.predicted_occupancy += self
            .memo
            .predicted_occupancy(&self.admission, self.arena.live() as u64);

        // 3. This slot's effective capacity under the fault state.
        let capacity_now = if stalled {
            self.report.stall_slots += 1;
            0
        } else if self.link_factor >= 1.0 {
            self.nominal_bits
        } else {
            self.report.degraded_slots += 1;
            (self.nominal_bits as f64 * self.link_factor).round() as u64
        };

        // One sweep pass: drop entries killed by this slot's
        // departures from the order walk (returning their slots to
        // the free list) and sum the carried backlog. After this,
        // `arena.order` is exactly the live set in admission order.
        let carried = self.arena.compact();
        let active_now = self.arena.live() as u64;
        let layers = match self.degrade.as_mut() {
            // Closed loop: the previous slot's measured miss rate
            // feeds the PI law; without a PI block this is the
            // hysteresis `observe` path, bit for bit.
            Some(ctl) => ctl.observe_feedback(
                full_demand,
                capacity_now,
                carried,
                self.prev_misses,
                self.prev_active,
            ),
            None => template.max_layers,
        };
        self.report.base.mean_layers += layers.min(template.max_layers) as f64;

        let demand = template.demand_bits(layers);
        let enqueued = demand * self.arena.live() as u64;
        let mut backlog_after = 0u64;
        let mut served = 0u64;
        if self.arena.live() > 0 {
            // Enqueue this slot's demand into each playout buffer,
            // tracking the total so the uncontended shortcut below
            // can skip the sort.
            let mut total_backlog = 0u64;
            for &h in &self.arena.order {
                let b = &mut self.arena.backlogs[h as usize];
                let want = *b + demand;
                let capped = want.min(self.buffer_bits);
                self.report.base.buffer_dropped_bits += want - capped;
                *b = capped;
                // Saturating: a saturated total can only exceed any
                // real link capacity, which routes to the sorted
                // (contended) path below.
                total_backlog = total_backlog.saturating_add(capped);
            }

            self.grants.resize(self.arena.capacity(), 0);
            if total_backlog <= capacity_now {
                // Uncontended slot: max-min fair trivially grants
                // every session its whole backlog, so the ascending
                // sort below would change nothing. At the admission
                // knee most slots land here, and skipping the
                // O(n log n) sort is the arena engine's biggest
                // per-slot win (bit-identical by construction — the
                // water-fill loop yields grant = backlog whenever
                // the link covers the total).
                for &h in &self.arena.order {
                    self.grants[h as usize] = self.arena.backlogs[h as usize];
                }
            } else {
                // Max-min fair water-filling: ascending backlog,
                // ties by id, so small sessions are satisfied first
                // and the slack flows to the backlogged ones.
                // Integer division truncation leaves at most `n`
                // bits per slot unallocated. `(backlog, id)` is a
                // total order (ids are unique among live sessions),
                // so the unstable sort is deterministic.
                self.sorted.clear();
                self.sorted.extend_from_slice(&self.arena.order);
                let arena = &self.arena;
                self.sorted
                    .sort_unstable_by_key(|&h| (arena.backlogs[h as usize], arena.ids[h as usize]));
                let mut remaining = capacity_now;
                let mut left = self.sorted.len() as u64;
                for &h in &self.sorted {
                    let share = remaining / left;
                    let grant = arena.backlogs[h as usize].min(share);
                    self.grants[h as usize] = grant;
                    remaining -= grant;
                    left -= 1;
                }
            }

            self.report.base.session_slots += self.arena.live() as u64;
            // Grants apply in admission order — the float
            // accumulation order the reference implementation pins.
            for &h in &self.arena.order {
                let hi = h as usize;
                let grant = self.grants[hi];
                self.arena.backlogs[hi] -= grant;
                served += grant;
                // In a corruption-burst slot, a fraction of the
                // transmitted bits is lost in flight: they leave the
                // buffer (the sender cannot tell) but never arrive.
                let corrupted = if corrupt_loss > 0.0 {
                    ((grant as f64 * corrupt_loss).round() as u64).min(grant)
                } else {
                    0
                };
                self.report.base.delivered_bits += grant - corrupted;
                self.report.lost_to_fault_bits += corrupted;
                if self.arena.backlogs[hi] > self.miss_bits {
                    // Too far behind the deadline: the client skips
                    // ahead, stale bits are worthless.
                    self.report.base.deadline_misses += 1;
                    self.report.base.purged_bits += self.arena.backlogs[hi] - self.miss_bits;
                    self.arena.backlogs[hi] = self.miss_bits;
                    self.arena.misses[hi] += 1;
                } else {
                    self.arena.misses[hi] = 0;
                    self.report.base.utility_sum +=
                        template.utility((grant - corrupted).min(full_bits));
                }
                backlog_after += self.arena.backlogs[hi];
            }

            // 4. Playout-deadline timeout: a session that missed its
            //    deadline for a full timeout window aborts (the
            //    client gave up) and retries after backoff. A single
            //    in-place sweep in admission order, O(n) for any
            //    number of victims.
            if let Some(rec) = self.recovery {
                let mut w = 0usize;
                for r in 0..self.arena.order.len() {
                    let h = self.arena.order[r];
                    let hi = h as usize;
                    if self.arena.misses[hi] >= rec.timeout_miss_slots {
                        self.report.timed_out += 1;
                        backlog_after -= self.arena.backlogs[hi];
                        self.report.lost_to_fault_bits += self.arena.backlogs[hi];
                        let remaining = self.arena.depart_slots[hi].saturating_sub(slot + 1);
                        if self.arena.attempts[hi] < rec.max_retries && remaining > 0 {
                            self.report.retries += 1;
                            self.queue.schedule(
                                SimTime::from_ticks(
                                    slot.saturating_add(rec.backoff_slots(self.arena.attempts[hi])),
                                ),
                                ServerEvent::Retry {
                                    idx: self.arena.idxs[hi],
                                    attempt: self.arena.attempts[hi],
                                    remaining,
                                },
                            );
                        }
                        self.arena.release(h);
                    } else {
                        self.arena.order[w] = h;
                        w += 1;
                    }
                }
                self.arena.order.truncate(w);
            }

            self.report.base.measured_occupancy += backlog_after as f64 / full_bits as f64;
        }

        // 5. Stall detection + capacity re-estimation (recovery
        //    only): when the link is not keeping up, admission
        //    control re-plans against what was actually served; a
        //    zero estimate fails closed until service resumes.
        if let Some(rec) = self.recovery {
            if full_demand > 0 && served == 0 {
                self.stall_streak += 1;
                if self.stall_streak == rec.stall_window_slots {
                    self.report.stalls_detected += 1;
                }
            } else {
                self.stall_streak = 0;
            }
            let estimate = if backlog_after > 0 {
                served
            } else {
                self.nominal_bits
            };
            if estimate != self.admission.effective_capacity() {
                self.admission.set_effective_capacity(estimate);
                self.report.capacity_reestimates += 1;
            }
        }

        if let Some(s) = sink {
            s.record_slot(
                self.admission.admitted() - admitted_before,
                self.arena.live() as u64,
                backlog_after,
                layers.min(template.max_layers) as u64,
                self.report.base.deadline_misses - misses_before,
                self.report.base.utility_sum - utility_before,
                enqueued,
            );
        }

        self.prev_misses = self.report.base.deadline_misses - misses_before;
        self.prev_active = active_now;
        self.slot += 1;
        true
    }

    /// Steps every remaining slot to the horizon (the drain leg of a
    /// graceful shutdown: admitted sessions play out, late offers get
    /// their verdicts).
    pub fn drain(&mut self, mut sink: Option<&mut ServeMetricsSink>) {
        while self.step_slot(sink.as_deref_mut()) {}
    }

    /// Finalises the run and returns the report. Mean fields are
    /// normalised over the slots actually stepped (a full run steps
    /// exactly the horizon, matching the batch runners byte for byte).
    #[must_use]
    pub fn finish(mut self) -> FaultReport {
        self.report.base = ServerReport {
            offered: self.sessions.len() as u64,
            admitted: self.admission.admitted(),
            rejected: self.admission.rejected(),
            slots: self.slot,
            ..self.report.base
        };
        if self.report.base.slots > 0 {
            self.report.base.predicted_occupancy /= self.report.base.slots as f64;
            self.report.base.measured_occupancy /= self.report.base.slots as f64;
            self.report.base.mean_layers /= self.report.base.slots as f64;
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::session::ServerSim;
    use crate::workload::{rate_for_load, ArrivalProcess, Workload};
    use crate::CapacityModel;

    fn setup(load: f64, slots: u64, seed: u64) -> (ServerConfig, Workload) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let cfg = ServerConfig {
            capacity: CapacityModel {
                link_bits_per_slot: 20 * template.full_bits(),
                queue_frames: 64,
                occupancy_bound: 8.0,
            },
            policy: AdmissionPolicy::QueuePredictor,
            degrade: Some(crate::DegradeConfig::default()),
            buffer_slots: 4,
            miss_slots: 2,
        };
        let rate = rate_for_load(load, &template, cfg.capacity.link_bits_per_slot);
        let workload = Workload::generate(ArrivalProcess::Poisson { rate }, template, slots, seed)
            .expect("valid");
        (cfg, workload)
    }

    /// The seam contract: injecting offers incrementally — interleaved
    /// with stepping, exactly as the socket driver does — must be
    /// bit-identical to the batch runner's inject-everything-up-front.
    #[test]
    fn incremental_injection_matches_batch_run() {
        let (cfg, workload) = setup(1.2, 400, 21);
        let batch = ServerSim::new(cfg)
            .expect("valid")
            .run(&workload)
            .expect("runs");

        let mut engine = ServerEngine::new(&cfg, workload.template, workload.slots).expect("valid");
        // Feed each offer only once the engine has stepped up to (but
        // not past) its arrival slot — the lockstep driver's schedule.
        for req in &workload.sessions {
            while engine.slot() < req.arrival_slot {
                assert!(engine.step_slot(None));
            }
            engine.offer(*req);
        }
        engine.drain(None);
        let incremental = engine.finish();
        assert_eq!(incremental.base, batch, "seam must not perturb the run");
    }

    #[test]
    fn verdicts_ledger_matches_report() {
        let (cfg, workload) = setup(1.3, 300, 9);
        let mut engine = ServerEngine::new(&cfg, workload.template, workload.slots).expect("valid");
        engine.record_verdicts(true);
        for req in &workload.sessions {
            engine.offer(*req);
        }
        let mut verdicts = Vec::new();
        while engine.step_slot(None) {
            engine.take_verdicts(&mut verdicts);
        }
        assert_eq!(engine.undecided(), 0, "horizon drains every offer");
        let admitted = verdicts.iter().filter(|(_, ok)| *ok).count() as u64;
        let rejected = verdicts.len() as u64 - admitted;
        let report = engine.finish();
        assert_eq!(verdicts.len() as u64, report.base.offered);
        assert_eq!(admitted, report.base.admitted);
        assert_eq!(rejected, report.base.rejected);
    }

    /// A late offer (slot already stepped) is not lost: it arrives at
    /// the next unstepped slot.
    #[test]
    fn late_offer_lands_on_the_next_slot() {
        let (cfg, workload) = setup(0.5, 100, 3);
        let mut engine = ServerEngine::new(&cfg, workload.template, workload.slots).expect("valid");
        for _ in 0..10 {
            engine.step_slot(None);
        }
        engine.offer(crate::SessionRequest {
            id: 1,
            arrival_slot: 4, // stale stamp: slots 0..10 already ran
            duration_slots: 5,
        });
        engine.record_verdicts(true);
        let mut verdicts = Vec::new();
        engine.step_slot(None);
        engine.take_verdicts(&mut verdicts);
        assert_eq!(verdicts, vec![(1, true)], "late offer decided at slot 10");
    }
}
