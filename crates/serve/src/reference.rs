//! The pre-arena server implementation, retained as a differential
//! oracle and perf baseline.
//!
//! [`ReferenceServerSim`] is the seed `ServerSim` hot loop, verbatim:
//! a `Vec<ActiveSession>` active set paying O(n) `retain` per
//! departure, a per-offer admission-predictor call per arrival, and the
//! retired binary-heap event queue ([`dms_sim::HeapEventQueue`]). It
//! exists for two reasons:
//!
//! * **Correctness** — the arena-backed [`crate::ServerSim`] must
//!   produce *byte-identical* reports (float accumulation order
//!   included) on any `(config, workload, fault plan)`; the
//!   differential proptests in `tests/proptest_serve.rs` drive both
//!   implementations and compare.
//! * **Honest speedup** — the E15 mega-scale sweep reports throughput
//!   relative to this implementation, measured in-tree rather than
//!   against a number remembered from an old commit.
//!
//! Keep this file boring: it should only change when the *semantics*
//! of the server change, never for performance.

use dms_sim::{FaultEvent, FaultPlan, HeapEventQueue, SimTime};

use crate::admission::AdmissionController;
use crate::degrade::LayerController;
use crate::error::ServeError;
use crate::faults::{FaultReport, RecoveryConfig};
use crate::metrics::ServeMetricsSink;
use crate::session::{ServerConfig, ServerReport};
use crate::workload::Workload;

/// Event payload of the reference server's slotted event loop.
#[derive(Debug, Clone, Copy)]
enum RefEvent {
    /// Index into `workload.sessions`.
    Arrive(usize),
    /// Activation to deactivate.
    Depart(u64),
    /// A crashed or timed-out session re-offering itself after backoff.
    Retry {
        idx: usize,
        attempt: u32,
        remaining: u64,
    },
}

#[derive(Debug)]
struct ActiveSession {
    id: u64,
    act: u64,
    idx: usize,
    depart_slot: u64,
    consecutive_misses: u64,
    attempt: u32,
    backlog_bits: u64,
}

/// The seed (pre-arena) slotted multi-session server. See the module
/// docs for why it is kept.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceServerSim {
    config: ServerConfig,
}

impl ReferenceServerSim {
    /// Creates a reference server for a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerConfig::validate`] failures.
    pub fn new(config: ServerConfig) -> Result<Self, ServeError> {
        config.validate()?;
        Ok(ReferenceServerSim { config })
    }

    /// Seed equivalent of [`crate::ServerSim::run`].
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::ServerSim::run`].
    pub fn run(&self, workload: &Workload) -> Result<ServerReport, ServeError> {
        Ok(self.run_core(workload, None, None, None)?.base)
    }

    /// Seed equivalent of [`crate::ServerSim::run_faulted`].
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::ServerSim::run_faulted`].
    pub fn run_faulted(
        &self,
        workload: &Workload,
        faults: &FaultPlan,
        recovery: Option<&RecoveryConfig>,
        sink: Option<&mut ServeMetricsSink>,
    ) -> Result<FaultReport, ServeError> {
        if let Some(rec) = recovery {
            rec.validate()?;
        }
        self.run_core(workload, Some(faults), recovery, sink)
    }

    /// The seed slot loop, kept byte-for-byte semantically identical to
    /// the pre-arena `ServerSim::run_core`.
    #[allow(clippy::too_many_lines)] // verbatim seed loop, kept linear for auditability
    fn run_core(
        &self,
        workload: &Workload,
        faults: Option<&FaultPlan>,
        recovery: Option<&RecoveryConfig>,
        mut sink: Option<&mut ServeMetricsSink>,
    ) -> Result<FaultReport, ServeError> {
        let template = workload.template;
        template.validate()?;
        let cfg = &self.config;
        let full_bits = template.full_bits();
        let (buffer_bits, miss_bits) = cfg.validate_for(full_bits)?;
        let nominal_bits = cfg.capacity.link_bits_per_slot;

        let mut admission = AdmissionController::new(cfg.capacity, cfg.policy, full_bits)?;
        let mut degrade = cfg.degrade.map(LayerController::new).transpose()?;

        let mut queue = HeapEventQueue::with_capacity(workload.sessions.len() * 2);
        for (idx, s) in workload.sessions.iter().enumerate() {
            queue.schedule(SimTime::from_ticks(s.arrival_slot), RefEvent::Arrive(idx));
        }

        let mut active: Vec<ActiveSession> = Vec::new();
        let mut due: Vec<RefEvent> = Vec::new();
        let mut grants: Vec<u64> = Vec::new();
        let mut order: Vec<usize> = Vec::new();
        let mut report = FaultReport {
            base: ServerReport {
                offered: workload.sessions.len() as u64,
                slots: workload.slots,
                ..ServerReport::default()
            },
            ..FaultReport::default()
        };

        let fault_events = faults.map_or(&[][..], FaultPlan::events);
        let mut fault_cursor = 0usize;
        let mut link_factor = 1.0f64;
        let mut next_act = 0u64;
        let mut stall_streak = 0u64;

        for slot in 0..workload.slots {
            let now = SimTime::from_ticks(slot);
            let admitted_before = admission.admitted();
            let misses_before = report.base.deadline_misses;
            let utility_before = report.base.utility_sum;

            // 1. Apply this slot's scheduled faults, in plan order.
            let mut stalled = false;
            let mut corrupt_loss = 0.0f64;
            while fault_cursor < fault_events.len() && fault_events[fault_cursor].slot <= slot {
                match fault_events[fault_cursor].event {
                    FaultEvent::LinkRate { factor } => link_factor = factor,
                    FaultEvent::LinkRestore => link_factor = 1.0,
                    FaultEvent::SlotStall => stalled = true,
                    FaultEvent::Corrupt { loss } => corrupt_loss = loss,
                    FaultEvent::SessionCrash { fraction } => {
                        let victims =
                            ((active.len() as f64 * fraction).ceil() as usize).min(active.len());
                        for victim in active.drain(active.len() - victims..) {
                            report.crashed += 1;
                            report.lost_to_fault_bits += victim.backlog_bits;
                            if let Some(rec) = recovery {
                                let remaining = victim.depart_slot.saturating_sub(slot);
                                if victim.attempt < rec.max_retries && remaining > 0 {
                                    report.retries += 1;
                                    queue.schedule(
                                        SimTime::from_ticks(
                                            slot.saturating_add(rec.backoff_slots(victim.attempt)),
                                        ),
                                        RefEvent::Retry {
                                            idx: victim.idx,
                                            attempt: victim.attempt,
                                            remaining,
                                        },
                                    );
                                }
                            }
                        }
                    }
                    FaultEvent::ComponentDown { .. } | FaultEvent::ComponentUp { .. } => {}
                }
                fault_cursor += 1;
            }

            // 2. Drain due arrivals / departures / retries.
            due.clear();
            while let Some(ev) = queue.pop_at_or_before(now) {
                due.push(ev.payload);
            }
            for &ev in &due {
                match ev {
                    RefEvent::Arrive(idx) => {
                        let req = workload.sessions[idx];
                        let active_bits = active.len() as u64 * full_bits;
                        if admission.decide(active_bits, full_bits) {
                            let act = next_act;
                            next_act += 1;
                            let depart_slot = slot + req.duration_slots;
                            active.push(ActiveSession {
                                id: req.id,
                                act,
                                idx,
                                depart_slot,
                                consecutive_misses: 0,
                                attempt: 0,
                                backlog_bits: 0,
                            });
                            queue.schedule(SimTime::from_ticks(depart_slot), RefEvent::Depart(act));
                        }
                    }
                    RefEvent::Depart(act) => active.retain(|s| s.act != act),
                    RefEvent::Retry {
                        idx,
                        attempt,
                        remaining,
                    } => {
                        let active_bits = active.len() as u64 * full_bits;
                        if admission.would_admit(active_bits, full_bits) {
                            report.readmitted += 1;
                            let act = next_act;
                            next_act += 1;
                            let depart_slot = slot.saturating_add(remaining);
                            active.push(ActiveSession {
                                id: workload.sessions[idx].id,
                                act,
                                idx,
                                depart_slot,
                                consecutive_misses: 0,
                                attempt: attempt + 1,
                                backlog_bits: 0,
                            });
                            queue.schedule(SimTime::from_ticks(depart_slot), RefEvent::Depart(act));
                        } else {
                            report.retry_rejected += 1;
                            if let Some(rec) = recovery {
                                if attempt + 1 < rec.max_retries {
                                    report.retries += 1;
                                    queue.schedule(
                                        SimTime::from_ticks(
                                            slot.saturating_add(rec.backoff_slots(attempt + 1)),
                                        ),
                                        RefEvent::Retry {
                                            idx,
                                            attempt: attempt + 1,
                                            remaining,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }

            let full_demand = active.len() as u64 * full_bits;
            report.base.predicted_occupancy += admission.predicted_occupancy(full_demand);

            // 3. This slot's effective capacity under the fault state.
            let capacity_now = if stalled {
                report.stall_slots += 1;
                0
            } else if link_factor >= 1.0 {
                nominal_bits
            } else {
                report.degraded_slots += 1;
                (nominal_bits as f64 * link_factor).round() as u64
            };

            let carried: u64 = active.iter().map(|s| s.backlog_bits).sum();
            let layers = match degrade.as_mut() {
                Some(ctl) => ctl.observe(full_demand, capacity_now, carried),
                None => template.max_layers,
            };
            report.base.mean_layers += layers.min(template.max_layers) as f64;

            let demand = template.demand_bits(layers);
            let enqueued = demand * active.len() as u64;
            let mut backlog_after = 0u64;
            let mut served = 0u64;
            if !active.is_empty() {
                for s in &mut active {
                    let want = s.backlog_bits + demand;
                    let capped = want.min(buffer_bits);
                    report.base.buffer_dropped_bits += want - capped;
                    s.backlog_bits = capped;
                }

                order.clear();
                order.extend(0..active.len());
                order.sort_by_key(|&i| (active[i].backlog_bits, active[i].id));
                grants.clear();
                grants.resize(active.len(), 0);
                let mut remaining = capacity_now;
                let mut left = order.len() as u64;
                for &i in &order {
                    let share = remaining / left;
                    let grant = active[i].backlog_bits.min(share);
                    grants[i] = grant;
                    remaining -= grant;
                    left -= 1;
                }

                report.base.session_slots += active.len() as u64;
                for (s, &grant) in active.iter_mut().zip(&grants) {
                    s.backlog_bits -= grant;
                    served += grant;
                    let corrupted = if corrupt_loss > 0.0 {
                        ((grant as f64 * corrupt_loss).round() as u64).min(grant)
                    } else {
                        0
                    };
                    report.base.delivered_bits += grant - corrupted;
                    report.lost_to_fault_bits += corrupted;
                    if s.backlog_bits > miss_bits {
                        report.base.deadline_misses += 1;
                        report.base.purged_bits += s.backlog_bits - miss_bits;
                        s.backlog_bits = miss_bits;
                        s.consecutive_misses += 1;
                    } else {
                        s.consecutive_misses = 0;
                        report.base.utility_sum +=
                            template.utility((grant - corrupted).min(full_bits));
                    }
                    backlog_after += s.backlog_bits;
                }

                // 4. Playout-deadline timeout.
                if let Some(rec) = recovery {
                    let mut i = 0;
                    while i < active.len() {
                        if active[i].consecutive_misses >= rec.timeout_miss_slots {
                            let victim = active.remove(i);
                            report.timed_out += 1;
                            backlog_after -= victim.backlog_bits;
                            report.lost_to_fault_bits += victim.backlog_bits;
                            let remaining = victim.depart_slot.saturating_sub(slot + 1);
                            if victim.attempt < rec.max_retries && remaining > 0 {
                                report.retries += 1;
                                queue.schedule(
                                    SimTime::from_ticks(
                                        slot.saturating_add(rec.backoff_slots(victim.attempt)),
                                    ),
                                    RefEvent::Retry {
                                        idx: victim.idx,
                                        attempt: victim.attempt,
                                        remaining,
                                    },
                                );
                            }
                        } else {
                            i += 1;
                        }
                    }
                }

                report.base.measured_occupancy += backlog_after as f64 / full_bits as f64;
            }

            // 5. Stall detection + capacity re-estimation (recovery only).
            if let Some(rec) = recovery {
                if full_demand > 0 && served == 0 {
                    stall_streak += 1;
                    if stall_streak == rec.stall_window_slots {
                        report.stalls_detected += 1;
                    }
                } else {
                    stall_streak = 0;
                }
                let estimate = if backlog_after > 0 {
                    served
                } else {
                    nominal_bits
                };
                if estimate != admission.effective_capacity() {
                    admission.set_effective_capacity(estimate);
                    report.capacity_reestimates += 1;
                }
            }

            if let Some(s) = sink.as_deref_mut() {
                s.record_slot(
                    admission.admitted() - admitted_before,
                    active.len() as u64,
                    backlog_after,
                    layers.min(template.max_layers) as u64,
                    report.base.deadline_misses - misses_before,
                    report.base.utility_sum - utility_before,
                    enqueued,
                );
            }
        }

        report.base.admitted = admission.admitted();
        report.base.rejected = admission.rejected();
        if report.base.slots > 0 {
            report.base.predicted_occupancy /= report.base.slots as f64;
            report.base.measured_occupancy /= report.base.slots as f64;
            report.base.mean_layers /= report.base.slots as f64;
        }
        Ok(report)
    }
}
