//! The multi-session server: slotted multiplexing of admitted sessions
//! over one shared link.
//!
//! [`ServerSim`] runs an open-loop [`Workload`] through
//! a slotted server: every slot it drains due arrival/departure events
//! from a [`dms_sim::EventQueue`] (FIFO within the slot, via
//! [`dms_sim::EventQueue::drain_ready`]), asks the
//! [`crate::AdmissionController`] about each
//! arrival, lets the [`crate::LayerController`] pick
//! the slot's FGS layer cap, and then divides the link capacity over
//! the active sessions with a max-min fair water-filling allocation.
//! Since PR 7 the loop itself lives in the incremental
//! [`ServerEngine`]; this runner injects the whole workload up front
//! and steps the engine to the horizon.
//!
//! A session that falls further than the deadline allowance behind is
//! charged a *deadline miss* for the slot (utility zero, stale bits
//! purged) — the client skipped ahead. Everything the report exposes is
//! a deterministic function of `(config, workload)`, which is what lets
//! experiment E12 shard (seed × load) points across
//! [`dms_sim::ParRunner`] and still diff byte-for-byte against a
//! single-threaded run.

use dms_sim::FaultPlan;
use serde::{Deserialize, Serialize};

use crate::admission::{AdmissionPolicy, CapacityModel};
use crate::degrade::DegradeConfig;
use crate::engine::ServerEngine;
use crate::error::ServeError;
use crate::faults::{FaultReport, RecoveryConfig};
use crate::metrics::ServeMetricsSink;
use crate::workload::Workload;

/// Full configuration of one server run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Link capacity and admission bound.
    pub capacity: CapacityModel,
    /// How arrivals are vetted.
    pub policy: AdmissionPolicy,
    /// Layer-shedding QoS controller; `None` disables degradation
    /// (sessions always request every decodable layer).
    pub degrade: Option<DegradeConfig>,
    /// Per-session playout buffer, in slots of full-quality demand.
    pub buffer_slots: u64,
    /// Deadline allowance: a backlog beyond this many slots of
    /// full-quality demand is a miss. Must be `< buffer_slots`.
    pub miss_slots: u64,
}

impl ServerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field; propagates nested validations.
    pub fn validate(&self) -> Result<(), ServeError> {
        self.capacity.validate()?;
        if let Some(d) = self.degrade {
            d.validate()?;
        }
        if self.miss_slots == 0 {
            return Err(ServeError::InvalidParameter("miss_slots"));
        }
        if self.buffer_slots <= self.miss_slots {
            return Err(ServeError::InvalidParameter("buffer_slots"));
        }
        Ok(())
    }

    /// Validates the configuration against a concrete per-slot demand
    /// and returns the `(buffer, miss)` bit thresholds.
    ///
    /// The thresholds are `buffer_slots * full_bits` and
    /// `miss_slots * full_bits`; both products are `checked_mul`s, so a
    /// large-but-individually-valid config fails loudly instead of
    /// silently wrapping in release builds.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerConfig::validate`]; returns
    /// [`ServeError::InvalidParameter`] naming the slot count whose
    /// threshold overflows `u64`.
    pub fn validate_for(&self, full_bits: u64) -> Result<(u64, u64), ServeError> {
        self.validate()?;
        let buffer_bits = self
            .buffer_slots
            .checked_mul(full_bits)
            .ok_or(ServeError::InvalidParameter("buffer_slots"))?;
        let miss_bits = self
            .miss_slots
            .checked_mul(full_bits)
            .ok_or(ServeError::InvalidParameter("miss_slots"))?;
        Ok((buffer_bits, miss_bits))
    }
}

/// What one server run measured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ServerReport {
    /// Sessions the workload offered.
    pub offered: u64,
    /// Sessions admitted / rejected by the controller.
    pub admitted: u64,
    /// Sessions turned away at arrival.
    pub rejected: u64,
    /// Active session-slots served (the denominator of the rates).
    pub session_slots: u64,
    /// Session-slots charged as deadline misses.
    pub deadline_misses: u64,
    /// Sum of per-session-slot utilities (misses contribute zero).
    pub utility_sum: f64,
    /// Bits actually delivered over the link.
    pub delivered_bits: u64,
    /// Bits dropped because a session's playout buffer overflowed.
    pub buffer_dropped_bits: u64,
    /// Stale bits purged by deadline-miss skips.
    pub purged_bits: u64,
    /// Slot-mean of the M/M/1/K-predicted occupancy (frames).
    pub predicted_occupancy: f64,
    /// Slot-mean of the measured backlog (frames) — the predictor's
    /// ground truth.
    pub measured_occupancy: f64,
    /// Slot-mean FGS layer cap actually served (quality ceiling).
    pub mean_layers: f64,
    /// Slots simulated.
    pub slots: u64,
}

impl ServerReport {
    /// Deadline misses per active session-slot (0 for an idle run).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.session_slots == 0 {
            return 0.0;
        }
        self.deadline_misses as f64 / self.session_slots as f64
    }

    /// Mean per-session-slot utility in `[0, 1]` (0 for an idle run).
    #[must_use]
    pub fn mean_utility(&self) -> f64 {
        if self.session_slots == 0 {
            return 0.0;
        }
        self.utility_sum / self.session_slots as f64
    }

    /// Fraction of offered sessions turned away.
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.rejected as f64 / self.offered as f64
    }
}

/// The slotted multi-session server simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSim {
    config: ServerConfig,
}

impl ServerSim {
    /// Creates a server for a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerConfig::validate`] failures.
    pub fn new(config: ServerConfig) -> Result<Self, ServeError> {
        config.validate()?;
        Ok(ServerSim { config })
    }

    /// The configuration this server runs.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Runs `workload` to its horizon and reports what happened.
    ///
    /// Arrivals are pre-scheduled in generation order, so same-slot
    /// arrivals drain FIFO by session id and always ahead of same-slot
    /// departures (departures are scheduled later, at admission time) —
    /// admission is thus deliberately conservative at the slot edge.
    ///
    /// # Errors
    ///
    /// Propagates template validation errors; fails if the config's
    /// buffer/deadline thresholds overflow at this template's demand
    /// ([`ServerConfig::validate_for`]).
    pub fn run(&self, workload: &Workload) -> Result<ServerReport, ServeError> {
        self.run_instrumented(workload, None)
    }

    /// Runs `workload` under a compiled [`FaultPlan`]: link-rate
    /// degradation windows scale the slot capacity, slot stalls zero
    /// it, corruption bursts lose a fraction of each slot's grants in
    /// flight, and crash bursts abort active sessions (releasing their
    /// buffer reservations into `lost_to_fault_bits` — nothing leaks).
    ///
    /// With `Some(recovery)` the server additionally *recovers*:
    /// crashed and playout-timed-out sessions retry admission with
    /// exponential backoff, the multiplexer detects stalls, and
    /// admission control re-plans against the measured effective
    /// capacity whenever the link is not keeping up. With `None` the
    /// faults land on the nominal server (the uncontrolled arm of
    /// experiment E13).
    ///
    /// An empty plan reproduces [`ServerSim::run`] exactly — the fault
    /// path adds no randomness (the plan pre-compiled all of it), so
    /// faulted runs shard across `dms_sim::ParRunner` byte-identically
    /// just like nominal ones.
    ///
    /// # Errors
    ///
    /// Same contract as [`ServerSim::run`]; additionally propagates
    /// [`RecoveryConfig::validate`] failures.
    pub fn run_faulted(
        &self,
        workload: &Workload,
        faults: &FaultPlan,
        recovery: Option<&RecoveryConfig>,
        sink: Option<&mut ServeMetricsSink>,
    ) -> Result<FaultReport, ServeError> {
        if let Some(rec) = recovery {
            rec.validate()?;
        }
        self.run_core(workload, Some(faults), recovery, sink)
    }

    /// [`ServerSim::run`] with an optional per-slot metrics sink.
    ///
    /// With `Some(sink)`, one sample per slot of admissions / active
    /// sessions / end-of-slot backlog / layer cap / deadline misses is
    /// recorded, plus the total bits enqueued into playout buffers.
    /// With `None` the loop does no recording work beyond a single
    /// `Option` check per slot — no allocation, no extra branching.
    ///
    /// # Errors
    ///
    /// Same contract as [`ServerSim::run`].
    pub fn run_instrumented(
        &self,
        workload: &Workload,
        sink: Option<&mut ServeMetricsSink>,
    ) -> Result<ServerReport, ServeError> {
        Ok(self.run_core(workload, None, None, sink)?.base)
    }

    /// The one slotted server loop every public runner delegates to —
    /// now a thin batch driver over the incremental
    /// [`ServerEngine`]: inject every workload offer up front, step to
    /// the horizon, finish. The engine is the offer-source seam shared
    /// with `dms-net`'s socket driver, so synthetic and socket offers
    /// run the same admission/multiplexing/recovery code path; its
    /// slot loop is the seed implementation verbatim (pinned against
    /// [`crate::ReferenceServerSim`] by differential proptests and the
    /// golden run-logs).
    fn run_core(
        &self,
        workload: &Workload,
        faults: Option<&FaultPlan>,
        recovery: Option<&RecoveryConfig>,
        mut sink: Option<&mut ServeMetricsSink>,
    ) -> Result<FaultReport, ServeError> {
        let mut engine = ServerEngine::with_faults(
            &self.config,
            workload.template,
            workload.slots,
            faults,
            recovery,
        )?;
        engine.reserve(workload.sessions.len());
        for &req in &workload.sessions {
            engine.offer(req);
        }
        while engine.step_slot(sink.as_deref_mut()) {}
        Ok(engine.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{rate_for_load, ArrivalProcess, SessionTemplate};

    fn config(sessions: u64, template: &SessionTemplate, policy: AdmissionPolicy) -> ServerConfig {
        ServerConfig {
            capacity: CapacityModel {
                link_bits_per_slot: sessions * template.full_bits(),
                queue_frames: 64,
                occupancy_bound: 8.0,
            },
            policy,
            degrade: Some(DegradeConfig::default()),
            buffer_slots: 4,
            miss_slots: 2,
        }
    }

    fn run_at_load(load: f64, policy: AdmissionPolicy, degrade: bool, seed: u64) -> ServerReport {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let mut cfg = config(20, &template, policy);
        if !degrade {
            cfg.degrade = None;
        }
        let rate = rate_for_load(load, &template, cfg.capacity.link_bits_per_slot);
        let workload = Workload::generate(ArrivalProcess::Poisson { rate }, template, 600, seed)
            .expect("valid");
        ServerSim::new(cfg)
            .expect("valid")
            .run(&workload)
            .expect("runs")
    }

    #[test]
    fn config_validation() {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let good = config(10, &template, AdmissionPolicy::AdmitAll);
        assert!(ServerSim::new(good).is_ok());
        let mut c = good;
        c.miss_slots = 0;
        assert!(ServerSim::new(c).is_err());
        let mut c = good;
        c.buffer_slots = c.miss_slots; // buffer must exceed allowance
        assert!(ServerSim::new(c).is_err());
        let mut c = good;
        c.capacity.link_bits_per_slot = 0;
        assert!(ServerSim::new(c).is_err());
    }

    #[test]
    fn light_load_serves_everyone_at_full_quality() {
        let r = run_at_load(0.5, AdmissionPolicy::QueuePredictor, true, 7);
        assert!(r.admitted > 0);
        assert_eq!(r.rejected, 0, "half-load must admit everyone");
        assert_eq!(r.deadline_misses, 0);
        assert!(r.mean_utility() > 0.99, "utility {}", r.mean_utility());
        assert!(r.buffer_dropped_bits == 0);
        assert!(r.measured_occupancy < 1.0);
    }

    #[test]
    fn uncontrolled_overload_collapses() {
        let r = run_at_load(1.5, AdmissionPolicy::AdmitAll, false, 7);
        assert_eq!(r.rejected, 0);
        assert!(
            r.miss_rate() > 0.2,
            "sustained 1.5x overload must miss deadlines, got {}",
            r.miss_rate()
        );
        assert!(r.purged_bits > 0);
    }

    #[test]
    fn controlled_overload_stays_bounded() {
        let uncontrolled = run_at_load(1.5, AdmissionPolicy::AdmitAll, false, 7);
        let controlled = run_at_load(1.5, AdmissionPolicy::QueuePredictor, true, 7);
        assert!(controlled.rejected > 0, "overload must turn sessions away");
        assert!(
            controlled.miss_rate() < uncontrolled.miss_rate() / 5.0,
            "controlled {} vs uncontrolled {}",
            controlled.miss_rate(),
            uncontrolled.miss_rate()
        );
        assert!(
            controlled.mean_utility() > uncontrolled.mean_utility(),
            "controlled {} vs uncontrolled {}",
            controlled.mean_utility(),
            uncontrolled.mean_utility()
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let a = run_at_load(1.2, AdmissionPolicy::QueuePredictor, true, 42);
        let b = run_at_load(1.2, AdmissionPolicy::QueuePredictor, true, 42);
        assert_eq!(a, b);
        let c = run_at_load(1.2, AdmissionPolicy::QueuePredictor, true, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn predictor_tracks_measured_occupancy_under_poisson() {
        let r = run_at_load(0.8, AdmissionPolicy::QueuePredictor, true, 11);
        // Both should be small and same order of magnitude; the
        // prediction is of the *transmit queue*, the measurement of the
        // playout backlog, so only coarse agreement is expected.
        assert!(r.predicted_occupancy > 0.0);
        assert!(r.predicted_occupancy < f64::from(r.slots as u32));
        assert!(
            r.measured_occupancy < 8.0,
            "measured {}",
            r.measured_occupancy
        );
    }

    /// Regression: `run` used to compute `buffer_slots * full_bits` /
    /// `miss_slots * full_bits` unchecked, so a large-but-valid config
    /// silently wrapped in release builds (and aborted in debug).
    #[test]
    fn huge_slot_thresholds_fail_validation_instead_of_wrapping() {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let mut cfg = config(10, &template, AdmissionPolicy::QueuePredictor);
        cfg.buffer_slots = u64::MAX;
        cfg.miss_slots = u64::MAX - 1;
        // Slot counts alone are valid (buffer > miss > 0)...
        let sim = ServerSim::new(cfg).expect("slot counts alone are valid");
        assert!(cfg.validate().is_ok());
        // ...but the bit thresholds overflow at this template's demand.
        assert!(matches!(
            cfg.validate_for(template.full_bits()),
            Err(ServeError::InvalidParameter("buffer_slots"))
        ));
        let workload = Workload::generate(ArrivalProcess::Poisson { rate: 0.5 }, template, 10, 1)
            .expect("valid");
        assert!(matches!(
            sim.run(&workload),
            Err(ServeError::InvalidParameter("buffer_slots"))
        ));
        // The largest non-overflowing threshold still validates.
        let mut cfg = config(10, &template, AdmissionPolicy::QueuePredictor);
        cfg.buffer_slots = u64::MAX / template.full_bits();
        cfg.miss_slots = cfg.buffer_slots - 1;
        assert!(cfg.validate_for(template.full_bits()).is_ok());
    }

    #[test]
    fn instrumented_run_matches_report_and_plain_run() {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let cfg = config(20, &template, AdmissionPolicy::QueuePredictor);
        let rate = rate_for_load(1.2, &template, cfg.capacity.link_bits_per_slot);
        let workload =
            Workload::generate(ArrivalProcess::Poisson { rate }, template, 600, 7).expect("valid");
        let sim = ServerSim::new(cfg).expect("valid");
        let plain = sim.run(&workload).expect("runs");
        let mut sink = crate::metrics::ServeMetricsSink::with_capacity(600);
        let instrumented = sim
            .run_instrumented(&workload, Some(&mut sink))
            .expect("runs");
        assert_eq!(plain, instrumented, "sink must not perturb the run");
        assert_eq!(sink.slots() as u64, plain.slots, "one sample per slot");
        assert_eq!(sink.admitted().iter().sum::<u64>(), plain.admitted);
        assert_eq!(
            sink.deadline_misses().iter().sum::<u64>(),
            plain.deadline_misses
        );
        assert_eq!(
            sink.active().iter().sum::<u64>(),
            plain.session_slots,
            "active session-slots must match the report"
        );
        // Conservation: everything accounted leaving the buffers is
        // bounded by what entered them.
        assert!(
            plain.delivered_bits + plain.buffer_dropped_bits + plain.purged_bits
                <= sink.enqueued_bits()
        );
    }

    fn faulted_setup(load: f64) -> (ServerConfig, Workload) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let cfg = config(20, &template, AdmissionPolicy::QueuePredictor);
        let rate = rate_for_load(load, &template, cfg.capacity.link_bits_per_slot);
        let workload =
            Workload::generate(ArrivalProcess::Poisson { rate }, template, 600, 7).expect("valid");
        (cfg, workload)
    }

    #[test]
    fn empty_fault_plan_reproduces_the_nominal_run() {
        let (cfg, workload) = faulted_setup(1.2);
        let sim = ServerSim::new(cfg).expect("valid");
        let nominal = sim.run(&workload).expect("runs");
        let faulted = sim
            .run_faulted(&workload, &dms_sim::FaultPlan::none(600), None, None)
            .expect("runs");
        assert_eq!(faulted.base, nominal, "no faults must change nothing");
        assert_eq!(faulted.crashed, 0);
        assert_eq!(faulted.lost_to_fault_bits, 0);
        assert_eq!(faulted.stall_slots, 0);
    }

    #[test]
    fn link_degradation_costs_utility_and_is_accounted() {
        let (cfg, workload) = faulted_setup(0.8);
        let sim = ServerSim::new(cfg).expect("valid");
        let plan = dms_sim::FaultPlan::compile(
            &[dms_sim::FaultSpec::LinkDegradation {
                start_slot: 200,
                duration_slots: 60,
                factor: 0.2,
            }],
            600,
            1,
        )
        .expect("valid");
        let nominal = sim.run(&workload).expect("runs");
        let faulted = sim.run_faulted(&workload, &plan, None, None).expect("runs");
        assert_eq!(faulted.degraded_slots, 60);
        assert!(
            faulted.base.utility_sum < nominal.utility_sum,
            "a 60-slot 0.2x fade must cost utility"
        );
        assert!(
            faulted.base.mean_layers < nominal.mean_layers,
            "the shedding controller must react to the faded link"
        );
    }

    #[test]
    fn crash_releases_reservations_and_recovery_readmits() {
        let (cfg, workload) = faulted_setup(0.8);
        let sim = ServerSim::new(cfg).expect("valid");
        let plan = dms_sim::FaultPlan::compile(
            &[dms_sim::FaultSpec::CrashBurst {
                slot: 300,
                fraction: 0.5,
            }],
            600,
            1,
        )
        .expect("valid");
        let recovery = crate::faults::RecoveryConfig::default();
        let without = sim.run_faulted(&workload, &plan, None, None).expect("runs");
        assert!(without.crashed > 0, "half the active set must crash");
        assert_eq!(without.retries, 0);
        let with = sim
            .run_faulted(&workload, &plan, Some(&recovery), None)
            .expect("runs");
        assert_eq!(with.crashed, without.crashed, "same plan, same victims");
        assert!(with.retries > 0, "recovery must schedule retries");
        assert!(
            with.readmitted > 0,
            "at 0.8x load retried sessions must fit again"
        );
        assert!(
            with.base.session_slots > without.base.session_slots,
            "readmitted sessions serve slots the unrecovered run loses"
        );
        // First-offer ledger is untouched by retries.
        assert_eq!(with.base.admitted + with.base.rejected, with.base.offered);
    }

    #[test]
    fn stalls_are_detected_and_capacity_reestimated() {
        let (cfg, workload) = faulted_setup(0.8);
        let sim = ServerSim::new(cfg).expect("valid");
        let plan = dms_sim::FaultPlan::compile(
            &[dms_sim::FaultSpec::SlotStalls {
                start_slot: 300,
                duration_slots: 6,
            }],
            600,
            1,
        )
        .expect("valid");
        let recovery = crate::faults::RecoveryConfig::default();
        let faulted = sim
            .run_faulted(&workload, &plan, Some(&recovery), None)
            .expect("runs");
        assert_eq!(faulted.stall_slots, 6);
        assert!(
            faulted.stalls_detected >= 1,
            "a 6-slot stall exceeds the 3-slot window"
        );
        assert!(
            faulted.capacity_reestimates >= 2,
            "estimate must drop into the stall and restore after it"
        );
    }

    #[test]
    fn corruption_loses_bits_in_flight() {
        let (cfg, workload) = faulted_setup(0.8);
        let sim = ServerSim::new(cfg).expect("valid");
        let plan = dms_sim::FaultPlan::compile(
            &[dms_sim::FaultSpec::CorruptionBurst {
                start_slot: 200,
                duration_slots: 50,
                p_good_to_bad: 1.0,
                p_bad_to_good: 0.0,
                loss_good: 0.0,
                loss_bad: 0.3,
            }],
            600,
            1,
        )
        .expect("valid");
        let nominal = sim.run(&workload).expect("runs");
        let faulted = sim.run_faulted(&workload, &plan, None, None).expect("runs");
        assert!(faulted.lost_to_fault_bits > 0);
        assert!(faulted.base.delivered_bits < nominal.delivered_bits);
        assert!(faulted.base.utility_sum < nominal.utility_sum);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let (cfg, workload) = faulted_setup(1.0);
        let sim = ServerSim::new(cfg).expect("valid");
        let specs = [
            dms_sim::FaultSpec::LinkDegradation {
                start_slot: 150,
                duration_slots: 40,
                factor: 0.5,
            },
            dms_sim::FaultSpec::CrashBurst {
                slot: 250,
                fraction: 0.3,
            },
            dms_sim::FaultSpec::CorruptionBurst {
                start_slot: 150,
                duration_slots: 40,
                p_good_to_bad: 0.01,
                p_bad_to_good: 0.1,
                loss_good: 0.001,
                loss_bad: 0.5,
            },
        ];
        let recovery = crate::faults::RecoveryConfig::default();
        let run = || {
            let plan = dms_sim::FaultPlan::compile(&specs, 600, 99).expect("valid");
            sim.run_faulted(&workload, &plan, Some(&recovery), None)
                .expect("runs")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_workload_reports_idle() {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let workload = Workload {
            sessions: Vec::new(),
            template,
            slots: 50,
        };
        let cfg = config(10, &template, AdmissionPolicy::QueuePredictor);
        let r = ServerSim::new(cfg)
            .expect("valid")
            .run(&workload)
            .expect("runs");
        assert_eq!(r.session_slots, 0);
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.mean_utility(), 0.0);
        assert_eq!(r.rejection_rate(), 0.0);
        assert_eq!(r.delivered_bits, 0);
    }
}
