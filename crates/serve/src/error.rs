//! Error type for the `dms-serve` crate.

/// Errors raised by workload generation, admission control and the
/// server simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// A constructor argument is out of range; carries the field name.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidParameter(name) => {
                write!(f, "invalid parameter: {name}")
            }
        }
    }
}

impl std::error::Error for ServeError {}
