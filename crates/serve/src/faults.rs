//! Recovery policy and fault-run reporting for the streaming server.
//!
//! The fault *schedule* lives in [`dms_sim::FaultPlan`] — this module
//! holds the serve-side halves: [`RecoveryConfig`], the
//! retry/backoff/timeout policy a faulted server runs under, and
//! [`FaultReport`], the [`crate::ServerReport`] extension that accounts
//! for everything a fault can do to a session (crashes, timeouts,
//! retries, corrupted bits, stalls, capacity re-estimates).
//!
//! [`corruption_burst`] bridges the `dms-media` Gilbert–Elliott channel
//! vocabulary (`ChannelModel`, the paper's Fig.-1 error automaton) onto
//! the shared [`FaultSpec`] vocabulary, so the same two-state chain
//! that corrupts packets in `dms-media` stream simulations corrupts
//! slot grants here.

use dms_media::ChannelModel;
use dms_sim::FaultSpec;
use serde::{Deserialize, Serialize};

use crate::error::ServeError;
use crate::session::ServerReport;

/// Retry/backoff/timeout policy for sessions hit by faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// First-retry delay after a crash or timeout, slots (≥ 1).
    pub backoff_base_slots: u64,
    /// Multiplier applied to the delay per further attempt (≥ 1).
    pub backoff_factor: u64,
    /// Retry attempts per session before giving up (0 disables retry).
    pub max_retries: u32,
    /// Playout-deadline-aware timeout: a session missing its deadline
    /// this many *consecutive* slots is aborted and (if attempts
    /// remain) re-queued — the client gave up on the stalled stream.
    pub timeout_miss_slots: u64,
    /// Slots of zero service under positive demand before the
    /// multiplexer counts a stall episode.
    pub stall_window_slots: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            backoff_base_slots: 4,
            backoff_factor: 2,
            max_retries: 3,
            timeout_miss_slots: 8,
            stall_window_slots: 3,
        }
    }
}

impl RecoveryConfig {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.backoff_base_slots == 0 {
            return Err(ServeError::InvalidParameter("backoff_base_slots"));
        }
        if self.backoff_factor == 0 {
            return Err(ServeError::InvalidParameter("backoff_factor"));
        }
        if self.timeout_miss_slots == 0 {
            return Err(ServeError::InvalidParameter("timeout_miss_slots"));
        }
        if self.stall_window_slots == 0 {
            return Err(ServeError::InvalidParameter("stall_window_slots"));
        }
        Ok(())
    }

    /// Backoff delay before retry attempt number `attempt` (0-based):
    /// `base * factor^attempt`, saturating.
    #[must_use]
    pub fn backoff_slots(&self, attempt: u32) -> u64 {
        let mut delay = self.backoff_base_slots;
        for _ in 0..attempt {
            delay = delay.saturating_mul(self.backoff_factor);
        }
        delay
    }

    /// Total slots a session can spend backing off across all its
    /// retries — the horizon within which recovery must either restore
    /// service or give up (`Σ base·factor^a` for `a < max_retries`).
    #[must_use]
    pub fn backoff_horizon_slots(&self) -> u64 {
        (0..self.max_retries)
            .map(|a| self.backoff_slots(a))
            .fold(0u64, u64::saturating_add)
    }
}

/// What one *faulted* server run measured: the nominal
/// [`ServerReport`] plus the fault/recovery ledger.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultReport {
    /// The nominal accounting (admissions, misses, utility, bits).
    pub base: ServerReport,
    /// Session activations killed by crash bursts.
    pub crashed: u64,
    /// Session activations aborted by the playout-deadline timeout.
    pub timed_out: u64,
    /// Retry attempts scheduled (crash + timeout victims with attempts
    /// left).
    pub retries: u64,
    /// Retries re-admitted into the active set.
    pub readmitted: u64,
    /// Retries the admission controller turned away (they back off
    /// again if attempts remain).
    pub retry_rejected: u64,
    /// Bits lost to faults: crashed/timed-out backlogs plus bits
    /// corrupted in flight.
    pub lost_to_fault_bits: u64,
    /// Slots the server spent stalled by a fault.
    pub stall_slots: u64,
    /// Stall episodes flagged by the multiplexer's detector (zero
    /// service under positive demand for a full stall window).
    pub stalls_detected: u64,
    /// Slots on which the capacity re-estimator changed the admission
    /// controller's effective capacity.
    pub capacity_reestimates: u64,
    /// Slots served under degraded link capacity (fault factor < 1).
    pub degraded_slots: u64,
}

/// A [`FaultSpec::CorruptionBurst`] window driven by a `dms-media`
/// Gilbert–Elliott [`ChannelModel`] — one automaton step per slot, the
/// state's loss probability applied to the slot's delivered bits.
///
/// # Errors
///
/// Propagates [`ChannelModel::validate`] failures (as
/// [`ServeError::InvalidParameter`] naming the probability field).
pub fn corruption_burst(
    channel: &ChannelModel,
    start_slot: u64,
    duration_slots: u64,
) -> Result<FaultSpec, ServeError> {
    channel
        .validate()
        .map_err(|_| ServeError::InvalidParameter("channel"))?;
    Ok(FaultSpec::CorruptionBurst {
        start_slot,
        duration_slots,
        p_good_to_bad: channel.p_good_to_bad,
        p_bad_to_good: channel.p_bad_to_good,
        loss_good: channel.loss_good,
        loss_bad: channel.loss_bad,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_zero_fields() {
        assert!(RecoveryConfig::default().validate().is_ok());
        for patch in [
            |c: &mut RecoveryConfig| c.backoff_base_slots = 0,
            |c: &mut RecoveryConfig| c.backoff_factor = 0,
            |c: &mut RecoveryConfig| c.timeout_miss_slots = 0,
            |c: &mut RecoveryConfig| c.stall_window_slots = 0,
        ] {
            let mut c = RecoveryConfig::default();
            patch(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn backoff_is_exponential_and_horizon_sums_it() {
        let c = RecoveryConfig::default();
        assert_eq!(c.backoff_slots(0), 4);
        assert_eq!(c.backoff_slots(1), 8);
        assert_eq!(c.backoff_slots(2), 16);
        assert_eq!(c.backoff_horizon_slots(), 4 + 8 + 16);
        let none = RecoveryConfig {
            max_retries: 0,
            ..RecoveryConfig::default()
        };
        assert_eq!(none.backoff_horizon_slots(), 0);
        let huge = RecoveryConfig {
            backoff_base_slots: u64::MAX,
            backoff_factor: u64::MAX,
            max_retries: 5,
            ..RecoveryConfig::default()
        };
        assert_eq!(huge.backoff_horizon_slots(), u64::MAX, "saturates");
    }

    #[test]
    fn corruption_burst_carries_the_channel_params() {
        let ch = ChannelModel::bursty_wireless(1);
        let spec = corruption_burst(&ch, 100, 50).expect("valid channel");
        match spec {
            FaultSpec::CorruptionBurst {
                start_slot,
                duration_slots,
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                assert_eq!((start_slot, duration_slots), (100, 50));
                assert_eq!(p_good_to_bad, ch.p_good_to_bad);
                assert_eq!(p_bad_to_good, ch.p_bad_to_good);
                assert_eq!(loss_good, ch.loss_good);
                assert_eq!(loss_bad, ch.loss_bad);
            }
            other => panic!("wrong spec: {other:?}"),
        }
        let mut bad = ch;
        bad.loss_bad = 1.5;
        assert!(corruption_burst(&bad, 0, 1).is_err());
    }
}
