//! Analytical admission control (§2.2 used online).
//!
//! The paper's §2.2 point is that analytical steady-state models are
//! cheap enough to consult *during* design; a streaming server can go
//! one step further and consult them per admission decision. The
//! controller models the shared transmit path as an M/M/1/K queue
//! ([`dms_analysis::MM1KQueue`]) in units of full-quality session
//! frames: service rate `μ = C / full_bits` frames per slot, arrival
//! rate `λ = aggregate admitted demand / full_bits`. A candidate is
//! admitted only if the *predicted mean occupancy* of the resulting
//! session set stays under the configured bound.
//!
//! The prediction is knowingly optimistic for self-similar traffic —
//! exactly the §3.2 mismatch experiment E12 measures by comparing the
//! predicted occupancy against the measured one. The safety property
//! (never admit a set whose prediction exceeds the bound, rejection
//! monotone in offered load) is property-tested in
//! `tests/proptest_serve.rs`.

use dms_analysis::MM1KQueue;
use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// The server capacity model admission decisions are made against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityModel {
    /// Shared link capacity, bits per slot.
    pub link_bits_per_slot: u64,
    /// System size `K` of the M/M/1/K predictor, in frames.
    pub queue_frames: u32,
    /// Admission bound on the predicted mean occupancy, frames. Must
    /// not exceed `queue_frames`.
    pub occupancy_bound: f64,
}

impl CapacityModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.link_bits_per_slot == 0 {
            return Err(ServeError::InvalidParameter("link_bits_per_slot"));
        }
        if self.queue_frames == 0 {
            return Err(ServeError::InvalidParameter("queue_frames"));
        }
        if !(self.occupancy_bound > 0.0 && self.occupancy_bound <= f64::from(self.queue_frames)) {
            return Err(ServeError::InvalidParameter("occupancy_bound"));
        }
        Ok(())
    }
}

/// Whether (and how) sessions are vetted before activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// No control: every session is admitted (the collapse baseline).
    AdmitAll,
    /// Admit only while the M/M/1/K-predicted mean occupancy of the
    /// admitted set stays under the capacity model's bound.
    QueuePredictor,
}

/// The admission controller: stateless prediction plus accept/reject
/// bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    model: CapacityModel,
    policy: AdmissionPolicy,
    /// Reference frame size used to convert bits to "frames", bits.
    frame_bits: u64,
    /// Capacity the predictor currently believes in, bits per slot.
    /// Starts at the nominal `model.link_bits_per_slot`; fault-aware
    /// runs lower it via [`AdmissionController::set_effective_capacity`]
    /// so admission re-plans against what the link actually delivers.
    effective_bits: u64,
    admitted: u64,
    rejected: u64,
}

impl AdmissionController {
    /// Creates a controller for sessions whose full-quality per-slot
    /// demand is `frame_bits`.
    ///
    /// # Errors
    ///
    /// Propagates capacity-model validation; rejects `frame_bits == 0`.
    pub fn new(
        model: CapacityModel,
        policy: AdmissionPolicy,
        frame_bits: u64,
    ) -> Result<Self, ServeError> {
        model.validate()?;
        if frame_bits == 0 {
            return Err(ServeError::InvalidParameter("frame_bits"));
        }
        Ok(AdmissionController {
            model,
            policy,
            frame_bits,
            effective_bits: model.link_bits_per_slot,
            admitted: 0,
            rejected: 0,
        })
    }

    /// The capacity model decisions are made against.
    #[must_use]
    pub fn model(&self) -> &CapacityModel {
        &self.model
    }

    /// The capacity the predictor currently plans against, bits/slot.
    #[must_use]
    pub fn effective_capacity(&self) -> u64 {
        self.effective_bits
    }

    /// Re-estimates the capacity the predictor plans against (the
    /// multiplexer's measured service rate under faults). A zero
    /// estimate fails closed: the predictor saturates and the
    /// `QueuePredictor` policy rejects everything until capacity
    /// returns.
    pub fn set_effective_capacity(&mut self, bits_per_slot: u64) {
        self.effective_bits = bits_per_slot;
    }

    /// Predicted mean queue occupancy (frames) if the admitted set
    /// demands `demand_bits` per slot in aggregate. Zero demand means
    /// an empty queue; demand is otherwise fed to the M/M/1/K formulas
    /// (which remain defined past `ρ = 1`).
    #[must_use]
    pub fn predicted_occupancy(&self, demand_bits: u64) -> f64 {
        if demand_bits == 0 {
            return 0.0;
        }
        let mu = self.effective_bits as f64 / self.frame_bits as f64;
        let lambda = demand_bits as f64 / self.frame_bits as f64;
        MM1KQueue::new(lambda, mu, self.model.queue_frames)
            .map(|q| q.mean_queue_length())
            // Unreachable with validated inputs; fail closed (treat as
            // saturated) rather than admit blindly.
            .unwrap_or(f64::from(self.model.queue_frames))
    }

    /// The admission predicate without the bookkeeping: would a
    /// candidate demanding `candidate_bits` join a set already
    /// demanding `active_bits`? Used for *re*-admissions (session
    /// retries after a crash), which must not perturb the
    /// first-offer `admitted + rejected == offered` ledger.
    #[must_use]
    pub fn would_admit(&self, active_bits: u64, candidate_bits: u64) -> bool {
        match self.policy {
            AdmissionPolicy::AdmitAll => true,
            AdmissionPolicy::QueuePredictor => {
                self.predicted_occupancy(active_bits + candidate_bits) <= self.model.occupancy_bound
            }
        }
    }

    /// Decides whether a candidate with full-quality demand
    /// `candidate_bits` joins a set already demanding `active_bits` per
    /// slot, and records the outcome.
    pub fn decide(&mut self, active_bits: u64, candidate_bits: u64) -> bool {
        let admit = self.would_admit(active_bits, candidate_bits);
        if admit {
            self.admitted += 1;
        } else {
            self.rejected += 1;
        }
        admit
    }

    /// Sessions admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Sessions rejected so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CapacityModel {
        CapacityModel {
            link_bits_per_slot: 100_000,
            queue_frames: 64,
            occupancy_bound: 8.0,
        }
    }

    #[test]
    fn validation_rejects_bad_models() {
        let mut m = model();
        m.link_bits_per_slot = 0;
        assert!(AdmissionController::new(m, AdmissionPolicy::AdmitAll, 10).is_err());
        let mut m = model();
        m.queue_frames = 0;
        assert!(AdmissionController::new(m, AdmissionPolicy::AdmitAll, 10).is_err());
        let mut m = model();
        m.occupancy_bound = 100.0; // > queue_frames
        assert!(AdmissionController::new(m, AdmissionPolicy::AdmitAll, 10).is_err());
        assert!(AdmissionController::new(model(), AdmissionPolicy::AdmitAll, 0).is_err());
    }

    #[test]
    fn admit_all_never_rejects() {
        let mut c =
            AdmissionController::new(model(), AdmissionPolicy::AdmitAll, 1_000).expect("valid");
        for k in 0..100 {
            assert!(c.decide(k * 1_000_000, 1_000_000));
        }
        assert_eq!(c.admitted(), 100);
        assert_eq!(c.rejected(), 0);
    }

    #[test]
    fn predictor_admits_light_load_and_rejects_overload() {
        let mut c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        // 50% utilisation: mean occupancy ≈ 1 frame, well under bound 8.
        assert!(c.decide(49_000, 1_000));
        // Far past capacity: occupancy ≈ K, rejected.
        assert!(!c.decide(300_000, 1_000));
        assert_eq!((c.admitted(), c.rejected()), (1, 1));
    }

    #[test]
    fn predicted_occupancy_is_monotone_in_demand() {
        let c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        let mut last = -1.0;
        for demand in (0..=40).map(|k| k * 10_000) {
            let occ = c.predicted_occupancy(demand);
            assert!(occ >= last, "occupancy must not decrease with demand");
            assert!(occ <= f64::from(c.model().queue_frames));
            last = occ;
        }
    }

    #[test]
    fn would_admit_matches_decide_without_bookkeeping() {
        let mut c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        for active in [0u64, 49_000, 150_000, 300_000] {
            let preview = c.would_admit(active, 1_000);
            assert_eq!(preview, c.decide(active, 1_000));
        }
        assert_eq!(c.admitted() + c.rejected(), 4, "only decide() records");
    }

    #[test]
    fn capacity_reestimate_shifts_the_predictor() {
        let mut c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        assert_eq!(c.effective_capacity(), 100_000);
        assert!(c.would_admit(49_000, 1_000));
        // Halve the believed capacity: the same set now looks saturated.
        c.set_effective_capacity(50_000);
        assert_eq!(c.effective_capacity(), 50_000);
        assert!(!c.would_admit(49_000, 1_000));
        // Zero capacity fails closed — predictor pegs at K, rejects all.
        c.set_effective_capacity(0);
        assert_eq!(
            c.predicted_occupancy(1_000),
            f64::from(c.model().queue_frames)
        );
        assert!(!c.would_admit(0, 1_000));
        // Restoring the nominal capacity restores the decision.
        c.set_effective_capacity(c.model().link_bits_per_slot);
        assert!(c.would_admit(49_000, 1_000));
    }

    #[test]
    fn empty_set_predicts_empty_queue() {
        let c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        assert_eq!(c.predicted_occupancy(0), 0.0);
    }
}
