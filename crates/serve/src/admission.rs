//! Analytical admission control (§2.2 used online).
//!
//! The paper's §2.2 point is that analytical steady-state models are
//! cheap enough to consult *during* design; a streaming server can go
//! one step further and consult them per admission decision. The
//! controller models the shared transmit path as an M/M/1/K queue
//! ([`dms_analysis::MM1KQueue`]) in units of full-quality session
//! frames: service rate `μ = C / full_bits` frames per slot, arrival
//! rate `λ = aggregate admitted demand / full_bits`. A candidate is
//! admitted only if the *predicted mean occupancy* of the resulting
//! session set stays under the configured bound.
//!
//! The prediction is knowingly optimistic for self-similar traffic —
//! exactly the §3.2 mismatch experiment E12 measures by comparing the
//! predicted occupancy against the measured one. The safety property
//! (never admit a set whose prediction exceeds the bound, rejection
//! monotone in offered load) is property-tested in
//! `tests/proptest_serve.rs`.

use dms_analysis::MM1KQueue;
use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// The server capacity model admission decisions are made against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityModel {
    /// Shared link capacity, bits per slot.
    pub link_bits_per_slot: u64,
    /// System size `K` of the M/M/1/K predictor, in frames.
    pub queue_frames: u32,
    /// Admission bound on the predicted mean occupancy, frames. Must
    /// not exceed `queue_frames`.
    pub occupancy_bound: f64,
}

impl CapacityModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.link_bits_per_slot == 0 {
            return Err(ServeError::InvalidParameter("link_bits_per_slot"));
        }
        if self.queue_frames == 0 {
            return Err(ServeError::InvalidParameter("queue_frames"));
        }
        if !(self.occupancy_bound > 0.0 && self.occupancy_bound <= f64::from(self.queue_frames)) {
            return Err(ServeError::InvalidParameter("occupancy_bound"));
        }
        Ok(())
    }
}

/// Whether (and how) sessions are vetted before activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// No control: every session is admitted (the collapse baseline).
    AdmitAll,
    /// Admit only while the M/M/1/K-predicted mean occupancy of the
    /// admitted set stays under the capacity model's bound.
    QueuePredictor,
}

/// The admission controller: stateless prediction plus accept/reject
/// bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    model: CapacityModel,
    policy: AdmissionPolicy,
    /// Reference frame size used to convert bits to "frames", bits.
    frame_bits: u64,
    /// Capacity the predictor currently believes in, bits per slot.
    /// Starts at the nominal `model.link_bits_per_slot`; fault-aware
    /// runs lower it via [`AdmissionController::set_effective_capacity`]
    /// so admission re-plans against what the link actually delivers.
    effective_bits: u64,
    admitted: u64,
    rejected: u64,
}

impl AdmissionController {
    /// Creates a controller for sessions whose full-quality per-slot
    /// demand is `frame_bits`.
    ///
    /// # Errors
    ///
    /// Propagates capacity-model validation; rejects `frame_bits == 0`.
    pub fn new(
        model: CapacityModel,
        policy: AdmissionPolicy,
        frame_bits: u64,
    ) -> Result<Self, ServeError> {
        model.validate()?;
        if frame_bits == 0 {
            return Err(ServeError::InvalidParameter("frame_bits"));
        }
        Ok(AdmissionController {
            model,
            policy,
            frame_bits,
            effective_bits: model.link_bits_per_slot,
            admitted: 0,
            rejected: 0,
        })
    }

    /// The capacity model decisions are made against.
    #[must_use]
    pub fn model(&self) -> &CapacityModel {
        &self.model
    }

    /// The capacity the predictor currently plans against, bits/slot.
    #[must_use]
    pub fn effective_capacity(&self) -> u64 {
        self.effective_bits
    }

    /// Re-estimates the capacity the predictor plans against (the
    /// multiplexer's measured service rate under faults). A zero
    /// estimate fails closed: the predictor saturates and the
    /// `QueuePredictor` policy rejects everything until capacity
    /// returns.
    pub fn set_effective_capacity(&mut self, bits_per_slot: u64) {
        self.effective_bits = bits_per_slot;
    }

    /// Predicted mean queue occupancy (frames) if the admitted set
    /// demands `demand_bits` per slot in aggregate. Zero demand means
    /// an empty queue; demand is otherwise fed to the M/M/1/K formulas
    /// (which remain defined past `ρ = 1`).
    #[must_use]
    pub fn predicted_occupancy(&self, demand_bits: u64) -> f64 {
        if demand_bits == 0 {
            return 0.0;
        }
        let mu = self.effective_bits as f64 / self.frame_bits as f64;
        let lambda = demand_bits as f64 / self.frame_bits as f64;
        MM1KQueue::new(lambda, mu, self.model.queue_frames)
            .map(|q| q.mean_queue_length())
            // Unreachable with validated inputs; fail closed (treat as
            // saturated) rather than admit blindly.
            .unwrap_or(f64::from(self.model.queue_frames))
    }

    /// The admission predicate without the bookkeeping: would a
    /// candidate demanding `candidate_bits` join a set already
    /// demanding `active_bits`? Used for *re*-admissions (session
    /// retries after a crash), which must not perturb the
    /// first-offer `admitted + rejected == offered` ledger.
    #[must_use]
    pub fn would_admit(&self, active_bits: u64, candidate_bits: u64) -> bool {
        match self.policy {
            AdmissionPolicy::AdmitAll => true,
            AdmissionPolicy::QueuePredictor => {
                self.predicted_occupancy(active_bits + candidate_bits) <= self.model.occupancy_bound
            }
        }
    }

    /// Decides whether a candidate with full-quality demand
    /// `candidate_bits` joins a set already demanding `active_bits` per
    /// slot, and records the outcome.
    pub fn decide(&mut self, active_bits: u64, candidate_bits: u64) -> bool {
        let admit = self.would_admit(active_bits, candidate_bits);
        if admit {
            self.admitted += 1;
        } else {
            self.rejected += 1;
        }
        admit
    }

    /// Records a rejection decided *outside* the predictor — e.g. the
    /// warm-up gate turning arrivals away before the shard is ready —
    /// keeping the `admitted + rejected == offered` ledger exact.
    pub fn record_rejection(&mut self) {
        self.rejected += 1;
    }

    /// Sessions admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Sessions rejected so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The reference frame size decisions are denominated in, bits.
    #[must_use]
    pub fn frame_bits(&self) -> u64 {
        self.frame_bits
    }
}

/// Memo entries beyond this session count fall through to the direct
/// computation — a backstop against unbounded growth, far above any
/// admissible set the predictor lets through.
const MEMO_MAX_SESSIONS: u64 = 1 << 21;

/// Count-keyed memo over an [`AdmissionController`]'s M/M/1/K
/// evaluations, for hot loops where every candidate demands the same
/// `frame_bits`: the predicate and the occupancy prediction then
/// depend only on the resulting *session count*, so each count is
/// evaluated once per effective capacity instead of once per offer.
///
/// Entries are cached results of the exact controller calls, so a
/// memoised loop is bit-identical to a per-offer one (the differential
/// proptests against the reference server pin this). The memo empties
/// itself whenever the controller's effective capacity moved since the
/// last call — re-estimation under faults just costs a refill.
#[derive(Debug, Clone, Default)]
pub struct AdmissionMemo {
    /// Effective capacity the cached entries were computed against.
    effective_bits: u64,
    /// Admission predicate by resulting session count:
    /// 0 = unknown, 1 = admit, 2 = reject.
    admit: Vec<u8>,
    /// Predicted occupancy by active session count; NaN = unknown.
    occupancy: Vec<f64>,
}

impl AdmissionMemo {
    /// Creates an empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn sync(&mut self, ctrl: &AdmissionController) {
        if self.effective_bits != ctrl.effective_bits {
            self.admit.clear();
            self.occupancy.clear();
            self.effective_bits = ctrl.effective_bits;
        }
    }

    /// Memoised [`AdmissionController::would_admit`] for one candidate
    /// of `frame_bits` demand joining `active_sessions` sessions of the
    /// same demand.
    pub fn would_admit(&mut self, ctrl: &AdmissionController, active_sessions: u64) -> bool {
        if ctrl.policy == AdmissionPolicy::AdmitAll {
            return true;
        }
        let direct =
            |c: &AdmissionController| c.would_admit(active_sessions * c.frame_bits, c.frame_bits);
        if active_sessions >= MEMO_MAX_SESSIONS {
            return direct(ctrl);
        }
        self.sync(ctrl);
        let idx = active_sessions as usize;
        if self.admit.len() <= idx {
            self.admit.resize(idx + 1, 0);
        }
        match self.admit[idx] {
            1 => true,
            2 => false,
            _ => {
                let admit = direct(ctrl);
                self.admit[idx] = if admit { 1 } else { 2 };
                admit
            }
        }
    }

    /// Memoised [`AdmissionController::decide`]: same predicate as
    /// [`AdmissionMemo::would_admit`], plus the accept/reject ledger.
    pub fn decide(&mut self, ctrl: &mut AdmissionController, active_sessions: u64) -> bool {
        let admit = self.would_admit(ctrl, active_sessions);
        if admit {
            ctrl.admitted += 1;
        } else {
            ctrl.rejected += 1;
        }
        admit
    }

    /// Memoised [`AdmissionController::predicted_occupancy`] for an
    /// admitted set of `sessions` full-quality sessions.
    pub fn predicted_occupancy(&mut self, ctrl: &AdmissionController, sessions: u64) -> f64 {
        if sessions >= MEMO_MAX_SESSIONS {
            return ctrl.predicted_occupancy(sessions * ctrl.frame_bits);
        }
        self.sync(ctrl);
        let idx = sessions as usize;
        if self.occupancy.len() <= idx {
            self.occupancy.resize(idx + 1, f64::NAN);
        }
        if self.occupancy[idx].is_nan() {
            self.occupancy[idx] = ctrl.predicted_occupancy(sessions * ctrl.frame_bits);
        }
        self.occupancy[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CapacityModel {
        CapacityModel {
            link_bits_per_slot: 100_000,
            queue_frames: 64,
            occupancy_bound: 8.0,
        }
    }

    #[test]
    fn validation_rejects_bad_models() {
        let mut m = model();
        m.link_bits_per_slot = 0;
        assert!(AdmissionController::new(m, AdmissionPolicy::AdmitAll, 10).is_err());
        let mut m = model();
        m.queue_frames = 0;
        assert!(AdmissionController::new(m, AdmissionPolicy::AdmitAll, 10).is_err());
        let mut m = model();
        m.occupancy_bound = 100.0; // > queue_frames
        assert!(AdmissionController::new(m, AdmissionPolicy::AdmitAll, 10).is_err());
        assert!(AdmissionController::new(model(), AdmissionPolicy::AdmitAll, 0).is_err());
    }

    #[test]
    fn admit_all_never_rejects() {
        let mut c =
            AdmissionController::new(model(), AdmissionPolicy::AdmitAll, 1_000).expect("valid");
        for k in 0..100 {
            assert!(c.decide(k * 1_000_000, 1_000_000));
        }
        assert_eq!(c.admitted(), 100);
        assert_eq!(c.rejected(), 0);
    }

    #[test]
    fn predictor_admits_light_load_and_rejects_overload() {
        let mut c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        // 50% utilisation: mean occupancy ≈ 1 frame, well under bound 8.
        assert!(c.decide(49_000, 1_000));
        // Far past capacity: occupancy ≈ K, rejected.
        assert!(!c.decide(300_000, 1_000));
        assert_eq!((c.admitted(), c.rejected()), (1, 1));
    }

    #[test]
    fn predicted_occupancy_is_monotone_in_demand() {
        let c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        let mut last = -1.0;
        for demand in (0..=40).map(|k| k * 10_000) {
            let occ = c.predicted_occupancy(demand);
            assert!(occ >= last, "occupancy must not decrease with demand");
            assert!(occ <= f64::from(c.model().queue_frames));
            last = occ;
        }
    }

    #[test]
    fn would_admit_matches_decide_without_bookkeeping() {
        let mut c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        for active in [0u64, 49_000, 150_000, 300_000] {
            let preview = c.would_admit(active, 1_000);
            assert_eq!(preview, c.decide(active, 1_000));
        }
        assert_eq!(c.admitted() + c.rejected(), 4, "only decide() records");
    }

    #[test]
    fn capacity_reestimate_shifts_the_predictor() {
        let mut c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        assert_eq!(c.effective_capacity(), 100_000);
        assert!(c.would_admit(49_000, 1_000));
        // Halve the believed capacity: the same set now looks saturated.
        c.set_effective_capacity(50_000);
        assert_eq!(c.effective_capacity(), 50_000);
        assert!(!c.would_admit(49_000, 1_000));
        // Zero capacity fails closed — predictor pegs at K, rejects all.
        c.set_effective_capacity(0);
        assert_eq!(
            c.predicted_occupancy(1_000),
            f64::from(c.model().queue_frames)
        );
        assert!(!c.would_admit(0, 1_000));
        // Restoring the nominal capacity restores the decision.
        c.set_effective_capacity(c.model().link_bits_per_slot);
        assert!(c.would_admit(49_000, 1_000));
    }

    #[test]
    fn empty_set_predicts_empty_queue() {
        let c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        assert_eq!(c.predicted_occupancy(0), 0.0);
    }

    #[test]
    fn memo_matches_direct_calls_bit_for_bit() {
        let mut c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        let mut memo = AdmissionMemo::new();
        // Two passes over the same counts: the first fills the memo,
        // the second must serve every answer from cache — and both must
        // equal the direct controller calls exactly.
        for _ in 0..2 {
            for count in 0..200u64 {
                assert_eq!(
                    memo.would_admit(&c, count),
                    c.would_admit(count * 1_000, 1_000),
                    "predicate diverged at count {count}"
                );
                let direct = c.predicted_occupancy(count * 1_000);
                let memoised = memo.predicted_occupancy(&c, count);
                assert_eq!(
                    memoised.to_bits(),
                    direct.to_bits(),
                    "occupancy diverged at count {count}"
                );
            }
        }
        // decide() keeps the same ledger as the controller's own.
        let before = (c.admitted(), c.rejected());
        let admit = memo.decide(&mut c, 10);
        assert!(admit);
        assert_eq!(c.admitted(), before.0 + 1);
        assert_eq!(c.rejected(), before.1);
        assert!(!memo.decide(&mut c, 2_000));
        assert_eq!(c.rejected(), before.1 + 1);
    }

    #[test]
    fn memo_invalidates_on_capacity_reestimate() {
        let mut c = AdmissionController::new(model(), AdmissionPolicy::QueuePredictor, 1_000)
            .expect("valid");
        let mut memo = AdmissionMemo::new();
        assert!(memo.would_admit(&c, 49));
        let occ_full = memo.predicted_occupancy(&c, 49);
        // Halving the believed capacity must flush the cached entries:
        // the same count now predicts a saturated queue.
        c.set_effective_capacity(50_000);
        assert!(!memo.would_admit(&c, 49));
        let occ_half = memo.predicted_occupancy(&c, 49);
        assert!(occ_half > occ_full);
        assert_eq!(occ_half.to_bits(), c.predicted_occupancy(49_000).to_bits());
        // And restoring it flushes again, back to the original values.
        c.set_effective_capacity(c.model().link_bits_per_slot);
        assert!(memo.would_admit(&c, 49));
        assert_eq!(
            memo.predicted_occupancy(&c, 49).to_bits(),
            occ_full.to_bits()
        );
    }

    #[test]
    fn memo_admit_all_short_circuits() {
        let mut c =
            AdmissionController::new(model(), AdmissionPolicy::AdmitAll, 1_000).expect("valid");
        let mut memo = AdmissionMemo::new();
        assert!(memo.would_admit(&c, u64::MAX));
        assert!(memo.decide(&mut c, MEMO_MAX_SESSIONS + 1));
        assert_eq!(c.admitted(), 1);
    }
}
