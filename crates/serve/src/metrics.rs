//! Per-slot instrumentation for [`crate::ServerSim`] runs.
//!
//! [`ServeMetricsSink`] is the optional recording side-car of
//! [`crate::ServerSim::run_instrumented`]: when attached it captures
//! one sample per slot of the signals the paper's control argument
//! turns on — admissions, active sessions, playout backlog, the FGS
//! layer cap and deadline misses — plus a running total of bits
//! enqueued into playout buffers (the conservation denominator the
//! property tests check). When no sink is attached the server loop pays
//! one `Option` check per slot and allocates nothing.
//!
//! [`ServeMetricsSink::export`] publishes the captured series into a
//! [`dms_sim::MetricsRegistry`] under a caller-chosen scope, from where
//! they flow into a [`dms_sim::RunLog`].
//!
//! # Bounded mode
//!
//! The default (full) mode keeps one `Vec` entry per slot — fine for
//! the 10^2–10^3-slot experiment sweeps, but memory grows with the
//! run, which is exactly what the million-session E15 arm cannot
//! afford on top of its session state. [`ServeMetricsSink::bounded`]
//! builds a sink that folds every slot sample into O(1)-memory
//! streaming aggregates instead: per-signal [`dms_sim::QuantileSketch`]es,
//! scalar counters, and a deterministic [`dms_sim::Reservoir`] of
//! per-session deadline-miss traces fed by
//! [`ServeMetricsSink::record_departure`]. Bounded sinks [`merge`]
//! exactly (sketch buckets add, reservoirs re-truncate), so per-shard
//! sinks merged in job order equal a sequential recording bit for bit
//! — the same `ParRunner` contract the full-mode series obey by
//! concatenation.
//!
//! [`merge`]: ServeMetricsSink::merge

use dms_sim::{MetricsRegistry, QuantileSketch, Reservoir};

/// Relative-error bound of every bounded-mode quantile sketch.
pub const SINK_SKETCH_ALPHA: f64 = 0.01;

/// Capacity of the bounded-mode per-session miss reservoir.
pub const SINK_RESERVOIR_K: usize = 64;

/// Seed of the bounded-mode reservoir. One fixed constant for every
/// sink so shard sinks are always mergeable; the retained session set
/// is a pure function of this and the offered ids.
pub const SINK_RESERVOIR_SEED: u64 = 0x05ee_d0b5_ed15_7a11;

/// Bounded-memory aggregates of the per-slot signals (see the module
/// docs): what a bounded sink keeps instead of full series.
#[derive(Debug, Clone, PartialEq)]
struct BoundedAggregates {
    slots: u64,
    admitted_total: u64,
    deadline_misses_total: u64,
    active: QuantileSketch,
    backlog_bits: QuantileSketch,
    layer_cap: QuantileSketch,
    utility: QuantileSketch,
    /// Deadline-miss count per departed session, keyed by session id.
    session_misses: Reservoir,
    departed: u64,
}

impl BoundedAggregates {
    fn new() -> Self {
        BoundedAggregates {
            slots: 0,
            admitted_total: 0,
            deadline_misses_total: 0,
            active: QuantileSketch::new(SINK_SKETCH_ALPHA),
            backlog_bits: QuantileSketch::new(SINK_SKETCH_ALPHA),
            layer_cap: QuantileSketch::new(SINK_SKETCH_ALPHA),
            utility: QuantileSketch::new(SINK_SKETCH_ALPHA),
            session_misses: Reservoir::new(SINK_RESERVOIR_K, SINK_RESERVOIR_SEED),
            departed: 0,
        }
    }

    fn merge(&mut self, other: &BoundedAggregates) {
        self.slots += other.slots;
        self.admitted_total += other.admitted_total;
        self.deadline_misses_total += other.deadline_misses_total;
        self.active.merge(&other.active);
        self.backlog_bits.merge(&other.backlog_bits);
        self.layer_cap.merge(&other.layer_cap);
        self.utility.merge(&other.utility);
        self.session_misses.merge(&other.session_misses);
        self.departed += other.departed;
    }
}

/// Per-slot instrumentation recorded from one server run: full series
/// by default, bounded streaming aggregates via
/// [`ServeMetricsSink::bounded`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeMetricsSink {
    admitted: Vec<u64>,
    active: Vec<u64>,
    backlog_bits: Vec<u64>,
    layer_cap: Vec<u64>,
    deadline_misses: Vec<u64>,
    utility: Vec<f64>,
    enqueued_bits: u64,
    bounded: Option<BoundedAggregates>,
}

impl ServeMetricsSink {
    /// Creates an empty full-mode sink.
    #[must_use]
    pub fn new() -> Self {
        ServeMetricsSink::default()
    }

    /// Creates a full-mode sink with capacity for `slots` samples per
    /// series.
    #[must_use]
    pub fn with_capacity(slots: usize) -> Self {
        ServeMetricsSink {
            admitted: Vec::with_capacity(slots),
            active: Vec::with_capacity(slots),
            backlog_bits: Vec::with_capacity(slots),
            layer_cap: Vec::with_capacity(slots),
            deadline_misses: Vec::with_capacity(slots),
            utility: Vec::with_capacity(slots),
            enqueued_bits: 0,
            bounded: None,
        }
    }

    /// Creates a bounded-mode sink: O(1) memory however long the run,
    /// at the cost of quantile summaries instead of full series (see
    /// the module docs).
    #[must_use]
    pub fn bounded() -> Self {
        ServeMetricsSink {
            bounded: Some(BoundedAggregates::new()),
            ..ServeMetricsSink::default()
        }
    }

    /// Whether this sink aggregates instead of keeping full series.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.bounded.is_some()
    }

    /// Appends one slot's sample to every series (full mode) or folds
    /// it into the streaming aggregates (bounded mode).
    #[allow(clippy::too_many_arguments)] // one argument per recorded signal
    pub fn record_slot(
        &mut self,
        admitted: u64,
        active: u64,
        backlog_bits: u64,
        layer_cap: u64,
        deadline_misses: u64,
        utility: f64,
        enqueued_bits: u64,
    ) {
        self.enqueued_bits += enqueued_bits;
        if let Some(agg) = self.bounded.as_mut() {
            agg.slots += 1;
            agg.admitted_total += admitted;
            agg.deadline_misses_total += deadline_misses;
            agg.active.record(active as f64);
            agg.backlog_bits.record(backlog_bits as f64);
            agg.layer_cap.record(layer_cap as f64);
            agg.utility.record(utility);
            return;
        }
        self.admitted.push(admitted);
        self.active.push(active);
        self.backlog_bits.push(backlog_bits);
        self.layer_cap.push(layer_cap);
        self.deadline_misses.push(deadline_misses);
        self.utility.push(utility);
    }

    /// Records one session departure: in bounded mode the session's
    /// deadline-miss count is offered to the per-session reservoir
    /// (keyed by session id, so the retained trace set is independent
    /// of departure order and shard split); in full mode this is a
    /// no-op — per-slot series already carry the signal.
    pub fn record_departure(&mut self, session_id: u64, misses: u64) {
        if let Some(agg) = self.bounded.as_mut() {
            agg.departed += 1;
            agg.session_misses.offer(session_id, misses as f64);
        }
    }

    /// Merges another sink of the same mode: series concatenate (full)
    /// or aggregates add exactly (bounded). Merging per-shard sinks in
    /// job order equals sequential recording bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the two sinks are in different modes.
    pub fn merge(&mut self, other: &ServeMetricsSink) {
        self.enqueued_bits += other.enqueued_bits;
        match (self.bounded.as_mut(), other.bounded.as_ref()) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {
                self.admitted.extend_from_slice(&other.admitted);
                self.active.extend_from_slice(&other.active);
                self.backlog_bits.extend_from_slice(&other.backlog_bits);
                self.layer_cap.extend_from_slice(&other.layer_cap);
                self.deadline_misses
                    .extend_from_slice(&other.deadline_misses);
                self.utility.extend_from_slice(&other.utility);
            }
            _ => panic!("cannot merge a bounded sink with a full-series sink"),
        }
    }

    /// Slots recorded so far.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.active.len()
    }

    /// Sessions admitted per slot.
    #[must_use]
    pub fn admitted(&self) -> &[u64] {
        &self.admitted
    }

    /// Active sessions at each slot.
    #[must_use]
    pub fn active(&self) -> &[u64] {
        &self.active
    }

    /// Total playout backlog (bits) at the end of each slot.
    #[must_use]
    pub fn backlog_bits(&self) -> &[u64] {
        &self.backlog_bits
    }

    /// FGS layer cap served in each slot.
    #[must_use]
    pub fn layer_cap(&self) -> &[u64] {
        &self.layer_cap
    }

    /// Deadline misses charged in each slot.
    #[must_use]
    pub fn deadline_misses(&self) -> &[u64] {
        &self.deadline_misses
    }

    /// Utility summed over the sessions served in each slot — the
    /// signal the E13 resilience sweep reads recovery curves from.
    #[must_use]
    pub fn utility(&self) -> &[f64] {
        &self.utility
    }

    /// Total bits enqueued into playout buffers before capping — the
    /// denominator of the `delivered + dropped + purged ≤ enqueued`
    /// conservation invariant.
    #[must_use]
    pub fn enqueued_bits(&self) -> u64 {
        self.enqueued_bits
    }

    /// Publishes the captured data into `registry` under `scope`.
    ///
    /// Full mode: series `scope/admitted`, `scope/active`,
    /// `scope/backlog_bits`, `scope/layer_cap`, `scope/deadline_misses`,
    /// `scope/utility` and counter `scope/enqueued_bits`. Bounded mode:
    /// counters `scope/slots`, `scope/admitted_total`,
    /// `scope/deadline_misses_total`, `scope/departed`,
    /// `scope/enqueued_bits`; sketches `scope/active`,
    /// `scope/backlog_bits`, `scope/layer_cap`, `scope/utility`; and
    /// the `scope/session_misses` reservoir.
    pub fn export(&self, registry: &mut MetricsRegistry, scope: &str) {
        let mut scoped = registry.scoped(scope);
        scoped.counter_add("enqueued_bits", self.enqueued_bits);
        if let Some(agg) = self.bounded.as_ref() {
            scoped.counter_add("slots", agg.slots);
            scoped.counter_add("admitted_total", agg.admitted_total);
            scoped.counter_add("deadline_misses_total", agg.deadline_misses_total);
            scoped.counter_add("departed", agg.departed);
            scoped.sketch_merge("active", &agg.active);
            scoped.sketch_merge("backlog_bits", &agg.backlog_bits);
            scoped.sketch_merge("layer_cap", &agg.layer_cap);
            scoped.sketch_merge("utility", &agg.utility);
            scoped.reservoir_merge("session_misses", &agg.session_misses);
            return;
        }
        scoped.series_extend("admitted", self.admitted.iter().map(|&v| v as f64));
        scoped.series_extend("active", self.active.iter().map(|&v| v as f64));
        scoped.series_extend("backlog_bits", self.backlog_bits.iter().map(|&v| v as f64));
        scoped.series_extend("layer_cap", self.layer_cap.iter().map(|&v| v as f64));
        scoped.series_extend(
            "deadline_misses",
            self.deadline_misses.iter().map(|&v| v as f64),
        );
        scoped.series_extend("utility", self.utility.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_records_and_exports() {
        let mut sink = ServeMetricsSink::with_capacity(2);
        sink.record_slot(1, 3, 4096, 2, 0, 2.75, 8192);
        sink.record_slot(0, 2, 2048, 3, 1, 1.5, 6144);
        assert_eq!(sink.slots(), 2);
        assert_eq!(sink.admitted(), &[1, 0]);
        assert_eq!(sink.active(), &[3, 2]);
        assert_eq!(sink.backlog_bits(), &[4096, 2048]);
        assert_eq!(sink.layer_cap(), &[2, 3]);
        assert_eq!(sink.deadline_misses(), &[0, 1]);
        assert_eq!(sink.utility(), &[2.75, 1.5]);
        assert_eq!(sink.enqueued_bits(), 14_336);

        let mut registry = MetricsRegistry::new();
        sink.export(&mut registry, "server");
        assert_eq!(registry.series("server/active"), &[3.0, 2.0]);
        assert_eq!(registry.series("server/backlog_bits"), &[4096.0, 2048.0]);
        assert_eq!(registry.series("server/utility"), &[2.75, 1.5]);
        assert_eq!(registry.counter("server/enqueued_bits"), 14_336);
        assert_eq!(registry.len(), 7);
    }

    #[test]
    fn bounded_sink_aggregates_with_constant_memory() {
        let mut sink = ServeMetricsSink::bounded();
        assert!(sink.is_bounded());
        for slot in 0..10_000u64 {
            sink.record_slot(1, slot % 100, slot * 10, 3, slot % 2, 0.5, 100);
            sink.record_departure(slot, slot % 7);
        }
        // Full-mode series stay empty — nothing grows with the run.
        assert_eq!(sink.slots(), 0);
        assert_eq!(sink.enqueued_bits(), 1_000_000);

        let mut registry = MetricsRegistry::new();
        sink.export(&mut registry, "server");
        assert_eq!(registry.counter("server/slots"), 10_000);
        assert_eq!(registry.counter("server/admitted_total"), 10_000);
        assert_eq!(registry.counter("server/deadline_misses_total"), 5_000);
        assert_eq!(registry.counter("server/departed"), 10_000);
        let Some(dms_sim::Metric::Sketch(active)) = registry.get("server/active") else {
            panic!("active sketch missing");
        };
        assert_eq!(active.count(), 10_000);
        // Median of slot % 100 is ~50, within the sketch's bound.
        let p50 = active.quantile(0.5).expect("non-empty");
        assert!((p50 - 50.0).abs() <= 2.0, "p50 = {p50}");
        let Some(dms_sim::Metric::Reservoir(r)) = registry.get("server/session_misses") else {
            panic!("session reservoir missing");
        };
        assert_eq!(r.len(), SINK_RESERVOIR_K);
        assert_eq!(r.offered(), 10_000);
    }

    /// The sink-level `ParRunner` contract: per-shard bounded sinks
    /// merged in job order equal one sequential recording exactly.
    #[test]
    fn bounded_sink_merge_equals_sequential() {
        let record = |sink: &mut ServeMetricsSink, slots: std::ops::Range<u64>| {
            for s in slots {
                sink.record_slot(s % 2, s % 37, s * 100, 2, s % 3, (s % 11) as f64 * 0.25, 50);
                if s % 5 == 0 {
                    sink.record_departure(s, s % 4);
                }
            }
        };
        let mut sequential = ServeMetricsSink::bounded();
        record(&mut sequential, 0..400);
        let mut merged = ServeMetricsSink::bounded();
        for w in 0..4u64 {
            let mut shard = ServeMetricsSink::bounded();
            record(&mut shard, (w * 100)..((w + 1) * 100));
            merged.merge(&shard);
        }
        assert_eq!(merged, sequential);
        let export = |sink: &ServeMetricsSink| {
            let mut reg = MetricsRegistry::new();
            sink.export(&mut reg, "s");
            reg.to_json().render()
        };
        assert_eq!(export(&merged), export(&sequential));
    }

    #[test]
    fn full_sink_merge_concatenates() {
        let mut a = ServeMetricsSink::new();
        a.record_slot(1, 2, 3, 4, 5, 6.0, 7);
        let mut b = ServeMetricsSink::new();
        b.record_slot(10, 20, 30, 40, 50, 60.0, 70);
        // Full-mode departures are a no-op, not an error.
        b.record_departure(1, 2);
        a.merge(&b);
        assert_eq!(a.slots(), 2);
        assert_eq!(a.active(), &[2, 20]);
        assert_eq!(a.enqueued_bits(), 77);
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn mixed_mode_merge_panics() {
        let mut a = ServeMetricsSink::bounded();
        a.merge(&ServeMetricsSink::new());
    }
}
