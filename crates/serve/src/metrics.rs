//! Per-slot instrumentation for [`crate::ServerSim`] runs.
//!
//! [`ServeMetricsSink`] is the optional recording side-car of
//! [`crate::ServerSim::run_instrumented`]: when attached it captures
//! one sample per slot of the signals the paper's control argument
//! turns on — admissions, active sessions, playout backlog, the FGS
//! layer cap and deadline misses — plus a running total of bits
//! enqueued into playout buffers (the conservation denominator the
//! property tests check). When no sink is attached the server loop pays
//! one `Option` check per slot and allocates nothing.
//!
//! [`ServeMetricsSink::export`] publishes the captured series into a
//! [`dms_sim::MetricsRegistry`] under a caller-chosen scope, from where
//! they flow into a [`dms_sim::RunLog`].

use dms_sim::MetricsRegistry;

/// Per-slot series recorded from one server run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeMetricsSink {
    admitted: Vec<u64>,
    active: Vec<u64>,
    backlog_bits: Vec<u64>,
    layer_cap: Vec<u64>,
    deadline_misses: Vec<u64>,
    utility: Vec<f64>,
    enqueued_bits: u64,
}

impl ServeMetricsSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        ServeMetricsSink::default()
    }

    /// Creates a sink with capacity for `slots` samples per series.
    #[must_use]
    pub fn with_capacity(slots: usize) -> Self {
        ServeMetricsSink {
            admitted: Vec::with_capacity(slots),
            active: Vec::with_capacity(slots),
            backlog_bits: Vec::with_capacity(slots),
            layer_cap: Vec::with_capacity(slots),
            deadline_misses: Vec::with_capacity(slots),
            utility: Vec::with_capacity(slots),
            enqueued_bits: 0,
        }
    }

    /// Appends one slot's sample to every series.
    #[allow(clippy::too_many_arguments)] // one argument per recorded signal
    pub fn record_slot(
        &mut self,
        admitted: u64,
        active: u64,
        backlog_bits: u64,
        layer_cap: u64,
        deadline_misses: u64,
        utility: f64,
        enqueued_bits: u64,
    ) {
        self.admitted.push(admitted);
        self.active.push(active);
        self.backlog_bits.push(backlog_bits);
        self.layer_cap.push(layer_cap);
        self.deadline_misses.push(deadline_misses);
        self.utility.push(utility);
        self.enqueued_bits += enqueued_bits;
    }

    /// Slots recorded so far.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.active.len()
    }

    /// Sessions admitted per slot.
    #[must_use]
    pub fn admitted(&self) -> &[u64] {
        &self.admitted
    }

    /// Active sessions at each slot.
    #[must_use]
    pub fn active(&self) -> &[u64] {
        &self.active
    }

    /// Total playout backlog (bits) at the end of each slot.
    #[must_use]
    pub fn backlog_bits(&self) -> &[u64] {
        &self.backlog_bits
    }

    /// FGS layer cap served in each slot.
    #[must_use]
    pub fn layer_cap(&self) -> &[u64] {
        &self.layer_cap
    }

    /// Deadline misses charged in each slot.
    #[must_use]
    pub fn deadline_misses(&self) -> &[u64] {
        &self.deadline_misses
    }

    /// Utility summed over the sessions served in each slot — the
    /// signal the E13 resilience sweep reads recovery curves from.
    #[must_use]
    pub fn utility(&self) -> &[f64] {
        &self.utility
    }

    /// Total bits enqueued into playout buffers before capping — the
    /// denominator of the `delivered + dropped + purged ≤ enqueued`
    /// conservation invariant.
    #[must_use]
    pub fn enqueued_bits(&self) -> u64 {
        self.enqueued_bits
    }

    /// Publishes the captured series into `registry` under `scope`
    /// (series `scope/admitted`, `scope/active`, `scope/backlog_bits`,
    /// `scope/layer_cap`, `scope/deadline_misses`, `scope/utility` and
    /// counter `scope/enqueued_bits`).
    pub fn export(&self, registry: &mut MetricsRegistry, scope: &str) {
        let mut scoped = registry.scoped(scope);
        scoped.series_extend("admitted", self.admitted.iter().map(|&v| v as f64));
        scoped.series_extend("active", self.active.iter().map(|&v| v as f64));
        scoped.series_extend("backlog_bits", self.backlog_bits.iter().map(|&v| v as f64));
        scoped.series_extend("layer_cap", self.layer_cap.iter().map(|&v| v as f64));
        scoped.series_extend(
            "deadline_misses",
            self.deadline_misses.iter().map(|&v| v as f64),
        );
        scoped.series_extend("utility", self.utility.iter().copied());
        scoped.counter_add("enqueued_bits", self.enqueued_bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_records_and_exports() {
        let mut sink = ServeMetricsSink::with_capacity(2);
        sink.record_slot(1, 3, 4096, 2, 0, 2.75, 8192);
        sink.record_slot(0, 2, 2048, 3, 1, 1.5, 6144);
        assert_eq!(sink.slots(), 2);
        assert_eq!(sink.admitted(), &[1, 0]);
        assert_eq!(sink.active(), &[3, 2]);
        assert_eq!(sink.backlog_bits(), &[4096, 2048]);
        assert_eq!(sink.layer_cap(), &[2, 3]);
        assert_eq!(sink.deadline_misses(), &[0, 1]);
        assert_eq!(sink.utility(), &[2.75, 1.5]);
        assert_eq!(sink.enqueued_bits(), 14_336);

        let mut registry = MetricsRegistry::new();
        sink.export(&mut registry, "server");
        assert_eq!(registry.series("server/active"), &[3.0, 2.0]);
        assert_eq!(registry.series("server/backlog_bits"), &[4096.0, 2048.0]);
        assert_eq!(registry.series("server/utility"), &[2.75, 1.5]);
        assert_eq!(registry.counter("server/enqueued_bits"), 14_336);
        assert_eq!(registry.len(), 7);
    }
}
