//! Generational struct-of-arrays store for active sessions.
//!
//! The server's hot loop touches every active session a handful of
//! times per slot (enqueue, water-fill sort, grant application), and at
//! mega-scale that working set dwarfs the cache. [`SessionArena`] keeps
//! each field in its own dense array so a per-slot pass streams exactly
//! the bytes it needs, and recycles slots through a free list so a
//! departure is an O(1) handle free instead of the old
//! `Vec::retain` scan (O(active) per departure, O(k·n) per slot).
//!
//! Determinism: iteration always walks [`SessionArena::order`], the
//! insertion-ordered handle list — never raw slot order, which depends
//! on free-list history. That preserves the exact float-accumulation
//! and crash-victim order of the original `Vec<ActiveSession>` loop
//! (`ReferenceServerSim` pins this differentially). Departures mark the
//! slot dead and leave a stale entry in `order`; the once-per-slot
//! [`SessionArena::compact`] sweep removes stale entries and returns
//! slots to the free list, so k same-slot departures cost O(k + n).
//! A slot is only reusable after its stale entry is swept, which keeps
//! every handle in `order` unambiguous. `Depart` events carry
//! `(handle, act)` and are ignored unless the activation still matches
//! — the generational check that keeps a stale departure from killing
//! a recycled slot.

/// Dense per-session state, indexed by slot handle (`u32`).
#[derive(Debug, Default)]
pub(crate) struct SessionArena {
    /// Workload session id (unique among live sessions).
    pub ids: Vec<u64>,
    /// Activation id, unique per (re)admission — the generation tag.
    pub acts: Vec<u64>,
    /// Index into `workload.sessions`, for scheduling retries.
    pub idxs: Vec<usize>,
    /// Slot this activation departs at.
    pub depart_slots: Vec<u64>,
    /// Consecutive deadline-missed slots (playout-timeout trigger).
    pub misses: Vec<u64>,
    /// Retry attempts consumed to reach this activation.
    pub attempts: Vec<u32>,
    /// Playout-buffer backlog, bits — the water-filling hot field.
    pub backlogs: Vec<u64>,
    /// Whether the slot currently holds a live activation.
    pub alive: Vec<bool>,
    /// Recycled slot handles (LIFO).
    free: Vec<u32>,
    /// Live handles in admission order, plus stale entries for sessions
    /// killed since the last compaction.
    pub order: Vec<u32>,
    /// Live session count (`order.len()` minus stale entries).
    live: usize,
    /// Stale (dead) entries currently in `order`.
    stale: usize,
}

impl SessionArena {
    /// Creates an arena with room for `capacity` concurrent sessions.
    pub fn with_capacity(capacity: usize) -> Self {
        SessionArena {
            ids: Vec::with_capacity(capacity),
            acts: Vec::with_capacity(capacity),
            idxs: Vec::with_capacity(capacity),
            depart_slots: Vec::with_capacity(capacity),
            misses: Vec::with_capacity(capacity),
            attempts: Vec::with_capacity(capacity),
            backlogs: Vec::with_capacity(capacity),
            alive: Vec::with_capacity(capacity),
            free: Vec::new(),
            order: Vec::with_capacity(capacity),
            live: 0,
            stale: 0,
        }
    }

    /// Live session count.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Slots allocated so far (live + dead + free); the bound for any
    /// handle-indexed scratch buffer.
    pub fn capacity(&self) -> usize {
        self.ids.len()
    }

    /// Admits a session: recycles a swept slot or grows the arrays,
    /// appends the handle to `order`, and returns it.
    pub fn insert(&mut self, id: u64, act: u64, idx: usize, depart_slot: u64, attempt: u32) -> u32 {
        let h = match self.free.pop() {
            Some(h) => {
                let hi = h as usize;
                self.ids[hi] = id;
                self.acts[hi] = act;
                self.idxs[hi] = idx;
                self.depart_slots[hi] = depart_slot;
                self.misses[hi] = 0;
                self.attempts[hi] = attempt;
                self.backlogs[hi] = 0;
                self.alive[hi] = true;
                h
            }
            None => {
                let h = u32::try_from(self.ids.len()).expect("session arena exceeds u32 handles");
                self.ids.push(id);
                self.acts.push(act);
                self.idxs.push(idx);
                self.depart_slots.push(depart_slot);
                self.misses.push(0);
                self.attempts.push(attempt);
                self.backlogs.push(0);
                self.alive.push(true);
                h
            }
        };
        self.order.push(h);
        self.live += 1;
        h
    }

    /// Departure by `(handle, act)`: kills the activation iff the slot
    /// still holds it (the generational check). The `order` entry goes
    /// stale until the next [`SessionArena::compact`]. Returns whether
    /// anything died.
    pub fn depart(&mut self, handle: u32, act: u64) -> bool {
        let hi = handle as usize;
        if self.alive[hi] && self.acts[hi] == act {
            self.alive[hi] = false;
            self.live -= 1;
            self.stale += 1;
            true
        } else {
            false
        }
    }

    /// Pops the `count` newest live sessions off `order` into `buf` in
    /// *insertion order* (oldest victim first — the order the reference
    /// implementation's `drain(len - victims..)` yields), freeing their
    /// slots. Stale entries encountered on the way are swept for free.
    pub fn take_newest(&mut self, count: usize, buf: &mut Vec<u32>) {
        debug_assert!(count <= self.live);
        buf.clear();
        while buf.len() < count {
            let h = self.order.pop().expect("fewer live sessions than victims");
            let hi = h as usize;
            if self.alive[hi] {
                self.alive[hi] = false;
                self.live -= 1;
                buf.push(h);
            } else {
                self.stale -= 1;
            }
            self.free.push(h);
        }
        buf.reverse();
    }

    /// Kills a live session and frees its slot immediately. Only for
    /// callers that are compacting `order` themselves (the timeout
    /// sweep): the handle must be removed from `order` by the caller.
    pub fn release(&mut self, handle: u32) {
        let hi = handle as usize;
        debug_assert!(self.alive[hi]);
        self.alive[hi] = false;
        self.live -= 1;
        self.free.push(handle);
    }

    /// Sweeps stale entries out of `order` (returning their slots to
    /// the free list) and sums the live backlogs in one pass. After
    /// this, `order` holds exactly the live handles in insertion order.
    pub fn compact(&mut self) -> u64 {
        let mut carried = 0u64;
        if self.stale == 0 {
            for &h in &self.order {
                carried += self.backlogs[h as usize];
            }
            return carried;
        }
        let mut w = 0usize;
        for r in 0..self.order.len() {
            let h = self.order[r];
            if self.alive[h as usize] {
                carried += self.backlogs[h as usize];
                self.order[w] = h;
                w += 1;
            } else {
                self.free.push(h);
            }
        }
        self.order.truncate(w);
        self.stale = 0;
        carried
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_depart_compact_recycles_slots() {
        let mut a = SessionArena::with_capacity(4);
        let h0 = a.insert(10, 0, 0, 5, 0);
        let h1 = a.insert(11, 1, 1, 6, 0);
        let h2 = a.insert(12, 2, 2, 7, 0);
        assert_eq!(a.live(), 3);
        assert_eq!(a.order, vec![h0, h1, h2]);

        // Generational check: a stale act must not kill the slot.
        assert!(!a.depart(h1, 99));
        assert!(a.depart(h1, 1));
        assert!(!a.depart(h1, 1), "double departure is a no-op");
        assert_eq!(a.live(), 2);

        // The dead entry stays in order until compaction...
        assert_eq!(a.order.len(), 3);
        a.backlogs[h0 as usize] = 7;
        a.backlogs[h2 as usize] = 5;
        assert_eq!(a.compact(), 12, "carried sums live backlogs only");
        assert_eq!(a.order, vec![h0, h2]);

        // ...after which the slot is recycled, newest-first.
        let h3 = a.insert(13, 3, 3, 9, 1);
        assert_eq!(h3, h1, "freed slot is reused");
        assert_eq!(a.capacity(), 3, "no growth while the free list feeds");
        assert_eq!(a.order, vec![h0, h2, h3]);
        assert_eq!(a.backlogs[h3 as usize], 0, "recycled slot state resets");
        assert_eq!(a.attempts[h3 as usize], 1);
    }

    #[test]
    fn take_newest_yields_victims_in_insertion_order() {
        let mut a = SessionArena::with_capacity(4);
        let handles: Vec<u32> = (0..5).map(|i| a.insert(i, i, i as usize, 9, 0)).collect();
        // Kill one mid-list so a stale entry sits between live ones,
        // then one at the tail so take_newest has to sweep past it.
        a.depart(handles[2], 2);
        a.depart(handles[4], 4);
        let mut buf = Vec::new();
        a.take_newest(2, &mut buf);
        // Newest two live sessions are ids 1 and 3; insertion order.
        assert_eq!(buf, vec![handles[1], handles[3]]);
        assert_eq!(a.live(), 1);
        assert_eq!(a.compact(), 0);
        assert_eq!(a.order, vec![handles[0]]);
    }
}
