//! # dms-serve — multi-session streaming server
//!
//! The paper's closing argument is that multimedia systems must be
//! designed *holistically*: analytical models (§2.2), realistic traffic
//! (§3.2) and graceful QoS adaptation (§4) only pay off when they meet
//! in one system. This crate is that meeting point — a streaming server
//! that multiplexes thousands of concurrent Source→Channel→Sink
//! sessions over a shared link on the `dms-sim` event engine:
//!
//! * [`workload`] — open-loop session generation under Poisson *or*
//!   long-range-dependent (fGn) arrivals, each session stamped from an
//!   FGS-layered media template;
//! * [`admission`] — an admission controller that consults the
//!   `dms-analysis` M/M/1/K model online, per decision;
//! * [`session`] — the slotted multiplexer: FIFO event drains, max-min
//!   fair link sharing, playout buffers and deadline accounting;
//! * [`degrade`] — server-wide FGS layer shedding with hysteresis, the
//!   knob that turns the overload cliff into a utility slope;
//! * [`faults`] — the recovery policy (retry with exponential backoff,
//!   playout-deadline timeouts, stall detection, capacity
//!   re-estimation) a server runs faulted workloads under, paired with
//!   [`dms_sim::FaultPlan`] schedules via
//!   [`session::ServerSim::run_faulted`].
//!
//! Experiment E12 (`dms-bench`) sweeps offered load across 0.5–1.5× the
//! link capacity under both arrival processes to show (a) analytical
//! admission control keeps the deadline-miss rate bounded where the
//! uncontrolled server collapses, and (b) layer shedding degrades
//! utility gracefully instead of falling off a cliff.
//!
//! ## Example
//!
//! Serve a Poisson workload at 60% load and check nobody misses a
//! deadline:
//!
//! ```
//! use dms_serve::{
//!     AdmissionPolicy, ArrivalProcess, CapacityModel, DegradeConfig, ServerConfig, ServerSim,
//!     SessionTemplate, Workload,
//! };
//!
//! # fn main() -> Result<(), dms_serve::ServeError> {
//! let template = SessionTemplate::streaming_default()?;
//! let capacity = CapacityModel {
//!     link_bits_per_slot: 20 * template.full_bits(),
//!     queue_frames: 64,
//!     occupancy_bound: 8.0,
//! };
//! let rate = dms_serve::rate_for_load(0.6, &template, capacity.link_bits_per_slot);
//! let workload = Workload::generate(ArrivalProcess::Poisson { rate }, template, 400, 7)?;
//! let server = ServerSim::new(ServerConfig {
//!     capacity,
//!     policy: AdmissionPolicy::QueuePredictor,
//!     degrade: Some(DegradeConfig::default()),
//!     buffer_slots: 4,
//!     miss_slots: 2,
//! })?;
//! let report = server.run(&workload)?;
//! assert_eq!(report.deadline_misses, 0);
//! assert!(report.mean_utility() > 0.99);
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub(crate) mod arena;
pub mod degrade;
pub mod engine;
pub mod error;
pub mod faults;
pub mod metrics;
pub mod reference;
pub mod session;
pub mod workload;

pub use admission::{AdmissionController, AdmissionMemo, AdmissionPolicy, CapacityModel};
pub use degrade::{DegradeConfig, LayerController, PiConfig};
pub use engine::ServerEngine;
pub use error::ServeError;
pub use faults::{corruption_burst, FaultReport, RecoveryConfig};
pub use metrics::ServeMetricsSink;
pub use reference::ReferenceServerSim;
pub use session::{ServerConfig, ServerReport, ServerSim};
pub use workload::{rate_for_load, ArrivalProcess, SessionRequest, SessionTemplate, Workload};
