//! Open-loop session workload generation.
//!
//! The server experiments (E12) drive the multiplexer with an *open
//! loop*: sessions arrive whether or not the server is keeping up,
//! exactly like user requests against a streaming service. Two arrival
//! processes are provided, mirroring the §3.2 contrast the paper draws
//! for on-chip traffic:
//!
//! * [`ArrivalProcess::Poisson`] — the Markovian baseline analytical
//!   admission control is calibrated for;
//! * [`ArrivalProcess::SelfSimilar`] — long-range-dependent session
//!   arrivals driven by fractional Gaussian noise
//!   ([`dms_analysis::FractionalGaussianNoise`]), the regime in which
//!   uncontrolled servers collapse (§3.2: "drastically different from
//!   those experienced with traditional short-range dependent models").
//!
//! Each arriving session is stamped from a [`SessionTemplate`] — an
//! FGS-layered media profile built on [`dms_media::fgs`] — with an
//! exponentially distributed holding time. All randomness flows through
//! labelled [`SimRng`] sub-streams, so a workload is a pure function of
//! `(process, template, slots, seed)`.

use dms_analysis::{FractionalGaussianNoise, PoissonArrivals};
use dms_media::fgs::{FgsEncoder, FgsFrame, BIT_PLANES};
use dms_media::trace_gen::VideoTraceGenerator;
use dms_sim::SimRng;
use dms_wireless::dvfs::DvfsCpu;
use dms_wireless::fgs::FgsStreamer;
use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// How new sessions arrive at the server, per scheduling slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` sessions per slot.
    Poisson {
        /// Mean arrivals per slot.
        rate: f64,
    },
    /// Long-range-dependent arrivals: an fGn count process with the
    /// given Hurst parameter, mean `rate` and standard deviation
    /// `burstiness * rate` sessions per slot.
    SelfSimilar {
        /// Mean arrivals per slot.
        rate: f64,
        /// Hurst parameter in `(0, 1)`; `> 0.5` is LRD.
        hurst: f64,
        /// Std-dev of per-slot arrivals as a multiple of `rate`.
        burstiness: f64,
    },
    /// The E16 geo-tiered load: the [`ArrivalProcess::SelfSimilar`]
    /// process shaped by a deterministic diurnal envelope with
    /// superimposed flash-crowd spikes. Slot `t`'s instantaneous rate
    /// is `rate · diurnal(t) · spike(t)` where
    /// `diurnal(t) = 1 + diurnal_depth · sin(2π (t + diurnal_phase_slots) / diurnal_period_slots)`
    /// and `spike(t) = spike_factor` while
    /// `t mod spike_period_slots < spike_slots`, `1` otherwise. The
    /// envelope is pure arithmetic — it draws no randomness — so the
    /// variant consumes exactly the same rng stream as `SelfSimilar`
    /// and stays byte-deterministic at any thread count.
    FlashCrowd {
        /// Mean arrivals per slot *before* envelope shaping.
        rate: f64,
        /// Hurst parameter in `(0, 1)`; `> 0.5` is LRD.
        hurst: f64,
        /// Std-dev of per-slot arrivals as a multiple of `rate`.
        burstiness: f64,
        /// Diurnal modulation depth in `[0, 1)`.
        diurnal_depth: f64,
        /// Diurnal cycle length, slots (`> 0`).
        diurnal_period_slots: u64,
        /// Phase offset into the diurnal cycle, slots (per-region
        /// timezone shift).
        diurnal_phase_slots: u64,
        /// Rate multiplier while a flash crowd is active (`≥ 1`).
        spike_factor: f64,
        /// Flash-crowd recurrence period, slots (`> 0`).
        spike_period_slots: u64,
        /// Flash-crowd duration at the start of each period, slots
        /// (`≤ spike_period_slots`).
        spike_slots: u64,
    },
}

/// The deterministic rate envelope of [`ArrivalProcess::FlashCrowd`]
/// at slot `slot`: diurnal sinusoid times the spike multiplier.
#[must_use]
fn flash_envelope(
    slot: u64,
    diurnal_depth: f64,
    diurnal_period_slots: u64,
    diurnal_phase_slots: u64,
    spike_factor: f64,
    spike_period_slots: u64,
    spike_slots: u64,
) -> f64 {
    let phase = (slot + diurnal_phase_slots) % diurnal_period_slots;
    let diurnal = 1.0
        + diurnal_depth
            * (core::f64::consts::TAU * phase as f64 / diurnal_period_slots as f64).sin();
    let spike = if slot % spike_period_slots < spike_slots {
        spike_factor
    } else {
        1.0
    };
    diurnal * spike
}

impl ArrivalProcess {
    /// Mean arrivals per slot. For [`ArrivalProcess::FlashCrowd`] this
    /// is the *envelope-weighted* mean: the diurnal sinusoid averages
    /// to one over whole cycles, so only the spike duty cycle inflates
    /// the base rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::SelfSimilar { rate, .. } => rate,
            ArrivalProcess::FlashCrowd {
                rate,
                spike_factor,
                spike_period_slots,
                spike_slots,
                ..
            } => {
                let duty = spike_slots as f64 / spike_period_slots.max(1) as f64;
                rate * (1.0 + (spike_factor - 1.0) * duty)
            }
        }
    }

    /// Integer arrival counts for `slots` slots.
    ///
    /// The fGn series is real-valued; it is carried to integers with a
    /// running-residual rounding so the long-run mean is preserved (a
    /// plain `round()` would bias bursty slots). The fGn series is used
    /// *unclipped* — zero-truncating it first (as `generate_counts`
    /// does) inflates the realised mean above `rate` — and the carried
    /// residual is clamped to `[-1, 1]` so a deep negative excursion
    /// cannot bank an unbounded debt that silences arrivals for many
    /// subsequent slots.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a non-positive rate
    /// or an out-of-range Hurst/burstiness.
    pub fn counts(&self, slots: usize, rng: &mut SimRng) -> Result<Vec<u32>, ServeError> {
        let real: Vec<f64> = match *self {
            ArrivalProcess::Poisson { rate } => PoissonArrivals::new(rate)
                .map_err(|_| ServeError::InvalidParameter("rate"))?
                .generate(slots, rng),
            ArrivalProcess::SelfSimilar {
                rate,
                hurst,
                burstiness,
            } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(ServeError::InvalidParameter("rate"));
                }
                if !(burstiness.is_finite() && burstiness > 0.0) {
                    return Err(ServeError::InvalidParameter("burstiness"));
                }
                let std_dev = burstiness * rate;
                FractionalGaussianNoise::new(hurst)
                    .map_err(|_| ServeError::InvalidParameter("hurst"))?
                    .generate(slots, rng)
                    .into_iter()
                    .map(|z| rate + std_dev * z)
                    .collect()
            }
            ArrivalProcess::FlashCrowd {
                rate,
                hurst,
                burstiness,
                diurnal_depth,
                diurnal_period_slots,
                diurnal_phase_slots,
                spike_factor,
                spike_period_slots,
                spike_slots,
            } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(ServeError::InvalidParameter("rate"));
                }
                if !(burstiness.is_finite() && burstiness > 0.0) {
                    return Err(ServeError::InvalidParameter("burstiness"));
                }
                if !(diurnal_depth.is_finite() && (0.0..1.0).contains(&diurnal_depth)) {
                    return Err(ServeError::InvalidParameter("diurnal_depth"));
                }
                if diurnal_period_slots == 0 {
                    return Err(ServeError::InvalidParameter("diurnal_period_slots"));
                }
                if !(spike_factor.is_finite() && spike_factor >= 1.0) {
                    return Err(ServeError::InvalidParameter("spike_factor"));
                }
                if spike_period_slots == 0 || spike_slots > spike_period_slots {
                    return Err(ServeError::InvalidParameter("spike_period_slots"));
                }
                let std_dev = burstiness * rate;
                // The envelope multiplies the *whole* shaped series —
                // noise included — so flash crowds are burstier in
                // absolute terms, as real crowds are.
                FractionalGaussianNoise::new(hurst)
                    .map_err(|_| ServeError::InvalidParameter("hurst"))?
                    .generate(slots, rng)
                    .into_iter()
                    .enumerate()
                    .map(|(t, z)| {
                        (rate + std_dev * z)
                            * flash_envelope(
                                t as u64,
                                diurnal_depth,
                                diurnal_period_slots,
                                diurnal_phase_slots,
                                spike_factor,
                                spike_period_slots,
                                spike_slots,
                            )
                    })
                    .collect()
            }
        };
        let mut residual = 0.0f64;
        Ok(real
            .into_iter()
            .map(|x| {
                let want = x + residual;
                let n = want.floor().max(0.0);
                residual = (want - n).clamp(-1.0, 1.0);
                n as u32
            })
            .collect())
    }
}

/// The media profile every session of a workload is stamped from: an
/// FGS-layered stream (mandatory base layer plus [`BIT_PLANES`]
/// truncatable enhancement planes) expressed as per-slot bit demands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionTemplate {
    /// Base-layer bits a session must receive every slot.
    pub base_bits: u64,
    /// Per-plane enhancement bits per slot (most significant first).
    pub plane_bits: [u64; BIT_PLANES],
    /// PSNR of the base layer alone, dB.
    pub base_psnr_db: f64,
    /// PSNR added by each complete plane, dB.
    pub plane_psnr_db: [f64; BIT_PLANES],
    /// Enhancement planes a client can actually decode (layers past
    /// this are never requested).
    pub max_layers: usize,
    /// Mean session holding time, slots.
    pub mean_duration_slots: f64,
}

impl SessionTemplate {
    /// Builds the default streaming profile: a CIF MPEG-2 trace put
    /// through the [`FgsEncoder`] streaming preset, averaged into a
    /// per-slot demand, with the decodable-layer cap taken from the
    /// [`FgsStreamer`] XScale client's full-speed decoding aptitude
    /// (planes the client could never decode are not worth serving).
    ///
    /// # Errors
    ///
    /// Propagates preset-construction failures (never fails in
    /// practice).
    pub fn streaming_default() -> Result<Self, ServeError> {
        let gen = VideoTraceGenerator::cif_mpeg2()
            .map_err(|_| ServeError::InvalidParameter("trace preset"))?;
        let enc =
            FgsEncoder::streaming_default().map_err(|_| ServeError::InvalidParameter("encoder"))?;
        // A fixed internal seed: the template is a *profile*, the same
        // for every workload; per-session randomness lives elsewhere.
        let frames = enc.encode(&gen, 256, &mut SimRng::new(0xE12));
        let n = frames.len() as u64;
        let mut base = 0u64;
        let mut planes = [0u64; BIT_PLANES];
        for f in &frames {
            base += f.base_bits;
            for (acc, b) in planes.iter_mut().zip(&f.plane_bits) {
                *acc += b;
            }
        }
        base /= n;
        for p in &mut planes {
            *p /= n;
        }
        let reference = &frames[0];
        // Client ceiling: bits decodable in one slot at full speed.
        let streamer =
            FgsStreamer::xscale_client().map_err(|_| ServeError::InvalidParameter("client"))?;
        let cpu = DvfsCpu::xscale().map_err(|_| ServeError::InvalidParameter("cpu"))?;
        let aptitude = streamer.aptitude_bits(cpu.max_point().frequency_hz);
        let mut decodable = base;
        let mut max_layers = 0;
        for &p in &planes {
            if decodable + p > aptitude {
                break;
            }
            decodable += p;
            max_layers += 1;
        }
        Ok(SessionTemplate {
            base_bits: base,
            plane_bits: planes,
            base_psnr_db: reference.base_psnr_db,
            plane_psnr_db: reference.plane_psnr_db,
            max_layers: max_layers.max(1),
            mean_duration_slots: 200.0,
        })
    }

    /// Validates the template.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.base_bits == 0 {
            return Err(ServeError::InvalidParameter("base_bits"));
        }
        if self.max_layers > BIT_PLANES {
            return Err(ServeError::InvalidParameter("max_layers"));
        }
        if !(self.mean_duration_slots.is_finite() && self.mean_duration_slots >= 1.0) {
            return Err(ServeError::InvalidParameter("mean_duration_slots"));
        }
        if !(self.base_psnr_db.is_finite() && self.base_psnr_db > 0.0) {
            return Err(ServeError::InvalidParameter("base_psnr_db"));
        }
        Ok(())
    }

    /// Per-slot bit demand when `layers` enhancement planes are served
    /// (capped by [`SessionTemplate::max_layers`]).
    #[must_use]
    pub fn demand_bits(&self, layers: usize) -> u64 {
        let l = layers.min(self.max_layers);
        self.base_bits + self.plane_bits[..l].iter().sum::<u64>()
    }

    /// Per-slot bit demand at full quality (every decodable layer).
    #[must_use]
    pub fn full_bits(&self) -> u64 {
        self.demand_bits(self.max_layers)
    }

    /// The template as a reference [`FgsFrame`], for PSNR bookkeeping.
    #[must_use]
    pub fn reference_frame(&self) -> FgsFrame {
        FgsFrame {
            index: 0,
            base_bits: self.base_bits,
            plane_bits: self.plane_bits,
            base_psnr_db: self.base_psnr_db,
            plane_psnr_db: self.plane_psnr_db,
        }
    }

    /// Normalised utility of receiving `bits` of one slot's demand:
    /// delivered PSNR over the full-quality PSNR at `max_layers`, in
    /// `[0, 1]`. Fine-granularity: partial planes count fractionally.
    #[must_use]
    pub fn utility(&self, bits: u64) -> f64 {
        let frame = self.reference_frame();
        let (_, psnr) = frame.truncate_to(bits.min(self.full_bits()));
        let (_, best) = frame.truncate_to(self.full_bits());
        (psnr / best).clamp(0.0, 1.0)
    }
}

/// One session the workload offers to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionRequest {
    /// Stable id (generation order).
    pub id: u64,
    /// Slot the session asks to start in.
    pub arrival_slot: u64,
    /// Holding time in slots (≥ 1).
    pub duration_slots: u64,
}

/// A fully materialised open-loop workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Sessions in arrival order (ties broken by generation order —
    /// the FIFO order the event queue preserves).
    pub sessions: Vec<SessionRequest>,
    /// The media profile each session streams.
    pub template: SessionTemplate,
    /// Horizon the workload was generated for, slots.
    pub slots: u64,
}

impl Workload {
    /// Generates a workload: arrival counts from `process`, one
    /// exponential holding time per session.
    ///
    /// # Errors
    ///
    /// Propagates template validation and arrival-process parameter
    /// errors.
    pub fn generate(
        process: ArrivalProcess,
        template: SessionTemplate,
        slots: u64,
        seed: u64,
    ) -> Result<Workload, ServeError> {
        template.validate()?;
        let master = SimRng::new(seed);
        let counts = process.counts(slots as usize, &mut master.substream("serve-arrivals", 0))?;
        let mut durations = master.substream("serve-durations", 0);
        let mut sessions = Vec::new();
        let mut id = 0u64;
        for (slot, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                let d = durations
                    .exponential(template.mean_duration_slots)
                    .ceil()
                    .max(1.0) as u64;
                sessions.push(SessionRequest {
                    id,
                    arrival_slot: slot as u64,
                    duration_slots: d,
                });
                id += 1;
            }
        }
        Ok(Workload {
            sessions,
            template,
            slots,
        })
    }

    /// Materialises a workload from externally supplied per-slot
    /// arrival counts — the bridge that lets a *closed-loop* trace
    /// (e.g. the E11 ambient user-behaviour DTMC) drive the server
    /// instead of an open-loop arrival process. Holding times come
    /// from the same `"serve-durations"` substream discipline as
    /// [`Workload::generate`], so two traces with identical counts
    /// and seeds yield byte-identical workloads.
    ///
    /// # Errors
    ///
    /// Propagates template validation failures.
    pub fn from_arrival_counts(
        counts: &[u32],
        template: SessionTemplate,
        seed: u64,
    ) -> Result<Workload, ServeError> {
        template.validate()?;
        let master = SimRng::new(seed);
        let mut durations = master.substream("serve-durations", 0);
        let mut sessions = Vec::new();
        let mut id = 0u64;
        for (slot, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                let d = durations
                    .exponential(template.mean_duration_slots)
                    .ceil()
                    .max(1.0) as u64;
                sessions.push(SessionRequest {
                    id,
                    arrival_slot: slot as u64,
                    duration_slots: d,
                });
                id += 1;
            }
        }
        Ok(Workload {
            sessions,
            template,
            slots: counts.len() as u64,
        })
    }

    /// Offered load: mean full-quality demand of concurrently held
    /// sessions over the link capacity (`λ · E[D] · full_bits / C`).
    #[must_use]
    pub fn offered_load(&self, rate_per_slot: f64, link_bits_per_slot: u64) -> f64 {
        rate_per_slot * self.template.mean_duration_slots * self.template.full_bits() as f64
            / link_bits_per_slot as f64
    }
}

/// Arrival rate (sessions per slot) that offers `load` times the link
/// capacity at full quality: `λ = load · C / (full_bits · E[D])`.
#[must_use]
pub fn rate_for_load(load: f64, template: &SessionTemplate, link_bits_per_slot: u64) -> f64 {
    load * link_bits_per_slot as f64 / (template.full_bits() as f64 * template.mean_duration_slots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> SessionTemplate {
        SessionTemplate::streaming_default().expect("preset valid")
    }

    /// Pins the FlashCrowd envelope at known slots: the diurnal
    /// sinusoid's peak/trough/zero crossings and the spike duty
    /// window, including the phase shift used for per-region
    /// timezones.
    #[test]
    fn flash_envelope_pins_diurnal_and_spike_factors() {
        let env = |slot, phase| flash_envelope(slot, 0.5, 100, phase, 3.0, 50, 10);
        // Slot 0: diurnal = 1 + 0.5·sin(0) = 1, inside the spike
        // window (0 % 50 < 10) → ×3.
        assert!((env(0, 0) - 3.0).abs() < 1e-9);
        // Slot 25: diurnal peak 1 + 0.5·sin(π/2) = 1.5, no spike.
        assert!((env(25, 0) - 1.5).abs() < 1e-9);
        // Slot 50: diurnal zero-crossing (sin π ≈ 0), spike window of
        // the second period → ×3.
        assert!((env(50, 0) - 3.0).abs() < 1e-9);
        // Slot 75: diurnal trough 1 + 0.5·sin(3π/2) = 0.5, no spike.
        assert!((env(75, 0) - 0.5).abs() < 1e-9);
        // A 25-slot phase shift moves the peak onto slot 0, where it
        // compounds with the spike: 1.5 × 3.
        assert!((env(0, 25) - 4.5).abs() < 1e-9);
        // The envelope is periodic in the diurnal cycle.
        assert!((env(125, 0) - env(25, 0)).abs() < 1e-12);
    }

    /// `from_arrival_counts` with the counts `generate` would draw is
    /// `generate`, byte for byte — same ids, arrival slots, and
    /// holding times.
    #[test]
    fn from_arrival_counts_matches_generate_on_the_same_counts() {
        let t = template();
        let process = ArrivalProcess::Poisson { rate: 1.7 };
        let seed = 42;
        let generated = Workload::generate(process, t, 120, seed).expect("generate");
        let counts = process
            .counts(120, &mut SimRng::new(seed).substream("serve-arrivals", 0))
            .expect("counts");
        let from_counts = Workload::from_arrival_counts(&counts, t, seed).expect("from counts");
        assert_eq!(generated, from_counts);
    }

    #[test]
    fn template_is_sane() {
        let t = template();
        assert!(t.base_bits > 0);
        assert!(t.max_layers >= 1 && t.max_layers <= BIT_PLANES);
        assert!(t.full_bits() > t.base_bits);
        assert_eq!(t.demand_bits(0), t.base_bits);
        // Demand is monotone in layers and saturates at max_layers.
        let mut last = 0;
        for l in 0..=BIT_PLANES {
            let d = t.demand_bits(l);
            assert!(d >= last);
            last = d;
        }
        assert_eq!(t.demand_bits(BIT_PLANES), t.full_bits());
    }

    #[test]
    fn utility_is_monotone_and_normalised() {
        let t = template();
        assert!(t.utility(0) > 0.0, "base layer is mandatory: some quality");
        assert!(t.utility(t.base_bits) < 1.0);
        assert!((t.utility(t.full_bits()) - 1.0).abs() < 1e-12);
        let mut last = 0.0;
        for l in 0..=t.max_layers {
            let u = t.utility(t.demand_bits(l));
            assert!(u >= last, "utility must grow with layers");
            last = u;
        }
    }

    #[test]
    fn poisson_counts_hit_target_rate() {
        let p = ArrivalProcess::Poisson { rate: 2.5 };
        let counts = p
            .counts(20_000, &mut SimRng::new(5))
            .expect("valid process");
        let mean = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / counts.len() as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn selfsimilar_counts_hit_target_rate_and_are_burstier() {
        let rate = 2.5;
        let ss = ArrivalProcess::SelfSimilar {
            rate,
            hurst: 0.85,
            burstiness: 1.0,
        };
        let counts = ss
            .counts(20_000, &mut SimRng::new(5))
            .expect("valid process");
        let mean = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / counts.len() as f64;
        assert!((mean - rate).abs() < 0.2, "mean {mean}");
        let var = counts
            .iter()
            .map(|&c| (f64::from(c) - mean).powi(2))
            .sum::<f64>()
            / counts.len() as f64;
        // Poisson would have var ≈ mean; the fGn process is distinctly
        // burstier even after the floor at zero eats part of the spread.
        assert!(var > 1.5 * mean, "variance {var} vs mean {mean}");
    }

    /// Regression: the integerisation used to run on the *zero-clipped*
    /// `generate_counts` series, inflating the realised mean of bursty
    /// LRD workloads above `rate` by the full clipping bias
    /// (`E[(-X)+] ≈ 0.21` sessions/slot at burstiness 1.0, ≈ 0.5 at
    /// 1.5). The sample mean of an LRD series fluctuates too much for a
    /// single-seed `mean ≈ rate` check to be meaningful (std ≈ 0.4 at
    /// 20 k slots, H = 0.85), so the bias is measured against each
    /// realisation's *own* raw-series mean — an unbiased estimate of
    /// `rate` — and averaged over fixed seeds. The thresholds sit
    /// between the post-fix bias (bounded forgiveness from the
    /// `[-1, 1]` residual clamp) and the pre-fix clipping bias, so the
    /// pre-fix code fails every assertion.
    #[test]
    fn selfsimilar_realised_mean_tracks_rate_when_bursty() {
        use dms_analysis::FractionalGaussianNoise;
        let rate = 2.5;
        let slots = 20_000;
        let seeds = [5u64, 7, 11, 13, 17];
        // (burstiness, max mean integerisation bias in sessions/slot).
        // Pre-fix biases on the same realisations: 0.174 and 0.489.
        for (burstiness, tolerance) in [(1.0, 0.14), (1.5, 0.43)] {
            let ss = ArrivalProcess::SelfSimilar {
                rate,
                hurst: 0.85,
                burstiness,
            };
            let mut bias_sum = 0.0;
            for &seed in &seeds {
                let counts = ss
                    .counts(slots, &mut SimRng::new(seed))
                    .expect("valid process");
                let mean = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / counts.len() as f64;
                // The exact realisation `counts` integerised: the rng
                // draws are identical, so this is not a re-sample.
                let raw_mean = FractionalGaussianNoise::new(0.85)
                    .expect("valid hurst")
                    .generate(slots, &mut SimRng::new(seed))
                    .into_iter()
                    .map(|z| rate + burstiness * rate * z)
                    .sum::<f64>()
                    / slots as f64;
                bias_sum += mean - raw_mean;
            }
            let bias = bias_sum / seeds.len() as f64;
            assert!(
                bias.abs() < tolerance,
                "burstiness {burstiness}: integerisation bias {bias} vs tolerance {tolerance}"
            );
        }
    }

    fn flash_crowd(rate: f64) -> ArrivalProcess {
        ArrivalProcess::FlashCrowd {
            rate,
            hurst: 0.8,
            burstiness: 0.6,
            diurnal_depth: 0.4,
            diurnal_period_slots: 600,
            diurnal_phase_slots: 0,
            spike_factor: 2.5,
            spike_period_slots: 300,
            spike_slots: 30,
        }
    }

    #[test]
    fn flash_crowd_mean_tracks_envelope_weighted_rate() {
        let p = flash_crowd(2.0);
        // Spike duty cycle 30/300 at 2.5x → envelope mean 1.15.
        assert!((p.rate() - 2.3).abs() < 1e-12, "rate {}", p.rate());
        let counts = p.counts(30_000, &mut SimRng::new(9)).expect("valid");
        let mean = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / counts.len() as f64;
        assert!((mean - p.rate()).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn flash_crowd_spike_slots_are_hotter_than_quiet_slots() {
        let p = flash_crowd(2.0);
        let counts = p.counts(30_000, &mut SimRng::new(9)).expect("valid");
        let (mut spike_sum, mut spike_n, mut quiet_sum, mut quiet_n) = (0.0, 0u64, 0.0, 0u64);
        for (t, &c) in counts.iter().enumerate() {
            if (t as u64) % 300 < 30 {
                spike_sum += f64::from(c);
                spike_n += 1;
            } else {
                quiet_sum += f64::from(c);
                quiet_n += 1;
            }
        }
        let spike_mean = spike_sum / spike_n as f64;
        let quiet_mean = quiet_sum / quiet_n as f64;
        assert!(
            spike_mean > 1.8 * quiet_mean,
            "spike {spike_mean} vs quiet {quiet_mean}"
        );
    }

    #[test]
    fn flash_crowd_phase_shift_changes_counts_not_mass() {
        let base = flash_crowd(2.0);
        let ArrivalProcess::FlashCrowd {
            rate,
            hurst,
            burstiness,
            diurnal_depth,
            diurnal_period_slots,
            spike_factor,
            spike_period_slots,
            spike_slots,
            ..
        } = base
        else {
            unreachable!()
        };
        let shifted = ArrivalProcess::FlashCrowd {
            rate,
            hurst,
            burstiness,
            diurnal_depth,
            diurnal_period_slots,
            diurnal_phase_slots: 150,
            spike_factor,
            spike_period_slots,
            spike_slots,
        };
        let a = base.counts(1200, &mut SimRng::new(3)).expect("valid");
        let b = shifted.counts(1200, &mut SimRng::new(3)).expect("valid");
        assert_ne!(a, b, "phase shift must move load in time");
        let sum_a: u64 = a.iter().map(|&c| u64::from(c)).sum();
        let sum_b: u64 = b.iter().map(|&c| u64::from(c)).sum();
        let diff = sum_a.abs_diff(sum_b) as f64;
        assert!(
            diff / (sum_a as f64) < 0.05,
            "phase shift should preserve total mass: {sum_a} vs {sum_b}"
        );
    }

    #[test]
    fn flash_crowd_rejects_bad_parameters() {
        let mut rng = SimRng::new(1);
        let ok = flash_crowd(2.0);
        assert!(ok.counts(10, &mut rng).is_ok());
        let with = |f: &dyn Fn(&mut ArrivalProcess)| {
            let mut p = ok;
            f(&mut p);
            p
        };
        let cases: Vec<ArrivalProcess> = vec![
            with(&|p| {
                if let ArrivalProcess::FlashCrowd { diurnal_depth, .. } = p {
                    *diurnal_depth = 1.0;
                }
            }),
            with(&|p| {
                if let ArrivalProcess::FlashCrowd {
                    diurnal_period_slots,
                    ..
                } = p
                {
                    *diurnal_period_slots = 0;
                }
            }),
            with(&|p| {
                if let ArrivalProcess::FlashCrowd { spike_factor, .. } = p {
                    *spike_factor = 0.5;
                }
            }),
            with(&|p| {
                if let ArrivalProcess::FlashCrowd {
                    spike_period_slots,
                    spike_slots,
                    ..
                } = p
                {
                    *spike_period_slots = 10;
                    *spike_slots = 11;
                }
            }),
        ];
        for bad in cases {
            assert!(bad.counts(10, &mut rng).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn arrival_process_rejects_bad_parameters() {
        let mut rng = SimRng::new(1);
        assert!(ArrivalProcess::Poisson { rate: 0.0 }
            .counts(10, &mut rng)
            .is_err());
        assert!(ArrivalProcess::SelfSimilar {
            rate: 1.0,
            hurst: 1.5,
            burstiness: 1.0
        }
        .counts(10, &mut rng)
        .is_err());
        assert!(ArrivalProcess::SelfSimilar {
            rate: 1.0,
            hurst: 0.8,
            burstiness: 0.0
        }
        .counts(10, &mut rng)
        .is_err());
    }

    #[test]
    fn workload_is_deterministic_and_ordered() {
        let t = template();
        let p = ArrivalProcess::Poisson { rate: 1.0 };
        let a = Workload::generate(p, t, 500, 42).expect("valid");
        let b = Workload::generate(p, t, 500, 42).expect("valid");
        assert_eq!(a, b);
        assert!(!a.sessions.is_empty());
        for w in a.sessions.windows(2) {
            assert!(w[0].arrival_slot <= w[1].arrival_slot);
            assert!(w[0].id < w[1].id);
        }
        assert!(a.sessions.iter().all(|s| s.duration_slots >= 1));
        let c = Workload::generate(p, t, 500, 43).expect("valid");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn rate_for_load_round_trips() {
        let t = template();
        let capacity = 50 * t.full_bits();
        let rate = rate_for_load(1.2, &t, capacity);
        let w = Workload::generate(ArrivalProcess::Poisson { rate }, t, 100, 1).expect("valid");
        let load = w.offered_load(rate, capacity);
        assert!((load - 1.2).abs() < 1e-9, "load {load}");
    }
}
