//! Regression guard for departure cost: k departures landing in one
//! slot must cost O(k + n), not O(k·n).
//!
//! The seed engine freed sessions with `Vec::retain`, an O(n) scan per
//! departure — 10^5 sessions leaving in the same slot was ~10^10 probe
//! operations, minutes of wall time even in release builds. The arena
//! marks each departure dead in O(1) and sweeps `order` once per slot,
//! so the same burst is a single linear pass. The wall-time bound here
//! is deliberately generous (debug builds, shared CI runners); the old
//! quadratic path misses it by orders of magnitude.

use std::time::{Duration, Instant};

use dms_serve::{
    AdmissionPolicy, CapacityModel, ServerConfig, ServerSim, SessionRequest, SessionTemplate,
    Workload,
};

#[test]
fn mass_departure_slot_is_linear() {
    const N: u64 = 100_000;
    let template = SessionTemplate::streaming_default().expect("preset valid");
    // Every session arrives at slot 0 and departs at slot 1: the
    // worst case the retain-based engine had, k = n in one slot.
    let sessions: Vec<SessionRequest> = (0..N)
        .map(|id| SessionRequest {
            id,
            arrival_slot: 0,
            duration_slots: 1,
        })
        .collect();
    let workload = Workload {
        sessions,
        template,
        slots: 4,
    };
    let server = ServerSim::new(ServerConfig {
        capacity: CapacityModel {
            link_bits_per_slot: 10 * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        },
        policy: AdmissionPolicy::AdmitAll,
        degrade: None,
        buffer_slots: 4,
        miss_slots: 2,
    })
    .expect("valid config");

    let start = Instant::now();
    let report = server.run(&workload).expect("runs");
    let elapsed = start.elapsed();

    assert_eq!(report.admitted, N, "admit-all must admit everyone");
    assert_eq!(report.offered, N);
    assert!(
        elapsed < Duration::from_secs(30),
        "mass-departure slot took {elapsed:?}; the engine has gone super-linear"
    );
}
