//! Property-based tests for the streaming server's safety invariants.

use dms_serve::{
    rate_for_load, AdmissionController, AdmissionPolicy, ArrivalProcess, CapacityModel,
    DegradeConfig, RecoveryConfig, ReferenceServerSim, ServeMetricsSink, ServerConfig, ServerSim,
    SessionTemplate, Workload,
};
use dms_sim::{FaultPlan, FaultSpec};
use proptest::prelude::*;

/// Float slack for occupancy comparisons. The predictor computes
/// occupancy from exact integer bit counts through a handful of f64
/// multiplies and divides, and the report averages at most a few
/// hundred such per-slot values — so legitimate rounding drift is a
/// few hundred ULPs at the bound's magnitude, not an absolute 1e-9.
/// 512 ULPs (~1e-11 for bounds near 100) keeps the assertions tight
/// enough to catch any real off-by-a-frame error.
fn occupancy_slack(bound: f64) -> f64 {
    512.0 * f64::EPSILON * bound.abs().max(1.0)
}

/// Strategy: one valid fault spec anywhere inside a 120-slot horizon.
fn fault_spec() -> impl Strategy<Value = FaultSpec> {
    prop_oneof![
        (0u64..110, 1u64..40, 0.0f64..=1.0).prop_map(|(start_slot, duration_slots, factor)| {
            FaultSpec::LinkDegradation {
                start_slot,
                duration_slots,
                factor,
            }
        }),
        (0u64..110, 1u64..10).prop_map(|(start_slot, duration_slots)| FaultSpec::SlotStalls {
            start_slot,
            duration_slots,
        }),
        (1u64..110, 0.05f64..=1.0)
            .prop_map(|(slot, fraction)| FaultSpec::CrashBurst { slot, fraction }),
        (
            0u64..110,
            1u64..40,
            0.01f64..=1.0,
            0.01f64..=1.0,
            0.0f64..=0.2,
            0.1f64..=1.0,
        )
            .prop_map(
                |(
                    start_slot,
                    duration_slots,
                    p_good_to_bad,
                    p_bad_to_good,
                    loss_good,
                    loss_bad,
                )| {
                    FaultSpec::CorruptionBurst {
                        start_slot,
                        duration_slots,
                        p_good_to_bad,
                        p_bad_to_good,
                        loss_good,
                        loss_bad,
                    }
                }
            ),
    ]
}

/// Strategy: a valid capacity model with a bound strictly inside the
/// system size.
fn capacity_model() -> impl Strategy<Value = CapacityModel> {
    (1_000u64..1_000_000, 8u32..128, 0.05f64..0.9).prop_map(|(link, k, frac)| CapacityModel {
        link_bits_per_slot: link,
        queue_frames: k,
        occupancy_bound: frac * f64::from(k),
    })
}

proptest! {
    /// Safety: after any sequence of admissions, the predicted
    /// occupancy of the admitted set never exceeds the configured
    /// bound — the controller cannot be talked past its own model.
    #[test]
    fn admitted_set_never_exceeds_predicted_bound(
        model in capacity_model(),
        frame_bits in 100u64..50_000,
        demands in proptest::collection::vec(1u64..200_000, 1..64),
    ) {
        let mut ctl = AdmissionController::new(model, AdmissionPolicy::QueuePredictor, frame_bits)
            .expect("valid model");
        let mut admitted_bits = 0u64;
        for d in demands {
            if ctl.decide(admitted_bits, d) {
                admitted_bits += d;
                let occ = ctl.predicted_occupancy(admitted_bits);
                // Re-deriving the decision's own prediction: exact up
                // to rounding, so only ULP-scale slack is admissible.
                prop_assert!(
                    occ <= model.occupancy_bound + occupancy_slack(model.occupancy_bound),
                    "admitted set predicts occupancy {occ} > bound {}",
                    model.occupancy_bound
                );
            }
        }
    }

    /// Monotonicity: if a candidate is rejected on top of some active
    /// demand, it is also rejected on top of any larger demand (and
    /// dually, an admit at high load implies an admit at low load).
    #[test]
    fn rejection_is_monotone_in_offered_load(
        model in capacity_model(),
        frame_bits in 100u64..50_000,
        lo in 0u64..2_000_000,
        extra in 0u64..2_000_000,
        candidate in 1u64..100_000,
    ) {
        let mut ctl = AdmissionController::new(model, AdmissionPolicy::QueuePredictor, frame_bits)
            .expect("valid model");
        let hi = lo + extra;
        let admit_lo = ctl.decide(lo, candidate);
        let admit_hi = ctl.decide(hi, candidate);
        prop_assert!(
            admit_lo || !admit_hi,
            "rejected at active demand {lo} but admitted at {hi}"
        );
        // The underlying predictor is monotone too, up to rounding of
        // the larger prediction.
        let hi_occ = ctl.predicted_occupancy(hi + candidate);
        prop_assert!(ctl.predicted_occupancy(lo + candidate) <= hi_occ + occupancy_slack(hi_occ));
    }

    /// End to end: a controlled server run admits only while its own
    /// predictor stays under the bound, whatever the load and seed.
    #[test]
    fn server_runs_respect_the_admission_bound(
        load in 0.2f64..2.0,
        seed in 0u64..1_000,
    ) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let capacity = CapacityModel {
            link_bits_per_slot: 10 * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        };
        let rate = rate_for_load(load, &template, capacity.link_bits_per_slot);
        let workload = Workload::generate(ArrivalProcess::Poisson { rate }, template, 120, seed)
            .expect("valid workload");
        let server = ServerSim::new(ServerConfig {
            capacity,
            policy: AdmissionPolicy::QueuePredictor,
            degrade: Some(DegradeConfig::default()),
            buffer_slots: 4,
            miss_slots: 2,
        })
        .expect("valid config");
        let report = server.run(&workload).expect("runs");
        prop_assert_eq!(report.admitted + report.rejected, report.offered);
        // Every admitted state satisfied the bound at admission time and
        // departures only lower the demand, so the slot-mean prediction
        // must sit under the bound too (slack covers the 120-term mean's
        // accumulation rounding).
        prop_assert!(
            report.predicted_occupancy <= capacity.occupancy_bound + occupancy_slack(capacity.occupancy_bound),
            "mean predicted occupancy {} exceeds bound {}",
            report.predicted_occupancy,
            capacity.occupancy_bound
        );
    }

    /// Bookkeeping invariants across random loads, policies and seeds:
    /// every offered session is either admitted or rejected, and the
    /// bits the report accounts for leaving the playout buffers
    /// (delivered + dropped at the door + purged by deadline skips)
    /// never exceed the bits the workload enqueued into them.
    #[test]
    fn server_bit_accounting_is_conservative(
        load in 0.2f64..2.0,
        policy_admit_all in proptest::bool::ANY,
        degrade_on in proptest::bool::ANY,
        selfsim in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let capacity = CapacityModel {
            link_bits_per_slot: 10 * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        };
        let rate = rate_for_load(load, &template, capacity.link_bits_per_slot);
        let process = if selfsim {
            ArrivalProcess::SelfSimilar { rate, hurst: 0.85, burstiness: 1.0 }
        } else {
            ArrivalProcess::Poisson { rate }
        };
        let workload = Workload::generate(process, template, 120, seed).expect("valid workload");
        let server = ServerSim::new(ServerConfig {
            capacity,
            policy: if policy_admit_all {
                AdmissionPolicy::AdmitAll
            } else {
                AdmissionPolicy::QueuePredictor
            },
            degrade: degrade_on.then(DegradeConfig::default),
            buffer_slots: 4,
            miss_slots: 2,
        })
        .expect("valid config");
        let mut sink = ServeMetricsSink::with_capacity(120);
        let report = server.run_instrumented(&workload, Some(&mut sink)).expect("runs");
        prop_assert_eq!(report.admitted + report.rejected, report.offered);
        prop_assert!(
            report.delivered_bits + report.buffer_dropped_bits + report.purged_bits
                <= sink.enqueued_bits(),
            "accounted bits {} exceed enqueued bits {}",
            report.delivered_bits + report.buffer_dropped_bits + report.purged_bits,
            sink.enqueued_bits()
        );
        // The sink's per-slot series are consistent with the report.
        prop_assert_eq!(sink.slots() as u64, report.slots);
        prop_assert_eq!(sink.admitted().iter().sum::<u64>(), report.admitted);
        prop_assert_eq!(sink.active().iter().sum::<u64>(), report.session_slots);
        prop_assert_eq!(
            sink.deadline_misses().iter().sum::<u64>(),
            report.deadline_misses
        );
    }

    /// Fault injection never breaks the conservation ledgers: whatever
    /// faults strike and whichever policies run, every offered session
    /// is admitted or rejected exactly once (retries re-enter through
    /// the non-recording predicate), and the bits the report accounts
    /// for leaving the playout buffers — delivered, dropped at the
    /// door, purged by deadline skips or destroyed by faults — never
    /// exceed the bits enqueued into them.
    #[test]
    fn faulted_runs_conserve_bits(
        load in 0.2f64..1.5,
        policy_admit_all in proptest::bool::ANY,
        degrade_on in proptest::bool::ANY,
        recovery_on in proptest::bool::ANY,
        specs in proptest::collection::vec(fault_spec(), 0..6),
        seed in 0u64..500,
        plan_seed in 0u64..500,
    ) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let capacity = CapacityModel {
            link_bits_per_slot: 10 * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        };
        let rate = rate_for_load(load, &template, capacity.link_bits_per_slot);
        let workload = Workload::generate(ArrivalProcess::Poisson { rate }, template, 120, seed)
            .expect("valid workload");
        let plan = FaultPlan::compile(&specs, 120, plan_seed).expect("strategy emits valid specs");
        let server = ServerSim::new(ServerConfig {
            capacity,
            policy: if policy_admit_all {
                AdmissionPolicy::AdmitAll
            } else {
                AdmissionPolicy::QueuePredictor
            },
            degrade: degrade_on.then(DegradeConfig::default),
            buffer_slots: 4,
            miss_slots: 2,
        })
        .expect("valid config");
        let recovery = recovery_on.then(RecoveryConfig::default);
        let mut sink = ServeMetricsSink::with_capacity(120);
        let report = server
            .run_faulted(&workload, &plan, recovery.as_ref(), Some(&mut sink))
            .expect("runs");
        prop_assert_eq!(report.base.admitted + report.base.rejected, report.base.offered);
        let accounted = report.base.delivered_bits
            + report.base.buffer_dropped_bits
            + report.base.purged_bits
            + report.lost_to_fault_bits;
        prop_assert!(
            accounted <= sink.enqueued_bits(),
            "accounted bits {} exceed enqueued bits {}",
            accounted,
            sink.enqueued_bits()
        );
        // Recovery books stay consistent with the crash/timeout totals,
        // and without a recovery policy nothing retries.
        prop_assert!(report.readmitted + report.retry_rejected <= report.retries);
        if recovery.is_none() {
            prop_assert_eq!(report.retries, 0);
            prop_assert_eq!(report.timed_out, 0);
        }
    }

    /// Recovery restores pre-fault service within the backoff horizon:
    /// after a crash burst, an admit-all server with retry enabled has
    /// every victim with playout time left back on the air by
    /// `crash + backoff_horizon`, so from that slot on the active
    /// population is never below the fault-free run's (timeouts, which
    /// park a session for one backoff gap, are the only slack).
    #[test]
    fn recovery_restores_service_within_the_backoff_horizon(
        load in 0.2f64..0.9,
        fraction in 0.1f64..=1.0,
        crash_slot in 20u64..70,
        seed in 0u64..500,
    ) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let capacity = CapacityModel {
            link_bits_per_slot: 10 * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        };
        let rate = rate_for_load(load, &template, capacity.link_bits_per_slot);
        let workload = Workload::generate(ArrivalProcess::Poisson { rate }, template, 120, seed)
            .expect("valid workload");
        let server = ServerSim::new(ServerConfig {
            capacity,
            policy: AdmissionPolicy::AdmitAll,
            degrade: Some(DegradeConfig::default()),
            buffer_slots: 4,
            miss_slots: 2,
        })
        .expect("valid config");
        let recovery = RecoveryConfig::default();
        let plan = FaultPlan::compile(
            &[FaultSpec::CrashBurst {
                slot: crash_slot,
                fraction,
            }],
            120,
            1,
        )
        .expect("valid spec");

        let mut nominal_sink = ServeMetricsSink::with_capacity(120);
        server
            .run_instrumented(&workload, Some(&mut nominal_sink))
            .expect("nominal run");
        let mut faulted_sink = ServeMetricsSink::with_capacity(120);
        let report = server
            .run_faulted(&workload, &plan, Some(&recovery), Some(&mut faulted_sink))
            .expect("faulted run");

        // Admit-all readmits every retry on the first attempt.
        prop_assert_eq!(report.readmitted, report.retries);
        prop_assert_eq!(report.retry_rejected, 0);
        let recovered_from = (crash_slot + recovery.backoff_horizon_slots()) as usize;
        for slot in recovered_from..120 {
            prop_assert!(
                faulted_sink.active()[slot] + report.timed_out >= nominal_sink.active()[slot],
                "slot {}: faulted active {} (+{} timed out) below nominal {}",
                slot,
                faulted_sink.active()[slot],
                report.timed_out,
                nominal_sink.active()[slot]
            );
        }
    }

    /// Differential oracle for the arena-backed engine: on arbitrary
    /// loads, policies and arrival processes, the timing-wheel + arena
    /// `ServerSim` produces a report *byte-identical* (every counter and
    /// every float, compared exactly) to [`ReferenceServerSim`], the
    /// retained seed implementation (binary heap + `Vec` active set +
    /// per-offer predictor calls).
    #[test]
    fn arena_engine_matches_reference_nominal(
        load in 0.2f64..2.0,
        policy_admit_all in proptest::bool::ANY,
        degrade_on in proptest::bool::ANY,
        selfsim in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let capacity = CapacityModel {
            link_bits_per_slot: 10 * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        };
        let rate = rate_for_load(load, &template, capacity.link_bits_per_slot);
        let process = if selfsim {
            ArrivalProcess::SelfSimilar { rate, hurst: 0.85, burstiness: 1.0 }
        } else {
            ArrivalProcess::Poisson { rate }
        };
        let workload = Workload::generate(process, template, 120, seed).expect("valid workload");
        let config = ServerConfig {
            capacity,
            policy: if policy_admit_all {
                AdmissionPolicy::AdmitAll
            } else {
                AdmissionPolicy::QueuePredictor
            },
            degrade: degrade_on.then(DegradeConfig::default),
            buffer_slots: 4,
            miss_slots: 2,
        };
        let fast = ServerSim::new(config).expect("valid config").run(&workload).expect("runs");
        let oracle = ReferenceServerSim::new(config)
            .expect("valid config")
            .run(&workload)
            .expect("runs");
        prop_assert_eq!(fast, oracle);
    }

    /// The same oracle under fault injection and recovery: crash
    /// victim selection, retry scheduling, timeout sweeps and the
    /// per-slot metrics series must all match the seed implementation
    /// exactly, for any compiled fault plan.
    #[test]
    fn arena_engine_matches_reference_faulted(
        load in 0.2f64..1.5,
        policy_admit_all in proptest::bool::ANY,
        degrade_on in proptest::bool::ANY,
        recovery_on in proptest::bool::ANY,
        specs in proptest::collection::vec(fault_spec(), 0..6),
        seed in 0u64..500,
        plan_seed in 0u64..500,
    ) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let capacity = CapacityModel {
            link_bits_per_slot: 10 * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        };
        let rate = rate_for_load(load, &template, capacity.link_bits_per_slot);
        let workload = Workload::generate(ArrivalProcess::Poisson { rate }, template, 120, seed)
            .expect("valid workload");
        let plan = FaultPlan::compile(&specs, 120, plan_seed).expect("strategy emits valid specs");
        let config = ServerConfig {
            capacity,
            policy: if policy_admit_all {
                AdmissionPolicy::AdmitAll
            } else {
                AdmissionPolicy::QueuePredictor
            },
            degrade: degrade_on.then(DegradeConfig::default),
            buffer_slots: 4,
            miss_slots: 2,
        };
        let recovery = recovery_on.then(RecoveryConfig::default);
        let mut fast_sink = ServeMetricsSink::with_capacity(120);
        let fast = ServerSim::new(config)
            .expect("valid config")
            .run_faulted(&workload, &plan, recovery.as_ref(), Some(&mut fast_sink))
            .expect("runs");
        let mut oracle_sink = ServeMetricsSink::with_capacity(120);
        let oracle = ReferenceServerSim::new(config)
            .expect("valid config")
            .run_faulted(&workload, &plan, recovery.as_ref(), Some(&mut oracle_sink))
            .expect("runs");
        prop_assert_eq!(fast, oracle);
        prop_assert_eq!(fast_sink.admitted(), oracle_sink.admitted());
        prop_assert_eq!(fast_sink.active(), oracle_sink.active());
        prop_assert_eq!(fast_sink.deadline_misses(), oracle_sink.deadline_misses());
        prop_assert_eq!(fast_sink.enqueued_bits(), oracle_sink.enqueued_bits());
    }
}
