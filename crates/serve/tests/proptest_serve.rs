//! Property-based tests for the streaming server's safety invariants.

use dms_serve::{
    rate_for_load, AdmissionController, AdmissionPolicy, ArrivalProcess, CapacityModel,
    DegradeConfig, ServeMetricsSink, ServerConfig, ServerSim, SessionTemplate, Workload,
};
use proptest::prelude::*;

/// Strategy: a valid capacity model with a bound strictly inside the
/// system size.
fn capacity_model() -> impl Strategy<Value = CapacityModel> {
    (1_000u64..1_000_000, 8u32..128, 0.05f64..0.9).prop_map(|(link, k, frac)| CapacityModel {
        link_bits_per_slot: link,
        queue_frames: k,
        occupancy_bound: frac * f64::from(k),
    })
}

proptest! {
    /// Safety: after any sequence of admissions, the predicted
    /// occupancy of the admitted set never exceeds the configured
    /// bound — the controller cannot be talked past its own model.
    #[test]
    fn admitted_set_never_exceeds_predicted_bound(
        model in capacity_model(),
        frame_bits in 100u64..50_000,
        demands in proptest::collection::vec(1u64..200_000, 1..64),
    ) {
        let mut ctl = AdmissionController::new(model, AdmissionPolicy::QueuePredictor, frame_bits)
            .expect("valid model");
        let mut admitted_bits = 0u64;
        for d in demands {
            if ctl.decide(admitted_bits, d) {
                admitted_bits += d;
                let occ = ctl.predicted_occupancy(admitted_bits);
                prop_assert!(
                    occ <= model.occupancy_bound + 1e-9,
                    "admitted set predicts occupancy {occ} > bound {}",
                    model.occupancy_bound
                );
            }
        }
    }

    /// Monotonicity: if a candidate is rejected on top of some active
    /// demand, it is also rejected on top of any larger demand (and
    /// dually, an admit at high load implies an admit at low load).
    #[test]
    fn rejection_is_monotone_in_offered_load(
        model in capacity_model(),
        frame_bits in 100u64..50_000,
        lo in 0u64..2_000_000,
        extra in 0u64..2_000_000,
        candidate in 1u64..100_000,
    ) {
        let mut ctl = AdmissionController::new(model, AdmissionPolicy::QueuePredictor, frame_bits)
            .expect("valid model");
        let hi = lo + extra;
        let admit_lo = ctl.decide(lo, candidate);
        let admit_hi = ctl.decide(hi, candidate);
        prop_assert!(
            admit_lo || !admit_hi,
            "rejected at active demand {lo} but admitted at {hi}"
        );
        // The underlying predictor is monotone too.
        prop_assert!(
            ctl.predicted_occupancy(lo + candidate) <= ctl.predicted_occupancy(hi + candidate) + 1e-9
        );
    }

    /// End to end: a controlled server run admits only while its own
    /// predictor stays under the bound, whatever the load and seed.
    #[test]
    fn server_runs_respect_the_admission_bound(
        load in 0.2f64..2.0,
        seed in 0u64..1_000,
    ) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let capacity = CapacityModel {
            link_bits_per_slot: 10 * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        };
        let rate = rate_for_load(load, &template, capacity.link_bits_per_slot);
        let workload = Workload::generate(ArrivalProcess::Poisson { rate }, template, 120, seed)
            .expect("valid workload");
        let server = ServerSim::new(ServerConfig {
            capacity,
            policy: AdmissionPolicy::QueuePredictor,
            degrade: Some(DegradeConfig::default()),
            buffer_slots: 4,
            miss_slots: 2,
        })
        .expect("valid config");
        let report = server.run(&workload).expect("runs");
        prop_assert_eq!(report.admitted + report.rejected, report.offered);
        // Every admitted state satisfied the bound at admission time and
        // departures only lower the demand, so the slot-mean prediction
        // must sit under the bound too.
        prop_assert!(
            report.predicted_occupancy <= capacity.occupancy_bound + 1e-9,
            "mean predicted occupancy {} exceeds bound {}",
            report.predicted_occupancy,
            capacity.occupancy_bound
        );
    }

    /// Bookkeeping invariants across random loads, policies and seeds:
    /// every offered session is either admitted or rejected, and the
    /// bits the report accounts for leaving the playout buffers
    /// (delivered + dropped at the door + purged by deadline skips)
    /// never exceed the bits the workload enqueued into them.
    #[test]
    fn server_bit_accounting_is_conservative(
        load in 0.2f64..2.0,
        policy_admit_all in proptest::bool::ANY,
        degrade_on in proptest::bool::ANY,
        selfsim in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let capacity = CapacityModel {
            link_bits_per_slot: 10 * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        };
        let rate = rate_for_load(load, &template, capacity.link_bits_per_slot);
        let process = if selfsim {
            ArrivalProcess::SelfSimilar { rate, hurst: 0.85, burstiness: 1.0 }
        } else {
            ArrivalProcess::Poisson { rate }
        };
        let workload = Workload::generate(process, template, 120, seed).expect("valid workload");
        let server = ServerSim::new(ServerConfig {
            capacity,
            policy: if policy_admit_all {
                AdmissionPolicy::AdmitAll
            } else {
                AdmissionPolicy::QueuePredictor
            },
            degrade: degrade_on.then(DegradeConfig::default),
            buffer_slots: 4,
            miss_slots: 2,
        })
        .expect("valid config");
        let mut sink = ServeMetricsSink::with_capacity(120);
        let report = server.run_instrumented(&workload, Some(&mut sink)).expect("runs");
        prop_assert_eq!(report.admitted + report.rejected, report.offered);
        prop_assert!(
            report.delivered_bits + report.buffer_dropped_bits + report.purged_bits
                <= sink.enqueued_bits(),
            "accounted bits {} exceed enqueued bits {}",
            report.delivered_bits + report.buffer_dropped_bits + report.purged_bits,
            sink.enqueued_bits()
        );
        // The sink's per-slot series are consistent with the report.
        prop_assert_eq!(sink.slots() as u64, report.slots);
        prop_assert_eq!(sink.admitted().iter().sum::<u64>(), report.admitted);
        prop_assert_eq!(sink.active().iter().sum::<u64>(), report.session_slots);
        prop_assert_eq!(
            sink.deadline_misses().iter().sum::<u64>(),
            report.deadline_misses
        );
    }
}
