//! Image source model with a rate–distortion characteristic.
//!
//! Substrate for the joint source-channel coding experiment (E7, \[27\]):
//! the optimiser there trades *quantiser rate* (bits per pixel) against
//! *FEC redundancy* and *transmit power*. The image side of that
//! trade-off is the classical high-rate quantisation law
//! `D(R) = σ² · 2^(−2R)`: each extra bit per pixel quarters the mean
//! squared error.

use serde::{Deserialize, Serialize};

use crate::error::MediaError;

/// A quantiser operating point: bits per pixel.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct QuantizerChoice {
    /// Bits spent per pixel (source rate `R`).
    pub bits_per_pixel: f64,
}

impl QuantizerChoice {
    /// Creates a choice.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::InvalidParameter`] for a non-positive or
    /// non-finite rate.
    pub fn new(bits_per_pixel: f64) -> Result<Self, MediaError> {
        if !(bits_per_pixel.is_finite() && bits_per_pixel > 0.0) {
            return Err(MediaError::InvalidParameter("bits_per_pixel"));
        }
        Ok(QuantizerChoice { bits_per_pixel })
    }
}

/// A greyscale image source characterised by its dimensions and pixel
/// variance (activity).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dms_media::MediaError> {
/// use dms_media::image::{ImageModel, QuantizerChoice};
///
/// let img = ImageModel::new(256, 256, 2500.0)?;
/// let q = QuantizerChoice::new(2.0)?;
/// assert_eq!(img.encoded_bits(q), 256 * 256 * 2);
/// assert!(img.psnr_db(q) > 20.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImageModel {
    width: u32,
    height: u32,
    variance: f64,
}

impl ImageModel {
    /// Creates an image model.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::InvalidParameter`] for zero dimensions or a
    /// non-positive variance.
    pub fn new(width: u32, height: u32, variance: f64) -> Result<Self, MediaError> {
        if width == 0 || height == 0 {
            return Err(MediaError::InvalidParameter("dimensions"));
        }
        if !(variance.is_finite() && variance > 0.0) {
            return Err(MediaError::InvalidParameter("variance"));
        }
        Ok(ImageModel {
            width,
            height,
            variance,
        })
    }

    /// Pixel count.
    #[must_use]
    pub fn pixels(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Pixel variance σ².
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Total encoded size for a quantiser choice, in bits.
    #[must_use]
    pub fn encoded_bits(&self, q: QuantizerChoice) -> u64 {
        (self.pixels() as f64 * q.bits_per_pixel).ceil() as u64
    }

    /// Quantisation mean-squared error at rate `q`:
    /// `D(R) = σ² · 2^(−2R)`.
    #[must_use]
    pub fn quantization_mse(&self, q: QuantizerChoice) -> f64 {
        self.variance * 2.0f64.powf(-2.0 * q.bits_per_pixel)
    }

    /// PSNR (dB) against a 255-peak signal for the *quantisation* error
    /// alone (a perfect channel).
    #[must_use]
    pub fn psnr_db(&self, q: QuantizerChoice) -> f64 {
        mse_to_psnr_db(self.quantization_mse(q))
    }

    /// PSNR (dB) when, additionally, a fraction `residual_ber` of the
    /// encoded bits arrive flipped. Each flipped bit corrupts its pixel
    /// with an expected squared error of `σ²` (a bit error destroys the
    /// pixel's information), so the distortions add:
    /// `D = D_q + ber · bpp · σ²` (capped at `σ²`, the error of guessing
    /// the mean).
    #[must_use]
    pub fn psnr_with_errors_db(&self, q: QuantizerChoice, residual_ber: f64) -> f64 {
        let ber = residual_ber.clamp(0.0, 1.0);
        let channel_mse = (ber * q.bits_per_pixel * self.variance).min(self.variance);
        mse_to_psnr_db(self.quantization_mse(q) + channel_mse)
    }
}

/// Converts mean-squared error to PSNR in dB (255-peak).
#[must_use]
pub fn mse_to_psnr_db(mse: f64) -> f64 {
    if mse <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (255.0f64 * 255.0 / mse).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img() -> ImageModel {
        ImageModel::new(128, 128, 2500.0).expect("valid")
    }

    #[test]
    fn validation() {
        assert!(ImageModel::new(0, 10, 1.0).is_err());
        assert!(ImageModel::new(10, 0, 1.0).is_err());
        assert!(ImageModel::new(10, 10, 0.0).is_err());
        assert!(QuantizerChoice::new(0.0).is_err());
        assert!(QuantizerChoice::new(f64::NAN).is_err());
    }

    #[test]
    fn each_extra_bit_quarters_mse() {
        let img = img();
        let d1 = img.quantization_mse(QuantizerChoice::new(1.0).expect("valid"));
        let d2 = img.quantization_mse(QuantizerChoice::new(2.0).expect("valid"));
        assert!((d1 / d2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn psnr_increases_with_rate() {
        let img = img();
        let mut last = 0.0;
        for bpp in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let p = img.psnr_db(QuantizerChoice::new(bpp).expect("valid"));
            assert!(p > last, "PSNR must rise with rate");
            last = p;
        }
    }

    #[test]
    fn each_extra_bit_adds_about_six_db() {
        let img = img();
        let p2 = img.psnr_db(QuantizerChoice::new(2.0).expect("valid"));
        let p3 = img.psnr_db(QuantizerChoice::new(3.0).expect("valid"));
        assert!((p3 - p2 - 6.02).abs() < 0.1, "got {}", p3 - p2);
    }

    #[test]
    fn channel_errors_degrade_psnr() {
        let img = img();
        let q = QuantizerChoice::new(2.0).expect("valid");
        let clean = img.psnr_with_errors_db(q, 0.0);
        let noisy = img.psnr_with_errors_db(q, 1e-3);
        let very_noisy = img.psnr_with_errors_db(q, 1e-1);
        assert!((clean - img.psnr_db(q)).abs() < 1e-12);
        assert!(noisy < clean);
        assert!(very_noisy < noisy);
    }

    #[test]
    fn channel_mse_saturates_at_variance() {
        let img = img();
        let q = QuantizerChoice::new(8.0).expect("valid");
        // Even a catastrophic BER can't make MSE exceed σ² + D_q.
        let floor = img.psnr_with_errors_db(q, 1.0);
        let expected = mse_to_psnr_db(img.quantization_mse(q) + img.variance());
        assert!((floor - expected).abs() < 1e-9);
    }

    #[test]
    fn encoded_bits_scale_with_pixels() {
        let small = ImageModel::new(64, 64, 100.0).expect("valid");
        let big = ImageModel::new(128, 128, 100.0).expect("valid");
        let q = QuantizerChoice::new(1.5).expect("valid");
        assert_eq!(big.encoded_bits(q), 4 * small.encoded_bits(q));
    }

    #[test]
    fn zero_mse_maps_to_infinite_psnr() {
        assert!(mse_to_psnr_db(0.0).is_infinite());
        assert!(mse_to_psnr_db(-1.0).is_infinite());
    }
}
