//! # dms-media — multimedia application models
//!
//! The workloads the paper's methodology is exercised on:
//!
//! * [`trace_gen`] — GOP-structured synthetic video traces (I/P/B frame
//!   sizes with lognormal marginals and a long-range-dependent scene
//!   process), substituting for real MPEG-2/4 bitstreams;
//! * [`stream`] — the generic multimedia stream of **Fig. 1(a)**:
//!   Source → Tx buffer → lossy Channel (two-state error automaton) →
//!   Rx buffer → Sink, simulated on the `dms-sim` kernel;
//! * [`mpeg2`] — the MPEG-2 decoder of **Fig. 1(b)** as a process graph
//!   (receive → VLD → {IDCT, MV} → display through buffers B2–B4) plus a
//!   pipeline simulator that measures the B3/B4 occupancy the paper
//!   highlights;
//! * [`fgs`] — MPEG-4 Fine-Granularity-Scalability layering (base layer
//!   plus bit-plane enhancement) with a PSNR rate–quality model, feeding
//!   the energy-aware streaming experiment (E8);
//! * [`image`] — a quantiser/rate–distortion image-codec model for the
//!   joint source-channel coding experiment (E7);
//! * [`sync`] — inter-stream (lip) synchronisation: skew measurement
//!   and sink-side sync buffering for audio/video pairs (§2.1's
//!   temporal-relationship example).
//!
//! ## Example
//!
//! Generate one second of 30 fps video and inspect its burstiness:
//!
//! ```
//! # fn main() -> Result<(), dms_media::MediaError> {
//! use dms_media::trace_gen::VideoTraceGenerator;
//! use dms_sim::SimRng;
//!
//! let gen = VideoTraceGenerator::cif_mpeg2()?;
//! let frames = gen.generate(30, &mut SimRng::new(7));
//! assert_eq!(frames.len(), 30);
//! let i_frame = frames.iter().map(|f| f.bytes).max().expect("non-empty");
//! let min = frames.iter().map(|f| f.bytes).min().expect("non-empty");
//! assert!(i_frame > min); // I frames dominate B frames
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod fgs;
pub mod image;
pub mod mpeg2;
pub mod stream;
pub mod sync;
pub mod trace_gen;

pub use error::MediaError;
pub use fgs::{FgsEncoder, FgsFrame};
pub use image::{ImageModel, QuantizerChoice};
pub use mpeg2::{DecoderPipelineReport, DecoderPipelineSim, SchedulerPolicy};
pub use stream::{ChannelModel, StreamConfig, StreamReport, StreamSim};
pub use sync::{LipSyncScenario, MediaPath, SyncReport};
pub use trace_gen::{Frame, FrameKind, VideoTraceGenerator};
