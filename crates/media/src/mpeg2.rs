//! The MPEG-2 decoder of Fig. 1(b).
//!
//! The figure shows `receive → VLD → {IDCT, MV} → display` with the VLD
//! feeding its consumers through buffers **B3** and **B4**, packets
//! entering through **B2-Rx**, and a *scheduler* sequencing the
//! concurrent processes on a shared resource: "Mapping ... the simple
//! VLD-IDCT/MV processes onto a platform with a single CPU would imply
//! another process, namely the scheduler" (§2.1).
//!
//! [`DecoderPipelineSim`] is exactly that mapped system: three processes
//! sharing one CPU under a round-robin scheduler, exchanging tokens
//! through finite buffers. Its headline outputs are the average lengths
//! of B3/B4 — the buffer-utilisation measure §2.1 calls "very
//! important" — which experiment F1 cross-checks against the
//! [`dms_analysis::prodcons`] Markov model.

use dms_core::graph::{ProcessGraph, ProcessId};
use dms_core::FiniteQueue;
use dms_sim::{Engine, EventQueue, Model, OnlineStats, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::error::MediaError;

/// Builds the Fig. 1(b) process graph (for mapping experiments).
///
/// Returns the graph plus the ids of `(receive, vld, idct, mv, display)`.
///
/// # Examples
///
/// ```
/// let (graph, [_, vld, ..]) = dms_media::mpeg2::decoder_graph();
/// assert_eq!(graph.process_count(), 5);
/// assert_eq!(graph.successors(vld).count(), 2); // B3 to IDCT, B4 to MV
/// ```
#[must_use]
pub fn decoder_graph() -> (ProcessGraph, [ProcessId; 5]) {
    let mut g = ProcessGraph::new("mpeg2-decoder");
    let receive = g.add_process("receive", 40);
    let vld = g.add_process("VLD", 120);
    let idct = g.add_process("IDCT", 300);
    let mv = g.add_process("MV", 180);
    let display = g.add_process("display", 60);
    // B2: network receive buffer; B3/B4: VLD→IDCT / VLD→MV; join at display.
    g.connect(receive, vld, 32, 188).expect("endpoints valid");
    g.connect(vld, idct, 16, 512).expect("endpoints valid");
    g.connect(vld, mv, 16, 128).expect("endpoints valid");
    g.connect(idct, display, 8, 1024).expect("endpoints valid");
    g.connect(mv, display, 8, 256).expect("endpoints valid");
    (g, [receive, vld, idct, mv, display])
}

/// How the shared CPU arbitrates among the decoder processes — the
/// §2.1 "choosing the appropriate scheduling technique" knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SchedulerPolicy {
    /// Fair rotation among VLD, IDCT and MV.
    #[default]
    RoundRobin,
    /// Drain downstream stages first (IDCT > MV > VLD): keeps B3/B4
    /// short at the cost of B2 pressure.
    DrainFirst,
}

/// Configuration of the decoder-pipeline simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecoderConfig {
    /// Mean ticks between packet arrivals (exponential interarrivals —
    /// network traffic into B2 is bursty).
    pub mean_arrival_interval: f64,
    /// Packets to feed through the pipeline.
    pub packet_count: u64,
    /// CPU ticks one VLD activation takes.
    pub vld_service: u64,
    /// CPU ticks one IDCT activation takes.
    pub idct_service: u64,
    /// CPU ticks one MV activation takes.
    pub mv_service: u64,
    /// Capacity of B2 (Rx), in packets.
    pub b2_capacity: usize,
    /// Capacity of B3 (VLD → IDCT), in tokens.
    pub b3_capacity: usize,
    /// Capacity of B4 (VLD → MV), in tokens.
    pub b4_capacity: usize,
    /// Blocks (macroblock rows) one packet decodes into: each VLD
    /// activation emits this many tokens into B3 and B4.
    pub blocks_per_packet: usize,
    /// CPU arbitration policy.
    pub scheduler: SchedulerPolicy,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            mean_arrival_interval: 700.0,
            packet_count: 10_000,
            vld_service: 120,
            idct_service: 75,
            mv_service: 45,
            b2_capacity: 32,
            b3_capacity: 16,
            b4_capacity: 16,
            blocks_per_packet: 4,
            scheduler: SchedulerPolicy::RoundRobin,
        }
    }
}

impl DecoderConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::InvalidParameter`] for non-positive
    /// intervals, counts, service times or capacities.
    pub fn validate(&self) -> Result<(), MediaError> {
        if !(self.mean_arrival_interval.is_finite() && self.mean_arrival_interval > 0.0) {
            return Err(MediaError::InvalidParameter("mean_arrival_interval"));
        }
        if self.packet_count == 0 {
            return Err(MediaError::InvalidParameter("packet_count"));
        }
        if self.vld_service == 0 || self.idct_service == 0 || self.mv_service == 0 {
            return Err(MediaError::InvalidParameter("service time"));
        }
        if self.b2_capacity == 0 || self.b3_capacity == 0 || self.b4_capacity == 0 {
            return Err(MediaError::InvalidParameter("buffer capacity"));
        }
        if self.blocks_per_packet == 0 {
            return Err(MediaError::InvalidParameter("blocks_per_packet"));
        }
        Ok(())
    }
}

/// Measured outcome of a decoder-pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoderPipelineReport {
    /// Frames fully displayed (both IDCT and MV halves done).
    pub displayed: u64,
    /// Packets dropped at a full B2.
    pub dropped_b2: u64,
    /// Tokens dropped at a full B3.
    pub dropped_b3: u64,
    /// Tokens dropped at a full B4.
    pub dropped_b4: u64,
    /// Time-averaged B2 occupancy.
    pub b2_avg: f64,
    /// Time-averaged B3 occupancy — the §2.1 utilisation measure.
    pub b3_avg: f64,
    /// Time-averaged B4 occupancy.
    pub b4_avg: f64,
    /// Peak B3 occupancy.
    pub b3_peak: f64,
    /// Mean packet latency (arrival → both halves decoded) in ticks.
    pub mean_latency_ticks: f64,
    /// Fraction of time the CPU was busy.
    pub cpu_utilization: f64,
    /// Simulated duration in ticks.
    pub duration_ticks: u64,
}

/// Which decoder process an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Vld,
    Idct,
    Mv,
}

/// A work token flowing through the decoder buffers.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    created: SimTime,
}

/// Events driving the simulation (public because it is the model's
/// [`Model::Event`] type; construct simulations via the `run` helpers).
#[derive(Debug)]
pub enum DecoderEvent {
    Arrival(u64),
    ServiceDone(Stage, Token),
}

/// The mapped single-CPU MPEG-2 decoder pipeline as a DES model.
#[derive(Debug)]
pub struct DecoderPipelineSim {
    config: DecoderConfig,
    rng: SimRng,
    b2: FiniteQueue<Token>,
    b3: FiniteQueue<Token>,
    b4: FiniteQueue<Token>,
    cpu_busy: bool,
    busy_ticks: u64,
    rr_next: usize,
    idct_done: u64,
    mv_done: u64,
    dropped_b2: u64,
    dropped_b3: u64,
    dropped_b4: u64,
    latency: OnlineStats,
}

impl DecoderPipelineSim {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Propagates [`DecoderConfig::validate`] failures.
    pub fn new(config: DecoderConfig, seed: u64) -> Result<Self, MediaError> {
        config.validate()?;
        Ok(DecoderPipelineSim {
            config,
            rng: SimRng::new(seed).substream("mpeg2-arrivals", 0),
            b2: FiniteQueue::new(config.b2_capacity),
            b3: FiniteQueue::new(config.b3_capacity),
            b4: FiniteQueue::new(config.b4_capacity),
            cpu_busy: false,
            busy_ticks: 0,
            rr_next: 0,
            idct_done: 0,
            mv_done: 0,
            dropped_b2: 0,
            dropped_b3: 0,
            dropped_b4: 0,
            latency: OnlineStats::new(),
        })
    }

    /// Runs the pipeline to completion and reports.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn run(config: DecoderConfig, seed: u64) -> Result<DecoderPipelineReport, MediaError> {
        let model = DecoderPipelineSim::new(config, seed)?;
        let mut engine = Engine::new(model);
        engine
            .queue_mut()
            .schedule(SimTime::ZERO, DecoderEvent::Arrival(0));
        engine.run_to_completion();
        let now = engine.now();
        let m = engine.into_model();
        let blocks = config.blocks_per_packet as u64;
        Ok(DecoderPipelineReport {
            displayed: m.idct_done.min(m.mv_done) / blocks,
            dropped_b2: m.dropped_b2,
            dropped_b3: m.dropped_b3,
            dropped_b4: m.dropped_b4,
            b2_avg: m.b2.average_occupancy(now),
            b3_avg: m.b3.average_occupancy(now),
            b4_avg: m.b4.average_occupancy(now),
            b3_peak: m.b3.peak_occupancy(),
            mean_latency_ticks: m.latency.mean(),
            cpu_utilization: if now.ticks() == 0 {
                0.0
            } else {
                m.busy_ticks as f64 / now.ticks() as f64
            },
            duration_ticks: now.ticks(),
        })
    }

    /// The scheduler process of §2.1: pick the next ready stage per the
    /// configured policy and start it.
    fn dispatch(&mut self, now: SimTime, q: &mut EventQueue<DecoderEvent>) {
        if self.cpu_busy {
            return;
        }
        const RR_ORDER: [Stage; 3] = [Stage::Vld, Stage::Idct, Stage::Mv];
        const DRAIN_ORDER: [Stage; 3] = [Stage::Idct, Stage::Mv, Stage::Vld];
        for k in 0..3 {
            let stage = match self.config.scheduler {
                SchedulerPolicy::RoundRobin => RR_ORDER[(self.rr_next + k) % 3],
                SchedulerPolicy::DrainFirst => DRAIN_ORDER[k],
            };
            let token = match stage {
                // Blocking-write semantics (§2.1 finite queues): VLD only
                // fires when B3 and B4 can absorb a whole packet's blocks.
                Stage::Vld => {
                    let room = self.config.blocks_per_packet;
                    if self.b3.capacity() - self.b3.len() >= room
                        && self.b4.capacity() - self.b4.len() >= room
                    {
                        self.b2.pop(now)
                    } else {
                        None
                    }
                }
                Stage::Idct => self.b3.pop(now),
                Stage::Mv => self.b4.pop(now),
            };
            if let Some(token) = token {
                self.rr_next = (self.rr_next + k + 1) % 3;
                let service = match stage {
                    Stage::Vld => self.config.vld_service,
                    Stage::Idct => self.config.idct_service,
                    Stage::Mv => self.config.mv_service,
                };
                self.cpu_busy = true;
                self.busy_ticks += service;
                q.schedule(
                    now + SimTime::from_ticks(service),
                    DecoderEvent::ServiceDone(stage, token),
                );
                return;
            }
        }
    }
}

impl Model for DecoderPipelineSim {
    type Event = DecoderEvent;

    fn handle(&mut self, now: SimTime, event: DecoderEvent, q: &mut EventQueue<DecoderEvent>) {
        match event {
            DecoderEvent::Arrival(i) => {
                if self.b2.push(now, Token { created: now }).is_err() {
                    self.dropped_b2 += 1;
                }
                if i + 1 < self.config.packet_count {
                    let gap = self.rng.exponential(self.config.mean_arrival_interval);
                    q.schedule(
                        now + SimTime::from_secs_f64(gap * 1e-9).max(SimTime::from_ticks(1)),
                        DecoderEvent::Arrival(i + 1),
                    );
                }
                self.dispatch(now, q);
            }
            DecoderEvent::ServiceDone(stage, token) => {
                self.cpu_busy = false;
                match stage {
                    Stage::Vld => {
                        // VLD fans out: each packet yields several blocks of
                        // coefficients (B3, to IDCT) and motion vectors
                        // (B4, to MV).
                        for _ in 0..self.config.blocks_per_packet {
                            if self.b3.push(now, token).is_err() {
                                self.dropped_b3 += 1;
                            }
                            if self.b4.push(now, token).is_err() {
                                self.dropped_b4 += 1;
                            }
                        }
                    }
                    Stage::Idct => {
                        self.idct_done += 1;
                        self.latency
                            .record(now.saturating_since(token.created) as f64);
                    }
                    Stage::Mv => {
                        self.mv_done += 1;
                    }
                }
                self.dispatch(now, q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_matches_figure() {
        let (g, [receive, vld, idct, mv, display]) = decoder_graph();
        assert_eq!(g.channel_count(), 5);
        assert_eq!(g.sources(), vec![receive]);
        assert_eq!(g.sinks(), vec![display]);
        assert_eq!(g.successors(vld).count(), 2);
        assert_eq!(g.predecessors(display).count(), 2);
        assert_eq!(g.predecessors(idct).count(), 1);
        assert_eq!(g.predecessors(mv).count(), 1);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = DecoderConfig::default();
        c.mean_arrival_interval = 0.0;
        assert!(DecoderPipelineSim::run(c, 1).is_err());
        let mut c = DecoderConfig::default();
        c.idct_service = 0;
        assert!(DecoderPipelineSim::run(c, 1).is_err());
        let mut c = DecoderConfig::default();
        c.b3_capacity = 0;
        assert!(DecoderPipelineSim::run(c, 1).is_err());
    }

    #[test]
    fn underloaded_pipeline_displays_everything() {
        let mut c = DecoderConfig::default();
        c.packet_count = 2000;
        // Total service 120 + 4×75 + 4×45 = 600 ticks per packet vs
        // 700-tick mean arrivals: utilisation ≈ 0.86, stable.
        let r = DecoderPipelineSim::run(c, 7).expect("valid");
        assert_eq!(r.displayed, 2000);
        assert_eq!(r.dropped_b2 + r.dropped_b3 + r.dropped_b4, 0);
        assert!(r.cpu_utilization > 0.5 && r.cpu_utilization < 1.0);
    }

    #[test]
    fn overloaded_pipeline_drops_at_b2() {
        let mut c = DecoderConfig::default();
        c.mean_arrival_interval = 300.0; // offered load ≈ 2×
        c.packet_count = 5000;
        let r = DecoderPipelineSim::run(c, 8).expect("valid");
        assert!(r.dropped_b2 > 0, "B2 should overflow under 2× load");
        assert!(r.displayed < 5000);
        assert!(r.cpu_utilization > 0.95);
    }

    #[test]
    fn buffer_occupancy_grows_with_load() {
        let mut light = DecoderConfig::default();
        light.mean_arrival_interval = 2000.0;
        light.packet_count = 3000;
        let mut heavy = light;
        heavy.mean_arrival_interval = 650.0;
        let rl = DecoderPipelineSim::run(light, 9).expect("valid");
        let rh = DecoderPipelineSim::run(heavy, 9).expect("valid");
        assert!(
            rh.b2_avg > rl.b2_avg,
            "B2: heavy {} vs light {}",
            rh.b2_avg,
            rl.b2_avg
        );
        assert!(rh.mean_latency_ticks > rl.mean_latency_ticks);
    }

    #[test]
    fn idct_and_mv_complete_in_lockstep() {
        let mut c = DecoderConfig::default();
        c.packet_count = 500;
        let r = DecoderPipelineSim::run(c, 10).expect("valid");
        // Every VLD output enters both B3 and B4 and nothing is dropped,
        // so both halves finish for every packet.
        assert_eq!(r.displayed, 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = DecoderConfig::default();
        let a = DecoderPipelineSim::run(c, 3).expect("valid");
        let b = DecoderPipelineSim::run(c, 3).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn drain_first_keeps_internal_buffers_shorter() {
        let mut rr = DecoderConfig::default();
        rr.packet_count = 10_000;
        let mut df = rr;
        df.scheduler = SchedulerPolicy::DrainFirst;
        let r_rr = DecoderPipelineSim::run(rr, 13).expect("valid");
        let r_df = DecoderPipelineSim::run(df, 13).expect("valid");
        // Draining downstream first keeps B3/B4 shorter…
        assert!(
            r_df.b3_avg + r_df.b4_avg < r_rr.b3_avg + r_rr.b4_avg,
            "drain-first B3+B4 {:.2} vs round-robin {:.2}",
            r_df.b3_avg + r_df.b4_avg,
            r_rr.b3_avg + r_rr.b4_avg
        );
        // …without sacrificing delivery in a stable pipeline.
        assert_eq!(r_df.displayed, r_rr.displayed);
    }

    #[test]
    fn b3_average_tracks_analytical_producer_consumer() {
        use dms_analysis::ProducerConsumerChain;
        // In the pipeline, B3 is produced into by VLD and drained by IDCT.
        // With round-robin service the per-"cycle" produce/consume odds are
        // roughly equal; the analytical chain with p ≈ q predicts a mid-level
        // average. We only check qualitative agreement: the simulated
        // average stays well inside (0, capacity) for a balanced pipeline.
        let mut c = DecoderConfig::default();
        c.packet_count = 20_000;
        let r = DecoderPipelineSim::run(c, 11).expect("valid");
        let chain = ProducerConsumerChain::new(0.5, 0.5, c.b3_capacity).expect("valid");
        let perf = chain.performance().expect("converges");
        assert!(
            r.b3_avg > 0.0 && r.b3_avg < c.b3_capacity as f64,
            "b3_avg = {}",
            r.b3_avg
        );
        // Both see a non-degenerate buffer: neither pinned empty nor full.
        assert!(perf.mean_occupancy > 0.0 && perf.mean_occupancy < c.b3_capacity as f64);
    }
}
