//! Inter-stream synchronisation (lip-sync).
//!
//! §2.1: "a multimedia application can be reduced to a set of different
//! media streams ... that satisfy a particular temporal relationship.
//! For instance, in order to enforce lip-synchronization, the audio and
//! video streams needs to be synchronized at precise time instances."
//!
//! [`LipSyncScenario`] models matched audio/video presentation units
//! travelling over independent jittery paths and measures the *skew*
//! (video arrival − audio arrival) per unit. The classic tolerance is
//! ±80 ms for unnoticeable skew; a sink-side synchronisation buffer
//! trades end-to-end latency for in-sync fraction, which
//! [`LipSyncScenario::optimal_offset`] quantifies.

use dms_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::error::MediaError;

/// One media path: fixed transit delay plus slowly varying jitter
/// (AR(1) in milliseconds, clamped non-negative).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediaPath {
    /// Mean one-way delay in milliseconds.
    pub mean_delay_ms: f64,
    /// Standard deviation of the delay jitter, in milliseconds.
    pub jitter_ms: f64,
    /// AR(1) persistence of the jitter process in `[0, 1)`.
    pub persistence: f64,
}

impl MediaPath {
    /// Creates a path.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::InvalidParameter`] for a negative delay or
    /// jitter, or persistence outside `[0, 1)`.
    pub fn new(mean_delay_ms: f64, jitter_ms: f64, persistence: f64) -> Result<Self, MediaError> {
        if !(mean_delay_ms.is_finite() && mean_delay_ms >= 0.0) {
            return Err(MediaError::InvalidParameter("mean_delay_ms"));
        }
        if !(jitter_ms.is_finite() && jitter_ms >= 0.0) {
            return Err(MediaError::InvalidParameter("jitter_ms"));
        }
        if !(0.0..1.0).contains(&persistence) {
            return Err(MediaError::InvalidParameter("persistence"));
        }
        Ok(MediaPath {
            mean_delay_ms,
            jitter_ms,
            persistence,
        })
    }

    /// Generates per-unit arrival delays (ms) for `units` units.
    fn delays(&self, units: usize, rng: &mut SimRng) -> Vec<f64> {
        let innov = self.jitter_ms * (1.0 - self.persistence * self.persistence).sqrt();
        let mut state = if self.jitter_ms > 0.0 {
            rng.normal(0.0, self.jitter_ms)
        } else {
            0.0
        };
        (0..units)
            .map(|_| {
                let d = (self.mean_delay_ms + state).max(0.0);
                state = self.persistence * state
                    + if self.jitter_ms > 0.0 {
                        rng.normal(0.0, innov)
                    } else {
                        0.0
                    };
                d
            })
            .collect()
    }
}

/// Measured synchronisation quality of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncReport {
    /// Mean skew (video − audio) in milliseconds; positive = video late.
    pub mean_skew_ms: f64,
    /// Skew standard deviation (the inter-stream jitter), ms.
    pub skew_std_ms: f64,
    /// Largest absolute skew observed, ms.
    pub max_abs_skew_ms: f64,
    /// Fraction of units with |skew| within the tolerance.
    pub in_sync_fraction: f64,
    /// Units evaluated.
    pub units: usize,
}

/// An audio+video pair of streams that must present together.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LipSyncScenario {
    /// The audio path.
    pub audio: MediaPath,
    /// The video path (typically slower and jitterier — bigger packets,
    /// §2's video/audio asymmetry).
    pub video: MediaPath,
    /// Presentation units to simulate.
    pub units: usize,
}

impl LipSyncScenario {
    /// A streaming preset: audio 20 ms ± 3 ms, video 45 ms ± 15 ms,
    /// 3000 units.
    ///
    /// # Errors
    ///
    /// Never fails in practice; keeps the constructor signature uniform.
    pub fn streaming_default() -> Result<Self, MediaError> {
        Ok(LipSyncScenario {
            audio: MediaPath::new(20.0, 3.0, 0.9)?,
            video: MediaPath::new(45.0, 15.0, 0.9)?,
            units: 3000,
        })
    }

    /// Per-unit skews (video − audio arrival), in milliseconds, with the
    /// audio stream delayed by `audio_offset_ms` at the sink (the
    /// synchronisation buffer).
    #[must_use]
    pub fn skews(&self, audio_offset_ms: f64, seed: u64) -> Vec<f64> {
        let root = SimRng::new(seed);
        let mut audio_rng = root.substream("lipsync-audio", 0);
        let mut video_rng = root.substream("lipsync-video", 0);
        let audio = self.audio.delays(self.units, &mut audio_rng);
        let video = self.video.delays(self.units, &mut video_rng);
        audio
            .iter()
            .zip(&video)
            .map(|(a, v)| v - (a + audio_offset_ms))
            .collect()
    }

    /// Evaluates synchronisation at a given sink-side audio offset.
    #[must_use]
    pub fn evaluate(&self, audio_offset_ms: f64, tolerance_ms: f64, seed: u64) -> SyncReport {
        let skews = self.skews(audio_offset_ms, seed);
        let n = skews.len().max(1) as f64;
        let mean = skews.iter().sum::<f64>() / n;
        let var = skews.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let max_abs = skews.iter().fold(0.0f64, |m, s| m.max(s.abs()));
        let in_sync = skews.iter().filter(|s| s.abs() <= tolerance_ms).count() as f64 / n;
        SyncReport {
            mean_skew_ms: mean,
            skew_std_ms: var.sqrt(),
            max_abs_skew_ms: max_abs,
            in_sync_fraction: in_sync,
            units: skews.len(),
        }
    }

    /// The sink-side audio delay that maximises the in-sync fraction
    /// (grid search over the observed skew range) — i.e. the size of the
    /// synchronisation buffer worth paying for.
    #[must_use]
    pub fn optimal_offset(&self, tolerance_ms: f64, seed: u64) -> f64 {
        let skews = self.skews(0.0, seed);
        if skews.is_empty() {
            return 0.0;
        }
        let lo = skews.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = skews.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut best = (0.0, 0usize);
        let steps = 200;
        for k in 0..=steps {
            let offset = lo + (hi - lo) * k as f64 / steps as f64;
            let hits = skews
                .iter()
                .filter(|s| (*s - offset).abs() <= tolerance_ms)
                .count();
            if hits > best.1 {
                best = (offset, hits);
            }
        }
        best.0.max(0.0) // a negative offset would mean delaying video instead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_validation() {
        assert!(MediaPath::new(-1.0, 1.0, 0.5).is_err());
        assert!(MediaPath::new(1.0, -1.0, 0.5).is_err());
        assert!(MediaPath::new(1.0, 1.0, 1.0).is_err());
        assert!(MediaPath::new(0.0, 0.0, 0.0).is_ok());
    }

    #[test]
    fn jitterless_paths_have_constant_skew() {
        let s = LipSyncScenario {
            audio: MediaPath::new(20.0, 0.0, 0.0).expect("valid"),
            video: MediaPath::new(45.0, 0.0, 0.0).expect("valid"),
            units: 100,
        };
        let r = s.evaluate(0.0, 80.0, 1);
        assert!((r.mean_skew_ms - 25.0).abs() < 1e-9);
        assert_eq!(r.skew_std_ms, 0.0);
        assert_eq!(r.in_sync_fraction, 1.0);
        // Offsetting audio by exactly the skew centres it at zero.
        let r = s.evaluate(25.0, 1.0, 1);
        assert!((r.mean_skew_ms).abs() < 1e-9);
        assert_eq!(r.in_sync_fraction, 1.0);
    }

    #[test]
    fn default_scenario_is_mostly_in_sync_at_80ms() {
        let s = LipSyncScenario::streaming_default().expect("preset valid");
        let r = s.evaluate(0.0, 80.0, 7);
        assert!(r.in_sync_fraction > 0.95, "fraction {}", r.in_sync_fraction);
        assert!(r.mean_skew_ms > 0.0, "video should lag audio on average");
    }

    #[test]
    fn tighter_tolerance_is_harder() {
        let s = LipSyncScenario::streaming_default().expect("preset valid");
        let loose = s.evaluate(0.0, 80.0, 3).in_sync_fraction;
        let tight = s.evaluate(0.0, 10.0, 3).in_sync_fraction;
        assert!(tight < loose);
    }

    #[test]
    fn optimal_offset_improves_tight_sync() {
        let s = LipSyncScenario::streaming_default().expect("preset valid");
        let tolerance = 15.0;
        let before = s.evaluate(0.0, tolerance, 5).in_sync_fraction;
        let offset = s.optimal_offset(tolerance, 5);
        let after = s.evaluate(offset, tolerance, 5).in_sync_fraction;
        assert!(offset > 0.0, "audio should be buffered to wait for video");
        assert!(
            after > before,
            "sync buffer must help: {before} -> {after} (offset {offset} ms)"
        );
        assert!(after > 0.6, "after {after}");
    }

    #[test]
    fn more_jitter_less_sync() {
        let calm = LipSyncScenario {
            audio: MediaPath::new(20.0, 1.0, 0.5).expect("valid"),
            video: MediaPath::new(25.0, 2.0, 0.5).expect("valid"),
            units: 2000,
        };
        let wild = LipSyncScenario {
            audio: MediaPath::new(20.0, 1.0, 0.5).expect("valid"),
            video: MediaPath::new(25.0, 60.0, 0.5).expect("valid"),
            units: 2000,
        };
        let tol = 40.0;
        assert!(
            wild.evaluate(0.0, tol, 9).in_sync_fraction
                < calm.evaluate(0.0, tol, 9).in_sync_fraction
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let s = LipSyncScenario::streaming_default().expect("preset valid");
        assert_eq!(s.skews(0.0, 11), s.skews(0.0, 11));
        assert_ne!(s.skews(0.0, 11), s.skews(0.0, 12));
    }
}
