//! GOP-structured synthetic video traces.
//!
//! Substitutes for the real MPEG-2 bitstreams the paper's studies used
//! (§2.2 notes "a few minutes of compressed MPEG-2 video can easily
//! require a few Gbytes of input data to simulate"). Frame sizes follow
//! the well-documented structure of encoded video: a repeating GOP
//! pattern (e.g. `IBBPBBPBBPBB`), lognormal size marginals per frame
//! type with `I > P > B`, and a slowly-varying scene-activity process
//! that induces the long-range dependence real video exhibits (the
//! traffic-analysis premise of §3.2 / \[19\]).

use dms_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::error::MediaError;

/// The coding type of a video frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// Intra-coded: largest, self-contained.
    I,
    /// Predicted from a previous reference.
    P,
    /// Bidirectionally predicted: smallest.
    B,
}

/// One encoded video frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Display index of the frame.
    pub index: u64,
    /// Coding type.
    pub kind: FrameKind,
    /// Encoded size in bytes.
    pub bytes: u64,
}

/// A synthetic video-trace generator.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dms_media::MediaError> {
/// use dms_media::trace_gen::VideoTraceGenerator;
/// use dms_sim::SimRng;
///
/// let gen = VideoTraceGenerator::new("IBBPBBPBBPBB", 12_000.0, 5_000.0, 2_200.0, 0.3)?;
/// let trace = gen.generate(120, &mut SimRng::new(1));
/// assert_eq!(trace.len(), 120);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoTraceGenerator {
    pattern: Vec<FrameKind>,
    mean_i: f64,
    mean_p: f64,
    mean_b: f64,
    /// Lognormal shape (sigma of the underlying normal).
    sigma: f64,
    /// AR(1) coefficient of the scene-activity process, near 1 for
    /// strong long-range-looking correlation.
    scene_persistence: f64,
    /// Standard deviation of the scene-activity innovations.
    scene_sigma: f64,
}

impl VideoTraceGenerator {
    /// Creates a generator from a GOP pattern and per-type mean sizes.
    ///
    /// `sigma` is the lognormal shape parameter of frame-size variation
    /// (typical encoded video: 0.2–0.5).
    ///
    /// # Errors
    ///
    /// * [`MediaError::BadGopPattern`] for an empty pattern, characters
    ///   outside `IPB`, or a pattern not starting with `I`.
    /// * [`MediaError::InvalidParameter`] for non-positive means or a
    ///   negative/non-finite `sigma`.
    pub fn new(
        pattern: &str,
        mean_i: f64,
        mean_p: f64,
        mean_b: f64,
        sigma: f64,
    ) -> Result<Self, MediaError> {
        let kinds: Option<Vec<FrameKind>> = pattern
            .chars()
            .map(|c| match c {
                'I' => Some(FrameKind::I),
                'P' => Some(FrameKind::P),
                'B' => Some(FrameKind::B),
                _ => None,
            })
            .collect();
        let kinds = kinds.ok_or_else(|| MediaError::BadGopPattern(pattern.into()))?;
        if kinds.first() != Some(&FrameKind::I) {
            return Err(MediaError::BadGopPattern(pattern.into()));
        }
        for (name, v) in [("mean_i", mean_i), ("mean_p", mean_p), ("mean_b", mean_b)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(MediaError::InvalidParameter(match name {
                    "mean_i" => "mean_i",
                    "mean_p" => "mean_p",
                    _ => "mean_b",
                }));
            }
        }
        if !(sigma.is_finite() && sigma >= 0.0) {
            return Err(MediaError::InvalidParameter("sigma"));
        }
        Ok(VideoTraceGenerator {
            pattern: kinds,
            mean_i,
            mean_p,
            mean_b,
            sigma,
            scene_persistence: 0.995,
            scene_sigma: 0.05,
        })
    }

    /// A CIF-resolution MPEG-2 preset (≈1.5 Mbit/s at 30 fps):
    /// `IBBPBBPBBPBB` GOP, I ≈ 14 KB, P ≈ 6 KB, B ≈ 2.5 KB.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` keeps the constructor
    /// signature uniform.
    pub fn cif_mpeg2() -> Result<Self, MediaError> {
        VideoTraceGenerator::new("IBBPBBPBBPBB", 14_000.0, 6_000.0, 2_500.0, 0.3)
    }

    /// The GOP pattern.
    #[must_use]
    pub fn pattern(&self) -> &[FrameKind] {
        &self.pattern
    }

    /// Mean frame size implied by the GOP pattern, in bytes.
    #[must_use]
    pub fn mean_frame_bytes(&self) -> f64 {
        let total: f64 = self.pattern.iter().map(|k| self.mean_of(*k)).sum();
        total / self.pattern.len() as f64
    }

    /// Generates `count` frames.
    #[must_use]
    pub fn generate(&self, count: usize, rng: &mut SimRng) -> Vec<Frame> {
        // Scene-activity multiplier: exp of an AR(1) process, so scenes
        // with high activity inflate every frame type together. The
        // near-unit persistence yields correlation over hundreds of
        // frames, i.e. LRD-like behaviour at trace scale.
        let mut activity = 0.0f64;
        let mut frames = Vec::with_capacity(count);
        for i in 0..count {
            activity = self.scene_persistence * activity + rng.normal(0.0, self.scene_sigma);
            let kind = self.pattern[i % self.pattern.len()];
            let mean = self.mean_of(kind) * activity.exp();
            // Lognormal with the requested mean: mu = ln(mean) - sigma²/2.
            let mu = mean.ln() - self.sigma * self.sigma / 2.0;
            let bytes = rng.lognormal(mu, self.sigma).round().max(1.0) as u64;
            frames.push(Frame {
                index: i as u64,
                kind,
                bytes,
            });
        }
        frames
    }

    /// Generates `count` frames and returns just the byte sizes — the
    /// form the traffic analyses consume.
    #[must_use]
    pub fn generate_sizes(&self, count: usize, rng: &mut SimRng) -> Vec<f64> {
        self.generate(count, rng)
            .into_iter()
            .map(|f| f.bytes as f64)
            .collect()
    }

    fn mean_of(&self, kind: FrameKind) -> f64 {
        match kind {
            FrameKind::I => self.mean_i,
            FrameKind::P => self.mean_p,
            FrameKind::B => self.mean_b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dms_analysis::aggregate_variance_hurst;

    #[test]
    fn pattern_validation() {
        assert!(VideoTraceGenerator::new("", 1.0, 1.0, 1.0, 0.1).is_err());
        assert!(VideoTraceGenerator::new("PBB", 1.0, 1.0, 1.0, 0.1).is_err());
        assert!(VideoTraceGenerator::new("IXB", 1.0, 1.0, 1.0, 0.1).is_err());
        assert!(VideoTraceGenerator::new("IBBP", 1.0, 1.0, 1.0, 0.1).is_ok());
    }

    #[test]
    fn parameter_validation() {
        assert!(VideoTraceGenerator::new("I", 0.0, 1.0, 1.0, 0.1).is_err());
        assert!(VideoTraceGenerator::new("I", 1.0, -1.0, 1.0, 0.1).is_err());
        assert!(VideoTraceGenerator::new("I", 1.0, 1.0, 1.0, -0.1).is_err());
        assert!(VideoTraceGenerator::new("I", 1.0, 1.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn gop_pattern_repeats() {
        let gen = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let frames = gen.generate(24, &mut SimRng::new(1));
        assert_eq!(frames[0].kind, FrameKind::I);
        assert_eq!(frames[12].kind, FrameKind::I);
        assert_eq!(frames[3].kind, FrameKind::P);
        assert_eq!(frames[1].kind, FrameKind::B);
    }

    #[test]
    fn frame_type_size_ordering() {
        let gen = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let frames = gen.generate(1200, &mut SimRng::new(2));
        let mean_of = |k: FrameKind| {
            let sizes: Vec<u64> = frames
                .iter()
                .filter(|f| f.kind == k)
                .map(|f| f.bytes)
                .collect();
            sizes.iter().sum::<u64>() as f64 / sizes.len() as f64
        };
        assert!(mean_of(FrameKind::I) > mean_of(FrameKind::P));
        assert!(mean_of(FrameKind::P) > mean_of(FrameKind::B));
    }

    #[test]
    fn mean_size_in_expected_ballpark() {
        let gen = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let sizes = gen.generate_sizes(6000, &mut SimRng::new(3));
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        let expected = gen.mean_frame_bytes();
        // Scene modulation inflates variance; allow a wide band.
        assert!(
            mean > expected * 0.5 && mean < expected * 2.0,
            "mean {mean}, expected ≈ {expected}"
        );
    }

    #[test]
    fn trace_is_long_range_dependent() {
        let gen = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let sizes = gen.generate_sizes(8192, &mut SimRng::new(4));
        let h = aggregate_variance_hurst(&sizes).expect("long enough");
        assert!(h > 0.6, "video trace should look LRD, got H = {h}");
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let a = gen.generate(64, &mut SimRng::new(5));
        let b = gen.generate(64, &mut SimRng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn frames_are_indexed_and_positive() {
        let gen = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let frames = gen.generate(100, &mut SimRng::new(6));
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.index, i as u64);
            assert!(f.bytes >= 1);
        }
    }
}
