//! MPEG-4 Fine-Granularity Scalability (FGS) layering.
//!
//! §4.1 / \[28\]\[29\]: an FGS encoder produces a *base layer* that must be
//! delivered intact plus an *enhancement layer* of bit planes that can be
//! truncated anywhere — "the server subsequently determines the
//! additional amount of data in the form of enhancement layers on top of
//! the MPEG-4 base layer". [`FgsEncoder`] layers a video trace into
//! [`FgsFrame`]s; each frame knows how to truncate itself to a bit
//! budget and what PSNR the received portion yields.

use dms_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::error::MediaError;
use crate::trace_gen::VideoTraceGenerator;

/// Number of enhancement bit planes an FGS frame carries.
pub const BIT_PLANES: usize = 6;

/// One FGS-coded frame: a mandatory base layer plus truncatable
/// enhancement bit planes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FgsFrame {
    /// Display index.
    pub index: u64,
    /// Base-layer size in bits.
    pub base_bits: u64,
    /// Per-plane enhancement sizes in bits (most significant plane
    /// first; later planes refine less but cost similar bits).
    pub plane_bits: [u64; BIT_PLANES],
    /// PSNR delivered by the base layer alone, in dB.
    pub base_psnr_db: f64,
    /// Extra PSNR delivered by each complete plane, in dB (diminishing).
    pub plane_psnr_db: [f64; BIT_PLANES],
}

impl FgsFrame {
    /// Total enhancement bits available.
    #[must_use]
    pub fn enhancement_bits(&self) -> u64 {
        self.plane_bits.iter().sum()
    }

    /// Total frame size in bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.base_bits + self.enhancement_bits()
    }

    /// Truncates the enhancement layer to fit `budget_bits` (the base
    /// layer is always included) and returns `(bits_sent, psnr_db)`.
    ///
    /// Partial planes contribute PSNR proportionally — the defining
    /// property of *fine*-granularity scalability.
    ///
    /// If the budget cannot even fit the base layer, the base layer is
    /// sent anyway (it is mandatory) and its PSNR returned.
    #[must_use]
    pub fn truncate_to(&self, budget_bits: u64) -> (u64, f64) {
        let mut sent = self.base_bits;
        let mut psnr = self.base_psnr_db;
        let mut remaining = budget_bits.saturating_sub(self.base_bits);
        for (bits, gain) in self.plane_bits.iter().zip(&self.plane_psnr_db) {
            if remaining == 0 || *bits == 0 {
                break;
            }
            let take = (*bits).min(remaining);
            sent += take;
            psnr += gain * take as f64 / *bits as f64;
            remaining -= take;
        }
        (sent, psnr)
    }

    /// PSNR when everything is received.
    #[must_use]
    pub fn max_psnr_db(&self) -> f64 {
        self.base_psnr_db + self.plane_psnr_db.iter().sum::<f64>()
    }
}

/// Layers a video trace into FGS frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FgsEncoder {
    /// Fraction of each frame's bits allocated to the base layer.
    base_fraction: f64,
    /// PSNR of the base layer, in dB.
    base_psnr_db: f64,
    /// Total PSNR headroom of the full enhancement layer, in dB.
    enhancement_psnr_db: f64,
}

impl FgsEncoder {
    /// Creates an encoder.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::InvalidProbability`] if `base_fraction`
    /// leaves `(0, 1)`, or [`MediaError::InvalidParameter`] for
    /// non-positive PSNR figures.
    pub fn new(
        base_fraction: f64,
        base_psnr_db: f64,
        enhancement_psnr_db: f64,
    ) -> Result<Self, MediaError> {
        if !(base_fraction > 0.0 && base_fraction < 1.0) {
            return Err(MediaError::InvalidProbability(
                "base_fraction",
                base_fraction,
            ));
        }
        if !(base_psnr_db.is_finite() && base_psnr_db > 0.0) {
            return Err(MediaError::InvalidParameter("base_psnr_db"));
        }
        if !(enhancement_psnr_db.is_finite() && enhancement_psnr_db > 0.0) {
            return Err(MediaError::InvalidParameter("enhancement_psnr_db"));
        }
        Ok(FgsEncoder {
            base_fraction,
            base_psnr_db,
            enhancement_psnr_db,
        })
    }

    /// A typical streaming configuration: 30% base layer at 30 dB, with
    /// 12 dB of enhancement headroom.
    ///
    /// # Errors
    ///
    /// Never fails in practice; keeps the constructor signature uniform.
    pub fn streaming_default() -> Result<Self, MediaError> {
        FgsEncoder::new(0.3, 30.0, 12.0)
    }

    /// Encodes `count` frames of a video trace into FGS frames.
    #[must_use]
    pub fn encode(
        &self,
        gen: &VideoTraceGenerator,
        count: usize,
        rng: &mut SimRng,
    ) -> Vec<FgsFrame> {
        gen.generate(count, rng)
            .into_iter()
            .map(|f| {
                let total_bits = f.bytes * 8;
                let base_bits = (total_bits as f64 * self.base_fraction).round() as u64;
                let enh_total = total_bits - base_bits;
                // Bit planes: roughly equal bit cost, geometrically
                // diminishing PSNR contribution (each plane halves the
                // residual error).
                let per_plane = enh_total / BIT_PLANES as u64;
                let mut plane_bits = [per_plane; BIT_PLANES];
                plane_bits[BIT_PLANES - 1] += enh_total - per_plane * BIT_PLANES as u64;
                let mut plane_psnr_db = [0.0; BIT_PLANES];
                let norm: f64 = (0..BIT_PLANES).map(|k| 0.5f64.powi(k as i32)).sum();
                for (k, p) in plane_psnr_db.iter_mut().enumerate() {
                    *p = self.enhancement_psnr_db * 0.5f64.powi(k as i32) / norm;
                }
                FgsFrame {
                    index: f.index,
                    base_bits,
                    plane_bits,
                    base_psnr_db: self.base_psnr_db,
                    plane_psnr_db,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> FgsFrame {
        let gen = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let enc = FgsEncoder::streaming_default().expect("preset valid");
        enc.encode(&gen, 1, &mut SimRng::new(1)).remove(0)
    }

    #[test]
    fn encoder_validation() {
        assert!(FgsEncoder::new(0.0, 30.0, 12.0).is_err());
        assert!(FgsEncoder::new(1.0, 30.0, 12.0).is_err());
        assert!(FgsEncoder::new(0.3, 0.0, 12.0).is_err());
        assert!(FgsEncoder::new(0.3, 30.0, -1.0).is_err());
    }

    #[test]
    fn bits_are_conserved_by_layering() {
        let f = frame();
        assert_eq!(f.total_bits(), f.base_bits + f.enhancement_bits());
        assert!(f.base_bits > 0);
        assert!(f.enhancement_bits() > 0);
    }

    #[test]
    fn base_fraction_is_respected() {
        let gen = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let enc = FgsEncoder::new(0.3, 30.0, 12.0).expect("valid");
        let frames = enc.encode(&gen, 200, &mut SimRng::new(2));
        for f in &frames {
            let frac = f.base_bits as f64 / f.total_bits() as f64;
            assert!((frac - 0.3).abs() < 0.01, "fraction {frac}");
        }
    }

    #[test]
    fn truncation_monotone_in_budget() {
        let f = frame();
        let mut last_psnr = 0.0;
        let mut last_sent = 0;
        for budget in [
            0,
            f.base_bits,
            f.base_bits + 100,
            f.total_bits() / 2,
            f.total_bits(),
            u64::MAX,
        ] {
            let (sent, psnr) = f.truncate_to(budget);
            assert!(psnr >= last_psnr, "PSNR must not decrease with budget");
            assert!(sent >= last_sent);
            last_psnr = psnr;
            last_sent = sent;
        }
    }

    #[test]
    fn zero_budget_still_sends_base_layer() {
        let f = frame();
        let (sent, psnr) = f.truncate_to(0);
        assert_eq!(sent, f.base_bits);
        assert!((psnr - f.base_psnr_db).abs() < 1e-12);
    }

    #[test]
    fn full_budget_reaches_max_psnr() {
        let f = frame();
        let (sent, psnr) = f.truncate_to(u64::MAX);
        assert_eq!(sent, f.total_bits());
        assert!((psnr - f.max_psnr_db()).abs() < 1e-9);
    }

    #[test]
    fn planes_have_diminishing_returns() {
        let f = frame();
        for k in 1..BIT_PLANES {
            assert!(
                f.plane_psnr_db[k] < f.plane_psnr_db[k - 1],
                "plane {k} should refine less than plane {}",
                k - 1
            );
        }
    }

    #[test]
    fn partial_plane_contributes_partially() {
        let f = frame();
        let half_plane = f.base_bits + f.plane_bits[0] / 2;
        let (_, psnr) = f.truncate_to(half_plane);
        let expected = f.base_psnr_db + f.plane_psnr_db[0] * 0.5;
        assert!(
            (psnr - expected).abs() < 0.1,
            "psnr {psnr} vs expected ≈ {expected}"
        );
    }
}
