//! Error type for media models.

use std::error::Error;
use std::fmt;

/// Errors produced by the media generators and simulators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MediaError {
    /// A probability parameter fell outside `[0, 1]`.
    InvalidProbability(&'static str, f64),
    /// A numeric parameter was out of its valid range.
    InvalidParameter(&'static str),
    /// The GOP pattern string contains characters other than I/P/B or
    /// does not start with an I frame.
    BadGopPattern(String),
}

impl fmt::Display for MediaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaError::InvalidProbability(name, v) => {
                write!(f, "probability `{name}` = {v} is outside [0, 1]")
            }
            MediaError::InvalidParameter(name) => write!(f, "parameter `{name}` is out of range"),
            MediaError::BadGopPattern(p) => {
                write!(
                    f,
                    "GOP pattern `{p}` must be I/P/B characters starting with I"
                )
            }
        }
    }
}

impl Error for MediaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_offender() {
        assert!(MediaError::InvalidParameter("fps")
            .to_string()
            .contains("fps"));
        assert!(MediaError::BadGopPattern("XYZ".into())
            .to_string()
            .contains("XYZ"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<MediaError>();
    }
}
