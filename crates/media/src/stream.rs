//! The generic multimedia stream of Fig. 1(a).
//!
//! "A multimedia stream consists of the Source (e.g. encoder), the Sink
//! (decoder), and the Channel (lossy or lossless) ... the real channel
//! can be modelled as an automaton which simply transmits packets from
//! the transmitter (Tx) to the receiver (Rx) buffers. The packets may be
//! sent over the channel with error, or may be simply lost during
//! transmission." (§2.1)
//!
//! [`StreamSim`] runs that pipeline on the `dms-sim` kernel: a periodic
//! Source fills a finite Tx buffer; the Channel (a two-state
//! Gilbert–Elliott error automaton) serialises packets with a fixed
//! delay, losing some; survivors land in a finite Rx buffer drained by
//! a periodic Sink. Lost packets may be retransmitted a bounded number
//! of times — "one can decide, at the highest level of abstraction, the
//! best rate for the source, how much retransmission can be afforded,
//! etc." \[6\].

use dms_core::FiniteQueue;
use dms_sim::{Engine, EventQueue, Model, OnlineStats, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::error::MediaError;

/// Two-state Gilbert–Elliott packet-loss automaton.
///
/// The channel is in a Good or Bad state; each transmitted packet is
/// lost with the state's loss probability, and the state evolves per
/// transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Probability of switching Good → Bad after a transmission.
    pub p_good_to_bad: f64,
    /// Probability of switching Bad → Good after a transmission.
    pub p_bad_to_good: f64,
    /// Packet-loss probability while Good.
    pub loss_good: f64,
    /// Packet-loss probability while Bad.
    pub loss_bad: f64,
    /// One-way packet delay in ticks.
    pub delay_ticks: u64,
}

impl ChannelModel {
    /// A lossless channel with the given delay.
    #[must_use]
    pub fn lossless(delay_ticks: u64) -> Self {
        ChannelModel {
            p_good_to_bad: 0.0,
            p_bad_to_good: 1.0,
            loss_good: 0.0,
            loss_bad: 0.0,
            delay_ticks,
        }
    }

    /// A bursty wireless-like channel: mostly good with occasional deep
    /// fades (Bad state losing 50% of packets).
    #[must_use]
    pub fn bursty_wireless(delay_ticks: u64) -> Self {
        ChannelModel {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.1,
            loss_good: 0.001,
            loss_bad: 0.5,
            delay_ticks,
        }
    }

    /// Validates all probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::InvalidProbability`] naming the first field
    /// outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), MediaError> {
        for (name, v) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(MediaError::InvalidProbability(name, v));
            }
        }
        Ok(())
    }

    /// Long-run fraction of time spent in the Bad state.
    #[must_use]
    pub fn bad_state_fraction(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            0.0
        } else {
            self.p_good_to_bad / denom
        }
    }

    /// Long-run average packet-loss probability.
    #[must_use]
    pub fn average_loss(&self) -> f64 {
        let b = self.bad_state_fraction();
        (1.0 - b) * self.loss_good + b * self.loss_bad
    }
}

/// Configuration of a Fig. 1(a) stream simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Ticks between source packet emissions.
    pub source_interval: u64,
    /// Number of packets the source emits before stopping.
    pub packet_count: u64,
    /// Tx buffer capacity in packets.
    pub tx_capacity: usize,
    /// Rx buffer capacity in packets.
    pub rx_capacity: usize,
    /// Ticks between sink consumptions (display rate).
    pub sink_interval: u64,
    /// Ticks the channel needs to serialise one packet (its service time).
    pub channel_service: u64,
    /// The error automaton.
    pub channel: ChannelModel,
    /// Maximum retransmissions per packet (0 = none).
    pub max_retransmissions: u32,
}

impl StreamConfig {
    /// Validates intervals and the channel model.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::InvalidParameter`] for zero intervals or
    /// counts, and propagates channel-probability errors.
    pub fn validate(&self) -> Result<(), MediaError> {
        if self.source_interval == 0 {
            return Err(MediaError::InvalidParameter("source_interval"));
        }
        if self.sink_interval == 0 {
            return Err(MediaError::InvalidParameter("sink_interval"));
        }
        if self.channel_service == 0 {
            return Err(MediaError::InvalidParameter("channel_service"));
        }
        if self.packet_count == 0 {
            return Err(MediaError::InvalidParameter("packet_count"));
        }
        if self.tx_capacity == 0 || self.rx_capacity == 0 {
            return Err(MediaError::InvalidParameter("buffer capacity"));
        }
        self.channel.validate()
    }
}

/// Measured outcome of a stream simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Packets consumed by the sink.
    pub delivered: u64,
    /// Packets lost on the channel after exhausting retransmissions.
    pub lost_channel: u64,
    /// Packets dropped at a full Tx buffer.
    pub dropped_tx: u64,
    /// Packets dropped at a full Rx buffer.
    pub dropped_rx: u64,
    /// Total retransmission attempts.
    pub retransmissions: u64,
    /// Mean end-to-end latency (emission → consumption) in ticks.
    pub mean_latency_ticks: f64,
    /// Latency jitter (standard deviation) in ticks.
    pub jitter_ticks: f64,
    /// Time-averaged Rx buffer occupancy in packets.
    pub rx_occupancy_avg: f64,
    /// Peak Rx buffer occupancy in packets.
    pub rx_occupancy_peak: f64,
    /// Simulated duration in ticks.
    pub duration_ticks: u64,
}

impl StreamReport {
    /// Every packet the report accounts for (delivered or lost anywhere).
    fn accounted(&self) -> u64 {
        self.delivered + self.lost_channel + self.dropped_tx + self.dropped_rx
    }

    /// Overall loss rate: everything not delivered over everything
    /// emitted. A zero-packet run (an empty session) is lossless by
    /// definition, not NaN.
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        if self.accounted() == 0 {
            0.0
        } else {
            1.0 - self.delivery_rate()
        }
    }

    /// Fraction of emitted packets the sink consumed; `0.0` for a
    /// zero-packet run.
    #[must_use]
    pub fn delivery_rate(&self) -> f64 {
        let total = self.accounted();
        if total == 0 {
            0.0
        } else {
            self.delivered as f64 / total as f64
        }
    }

    /// Fraction of emitted packets dropped at either finite buffer
    /// (Tx or Rx overflow); `0.0` for a zero-packet run.
    #[must_use]
    pub fn buffer_drop_rate(&self) -> f64 {
        let total = self.accounted();
        if total == 0 {
            0.0
        } else {
            (self.dropped_tx + self.dropped_rx) as f64 / total as f64
        }
    }

    /// Mean retransmission attempts per emitted packet; `0.0` for a
    /// zero-packet run.
    #[must_use]
    pub fn retransmission_rate(&self) -> f64 {
        let total = self.accounted();
        if total == 0 {
            0.0
        } else {
            self.retransmissions as f64 / total as f64
        }
    }
}

/// A packet in flight through the Fig. 1(a) pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    created: SimTime,
    retries: u32,
}

/// Events driving the simulation (public because it is the model's
/// [`Model::Event`] type; construct simulations via the `run` helpers).
#[derive(Debug)]
pub enum StreamEvent {
    /// Source emits the next packet.
    Emit(u64),
    /// Channel finishes serialising the head-of-line Tx packet.
    ChannelDone,
    /// A packet survives the channel and reaches the Rx buffer.
    Deliver(Packet),
    /// Sink consumes one packet.
    Consume,
}

/// The Fig. 1(a) stream pipeline as a [`Model`] on the DES kernel.
///
/// Most callers should use [`StreamSim::run`]; the model is public so it
/// can be embedded into larger simulations.
#[derive(Debug)]
pub struct StreamSim {
    config: StreamConfig,
    rng: SimRng,
    tx: FiniteQueue<Packet>,
    rx: FiniteQueue<Packet>,
    channel_bad: bool,
    channel_busy: bool,
    in_flight: Option<Packet>,
    emitted: u64,
    delivered: u64,
    lost_channel: u64,
    dropped_tx: u64,
    dropped_rx: u64,
    retransmissions: u64,
    deliveries_pending: u64,
    latency: OnlineStats,
    last_time: SimTime,
}

impl StreamSim {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamConfig::validate`] failures.
    pub fn new(config: StreamConfig, seed: u64) -> Result<Self, MediaError> {
        config.validate()?;
        Ok(StreamSim {
            config,
            rng: SimRng::new(seed).substream("stream-channel", 0),
            tx: FiniteQueue::new(config.tx_capacity),
            rx: FiniteQueue::new(config.rx_capacity),
            channel_bad: false,
            channel_busy: false,
            in_flight: None,
            emitted: 0,
            delivered: 0,
            lost_channel: 0,
            dropped_tx: 0,
            dropped_rx: 0,
            retransmissions: 0,
            deliveries_pending: 0,
            latency: OnlineStats::new(),
            last_time: SimTime::ZERO,
        })
    }

    /// Runs the full simulation and produces the report.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn run(config: StreamConfig, seed: u64) -> Result<StreamReport, MediaError> {
        let model = StreamSim::new(config, seed)?;
        let mut engine = Engine::new(model);
        engine
            .queue_mut()
            .schedule(SimTime::ZERO, StreamEvent::Emit(0));
        engine.queue_mut().schedule(
            SimTime::from_ticks(config.sink_interval),
            StreamEvent::Consume,
        );
        // The sink keeps rescheduling only while work remains, so the
        // queue drains naturally.
        engine.run_to_completion();
        let now = engine.now();
        let m = engine.into_model();
        Ok(StreamReport {
            delivered: m.delivered,
            lost_channel: m.lost_channel,
            dropped_tx: m.dropped_tx,
            dropped_rx: m.dropped_rx,
            retransmissions: m.retransmissions,
            mean_latency_ticks: m.latency.mean(),
            jitter_ticks: m.latency.std_dev(),
            rx_occupancy_avg: m.rx.average_occupancy(now),
            rx_occupancy_peak: m.rx.peak_occupancy(),
            duration_ticks: now.ticks(),
        })
    }

    fn start_transmission_if_idle(&mut self, now: SimTime, q: &mut EventQueue<StreamEvent>) {
        if self.channel_busy {
            return;
        }
        if let Some(pkt) = self.tx.pop(now) {
            self.channel_busy = true;
            self.in_flight = Some(pkt);
            q.schedule(
                now + SimTime::from_ticks(self.config.channel_service),
                StreamEvent::ChannelDone,
            );
        }
    }

    fn more_work_pending(&self) -> bool {
        self.emitted < self.config.packet_count
            || !self.tx.is_empty()
            || !self.rx.is_empty()
            || self.channel_busy
            || self.deliveries_pending > 0
    }
}

impl Model for StreamSim {
    type Event = StreamEvent;

    fn handle(&mut self, now: SimTime, event: StreamEvent, q: &mut EventQueue<StreamEvent>) {
        self.last_time = now;
        match event {
            StreamEvent::Emit(i) => {
                self.emitted += 1;
                if self
                    .tx
                    .push(
                        now,
                        Packet {
                            created: now,
                            retries: 0,
                        },
                    )
                    .is_err()
                {
                    self.dropped_tx += 1;
                }
                self.start_transmission_if_idle(now, q);
                if i + 1 < self.config.packet_count {
                    q.schedule(
                        now + SimTime::from_ticks(self.config.source_interval),
                        StreamEvent::Emit(i + 1),
                    );
                }
            }
            StreamEvent::ChannelDone => {
                self.channel_busy = false;
                let mut pkt = self.in_flight.take().expect("transmission in progress");
                // Step the Gilbert–Elliott automaton, then draw the loss.
                let flip = if self.channel_bad {
                    self.config.channel.p_bad_to_good
                } else {
                    self.config.channel.p_good_to_bad
                };
                if self.rng.chance(flip) {
                    self.channel_bad = !self.channel_bad;
                }
                let loss_p = if self.channel_bad {
                    self.config.channel.loss_bad
                } else {
                    self.config.channel.loss_good
                };
                if self.rng.chance(loss_p) {
                    if pkt.retries < self.config.max_retransmissions {
                        pkt.retries += 1;
                        self.retransmissions += 1;
                        // Head-of-line retransmission: requeue unless the
                        // Tx buffer filled up in the meantime.
                        if self.tx.push(now, pkt).is_err() {
                            self.lost_channel += 1;
                        }
                    } else {
                        self.lost_channel += 1;
                    }
                } else {
                    self.deliveries_pending += 1;
                    q.schedule(
                        now + SimTime::from_ticks(self.config.channel.delay_ticks),
                        StreamEvent::Deliver(pkt),
                    );
                }
                self.start_transmission_if_idle(now, q);
            }
            StreamEvent::Deliver(pkt) => {
                self.deliveries_pending -= 1;
                if self.rx.push(now, pkt).is_err() {
                    self.dropped_rx += 1;
                }
            }
            StreamEvent::Consume => {
                if let Some(pkt) = self.rx.pop(now) {
                    self.delivered += 1;
                    self.latency
                        .record(now.saturating_since(pkt.created) as f64);
                }
                if self.more_work_pending() {
                    q.schedule(
                        now + SimTime::from_ticks(self.config.sink_interval),
                        StreamEvent::Consume,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> StreamConfig {
        StreamConfig {
            source_interval: 10,
            packet_count: 1000,
            tx_capacity: 16,
            rx_capacity: 16,
            sink_interval: 10,
            channel_service: 5,
            channel: ChannelModel::lossless(3),
            max_retransmissions: 0,
        }
    }

    #[test]
    fn lossless_channel_delivers_everything() {
        let report = StreamSim::run(base_config(), 1).expect("valid config");
        assert_eq!(report.delivered, 1000);
        assert_eq!(report.lost_channel, 0);
        assert_eq!(report.dropped_tx + report.dropped_rx, 0);
        assert_eq!(report.loss_rate(), 0.0);
        assert!(report.mean_latency_ticks >= 8.0); // ≥ service + delay
    }

    #[test]
    fn lossy_channel_loses_packets_without_retransmission() {
        let mut cfg = base_config();
        cfg.channel = ChannelModel {
            p_good_to_bad: 0.0,
            p_bad_to_good: 1.0,
            loss_good: 0.2,
            loss_bad: 0.2,
            delay_ticks: 3,
        };
        let report = StreamSim::run(cfg, 2).expect("valid config");
        assert!(report.lost_channel > 100, "lost {}", report.lost_channel);
        let loss = report.loss_rate();
        assert!((loss - 0.2).abs() < 0.05, "loss rate {loss}");
    }

    #[test]
    fn retransmission_recovers_losses() {
        let mut cfg = base_config();
        cfg.channel = ChannelModel {
            p_good_to_bad: 0.0,
            p_bad_to_good: 1.0,
            loss_good: 0.2,
            loss_bad: 0.2,
            delay_ticks: 3,
        };
        cfg.max_retransmissions = 5;
        let report = StreamSim::run(cfg, 2).expect("valid config");
        assert!(report.retransmissions > 100);
        assert!(
            report.loss_rate() < 0.02,
            "loss rate {}",
            report.loss_rate()
        );
    }

    #[test]
    fn slow_sink_fills_rx_buffer() {
        let mut cfg = base_config();
        cfg.sink_interval = 40; // sink 4× slower than source
        let report = StreamSim::run(cfg, 3).expect("valid config");
        assert!(report.dropped_rx > 0, "expected Rx overflow");
        assert!(report.rx_occupancy_peak >= 15.0);
    }

    #[test]
    fn slow_channel_fills_tx_buffer() {
        let mut cfg = base_config();
        cfg.channel_service = 40; // channel 4× slower than source
        let report = StreamSim::run(cfg, 4).expect("valid config");
        assert!(report.dropped_tx > 0, "expected Tx overflow");
    }

    #[test]
    fn bursty_channel_has_bursty_loss() {
        let mut cfg = base_config();
        cfg.packet_count = 20_000;
        cfg.channel = ChannelModel::bursty_wireless(3);
        let report = StreamSim::run(cfg, 5).expect("valid config");
        let expected = cfg.channel.average_loss();
        let measured = report.loss_rate();
        assert!(
            (measured - expected).abs() < 0.03,
            "measured {measured}, expected ≈ {expected}"
        );
    }

    #[test]
    fn config_validation() {
        let mut cfg = base_config();
        cfg.source_interval = 0;
        assert!(StreamSim::run(cfg, 1).is_err());
        let mut cfg = base_config();
        cfg.tx_capacity = 0;
        assert!(StreamSim::run(cfg, 1).is_err());
        let mut cfg = base_config();
        cfg.channel.loss_good = 1.5;
        assert!(StreamSim::run(cfg, 1).is_err());
    }

    #[test]
    fn channel_steady_state_math() {
        let ch = ChannelModel::bursty_wireless(1);
        let b = ch.bad_state_fraction();
        assert!((b - 0.01 / 0.11).abs() < 1e-12);
        assert!(ch.average_loss() > 0.0 && ch.average_loss() < 0.1);
        assert_eq!(ChannelModel::lossless(1).average_loss(), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = StreamSim::run(base_config(), 7).expect("valid");
        let b = StreamSim::run(base_config(), 7).expect("valid");
        assert_eq!(a, b);
    }

    /// The empty-session edge case the `dms-serve` load generator hits:
    /// a session admitted and torn down before emitting anything must
    /// report clean zero rates, never NaN.
    #[test]
    fn zero_packet_run_has_zero_rates() {
        let r = StreamReport {
            delivered: 0,
            lost_channel: 0,
            dropped_tx: 0,
            dropped_rx: 0,
            retransmissions: 0,
            mean_latency_ticks: 0.0,
            jitter_ticks: 0.0,
            rx_occupancy_avg: 0.0,
            rx_occupancy_peak: 0.0,
            duration_ticks: 0,
        };
        for (name, rate) in [
            ("loss_rate", r.loss_rate()),
            ("delivery_rate", r.delivery_rate()),
            ("buffer_drop_rate", r.buffer_drop_rate()),
            ("retransmission_rate", r.retransmission_rate()),
        ] {
            assert!(rate == 0.0, "{name} must be 0.0 on empty runs, got {rate}");
        }
    }

    #[test]
    fn rate_accessors_partition_the_emitted_packets() {
        let mut cfg = base_config();
        cfg.channel = ChannelModel::bursty_wireless(3);
        cfg.max_retransmissions = 2;
        cfg.sink_interval = 15;
        let r = StreamSim::run(cfg, 13).expect("valid");
        assert!(
            (r.delivery_rate() + r.loss_rate() - 1.0).abs() < 1e-12,
            "delivery and loss must partition"
        );
        assert!(r.buffer_drop_rate() <= r.loss_rate() + 1e-12);
        assert!(r.retransmission_rate() >= 0.0);
    }

    #[test]
    fn conservation_of_packets() {
        let mut cfg = base_config();
        cfg.channel = ChannelModel::bursty_wireless(3);
        cfg.max_retransmissions = 2;
        let r = StreamSim::run(cfg, 11).expect("valid");
        assert_eq!(
            r.delivered + r.lost_channel + r.dropped_tx + r.dropped_rx,
            cfg.packet_count,
            "every emitted packet must be accounted for"
        );
    }
}
