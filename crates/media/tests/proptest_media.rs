//! Property-based tests for the media models.

use dms_media::fgs::{FgsEncoder, BIT_PLANES};
use dms_media::image::{ImageModel, QuantizerChoice};
use dms_media::stream::{ChannelModel, StreamConfig, StreamSim};
use dms_media::trace_gen::VideoTraceGenerator;
use dms_sim::SimRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The stream simulator conserves packets for any valid
    /// configuration: delivered + lost + dropped = emitted.
    #[test]
    fn stream_conserves_packets(
        seed in 0u64..500,
        source_interval in 1u64..30,
        sink_interval in 1u64..30,
        channel_service in 1u64..30,
        tx_cap in 1usize..24,
        rx_cap in 1usize..24,
        loss in 0.0f64..0.4,
        retx in 0u32..4,
    ) {
        let cfg = StreamConfig {
            source_interval,
            packet_count: 400,
            tx_capacity: tx_cap,
            rx_capacity: rx_cap,
            sink_interval,
            channel_service,
            channel: ChannelModel {
                p_good_to_bad: 0.02,
                p_bad_to_good: 0.2,
                loss_good: loss * 0.2,
                loss_bad: loss,
                delay_ticks: 3,
            },
            max_retransmissions: retx,
        };
        let r = StreamSim::run(cfg, seed).expect("valid config");
        prop_assert_eq!(
            r.delivered + r.lost_channel + r.dropped_tx + r.dropped_rx,
            400,
            "packet conservation violated"
        );
        prop_assert!((0.0..=1.0).contains(&r.loss_rate()));
        prop_assert!(r.rx_occupancy_peak <= rx_cap as f64);
        if r.delivered > 0 {
            prop_assert!(r.mean_latency_ticks >= channel_service as f64);
        }
    }

    /// Video traces always have positive sizes, correct GOP typing and
    /// the configured length.
    #[test]
    fn traces_are_structurally_sound(seed in 0u64..300, count in 1usize..300) {
        let generator = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let frames = generator.generate(count, &mut SimRng::new(seed));
        prop_assert_eq!(frames.len(), count);
        for (i, f) in frames.iter().enumerate() {
            prop_assert_eq!(f.index, i as u64);
            prop_assert!(f.bytes >= 1);
            let expected = generator.pattern()[i % generator.pattern().len()];
            prop_assert_eq!(f.kind, expected);
        }
    }

    /// FGS layering conserves bits for arbitrary base fractions.
    #[test]
    fn fgs_layering_conserves_bits(
        seed in 0u64..200,
        base_fraction in 0.05f64..0.95,
        frames in 1usize..40,
    ) {
        let generator = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let encoder =
            FgsEncoder::new(base_fraction, 30.0, 12.0).expect("fraction in (0,1)");
        let mut rng = SimRng::new(seed);
        let raw = generator.generate(frames, &mut rng);
        let mut rng2 = SimRng::new(seed);
        let coded = encoder.encode(&generator, frames, &mut rng2);
        prop_assert_eq!(raw.len(), coded.len());
        for (r, c) in raw.iter().zip(&coded) {
            prop_assert_eq!(c.total_bits(), r.bytes * 8, "bits must be conserved");
            prop_assert_eq!(c.plane_bits.len(), BIT_PLANES);
            prop_assert!(c.base_psnr_db > 0.0);
        }
    }

    /// Image rate–distortion: PSNR strictly increases with rate and
    /// strictly decreases with BER.
    #[test]
    fn image_psnr_monotone(bpp in 0.2f64..7.0, ber_exp in 2.0f64..8.0) {
        let image = ImageModel::new(128, 128, 2500.0).expect("valid");
        let q1 = QuantizerChoice::new(bpp).expect("positive");
        let q2 = QuantizerChoice::new(bpp + 0.5).expect("positive");
        prop_assert!(image.psnr_db(q2) > image.psnr_db(q1));
        let ber = 10f64.powf(-ber_exp);
        prop_assert!(image.psnr_with_errors_db(q1, ber) <= image.psnr_db(q1));
        prop_assert!(
            image.psnr_with_errors_db(q1, ber * 10.0) <= image.psnr_with_errors_db(q1, ber)
        );
    }
}
