//! Property-based tests for the ambient-multimedia models.

use dms_ambient::faults::SensorPopulation;
use dms_ambient::smartspace::SmartSpace;
use proptest::prelude::*;

proptest! {
    /// k-of-n availability is a probability, non-increasing in time and
    /// in k, non-decreasing in n.
    #[test]
    fn availability_monotonicity(
        n in 1usize..20,
        k in 0usize..20,
        rate in 0.01f64..1.0,
        t in 0.0f64..20.0,
    ) {
        let pop = SensorPopulation::new(n, rate).expect("valid");
        let a = pop.availability(k, t);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
        // Later is never better (no repair).
        prop_assert!(pop.availability(k, t + 1.0) <= a + 1e-12);
        // Needing more sensors is never easier.
        prop_assert!(pop.availability(k + 1, t) <= a + 1e-12);
        // A larger population is never worse.
        let bigger = SensorPopulation::new(n + 1, rate).expect("valid");
        prop_assert!(bigger.availability(k, t) >= a - 1e-12);
    }

    /// The closed-form availability equals 1 at t=0 whenever k ≤ n, and
    /// 0 whenever k > n at any time.
    #[test]
    fn availability_boundaries(n in 1usize..15, k in 0usize..30, rate in 0.01f64..1.0) {
        let pop = SensorPopulation::new(n, rate).expect("valid");
        if k <= n {
            prop_assert!((pop.availability(k, 0.0) - 1.0).abs() < 1e-12);
        } else {
            prop_assert!(pop.availability(k, 5.0) == 0.0);
        }
    }

    /// Smart-space utility is bounded by its ceiling and degrades
    /// monotonically over time for any failure rate.
    #[test]
    fn smartspace_utility_bounded_and_monotone(rate in 0.005f64..0.5, t in 0.0f64..30.0) {
        let space = SmartSpace::home_preset(rate).expect("preset valid");
        let now = space.evaluate(t).expect("converges");
        let later = space.evaluate(t + 1.0).expect("converges");
        prop_assert!(now.expected_utility <= now.max_utility + 1e-12);
        prop_assert!(now.expected_utility >= -1e-12);
        prop_assert!(later.expected_utility <= now.expected_utility + 1e-12);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&now.degradation()));
    }

    /// lifetime_to_availability is consistent with availability itself.
    #[test]
    fn lifetime_inverse_is_consistent(n in 2usize..12, rate in 0.02f64..0.5, target in 0.5f64..0.99) {
        let pop = SensorPopulation::new(n, rate).expect("valid");
        let k = n / 2 + 1;
        let t = pop.lifetime_to_availability(k, target);
        if t > 0.0 {
            prop_assert!(pop.availability(k, t * 0.99) >= target - 1e-6);
            prop_assert!(pop.availability(k, t * 1.01 + 1e-6) <= target + 1e-6);
        }
    }
}
