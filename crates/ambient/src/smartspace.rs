//! Smart-space stochastic QoS evaluation — experiment E11.
//!
//! Combines the §5 ingredients: a stochastic user, services with
//! k-of-n sensor redundancy, and graceful degradation. The expected
//! delivered utility is
//!
//! ```text
//! U(t) = Σ_states π(state) · availability(service(state), t) · utility(state)
//! ```
//!
//! — the "overall performance model" that §5 says must incorporate user
//! behaviour.

use serde::{Deserialize, Serialize};

use crate::error::AmbientError;
use crate::faults::SensorPopulation;
use crate::user::UserBehaviorModel;

/// One ambient service (e.g. presence tracking, gesture input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Service {
    /// Name.
    pub name: String,
    /// The sensor population backing the service.
    pub sensors: SensorPopulation,
    /// Minimum alive sensors for the service to work.
    pub required: usize,
}

/// A smart space: a user model plus the services each activity needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmartSpace {
    user: UserBehaviorModel,
    services: Vec<Service>,
    /// `needs[state]` = indices of the services that state depends on.
    needs: Vec<Vec<usize>>,
    /// Utility delivered by each state when fully served.
    utility: Vec<f64>,
}

/// Evaluated smart-space quality at one point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmartSpaceReport {
    /// Evaluation time.
    pub time: f64,
    /// Expected delivered utility.
    pub expected_utility: f64,
    /// Expected utility with every service up (the ceiling).
    pub max_utility: f64,
    /// Per-service availability at `time`.
    pub service_availability: Vec<f64>,
}

impl SmartSpaceReport {
    /// Delivered fraction of the utility ceiling.
    #[must_use]
    pub fn degradation(&self) -> f64 {
        if self.max_utility <= 0.0 {
            0.0
        } else {
            1.0 - self.expected_utility / self.max_utility
        }
    }
}

impl SmartSpace {
    /// Creates a smart space.
    ///
    /// # Errors
    ///
    /// * [`AmbientError::InvalidParameter`] if the per-state tables do
    ///   not match the user model's state count.
    /// * [`AmbientError::UnknownIndex`] if a state needs a missing
    ///   service.
    pub fn new(
        user: UserBehaviorModel,
        services: Vec<Service>,
        needs: Vec<Vec<usize>>,
        utility: Vec<f64>,
    ) -> Result<Self, AmbientError> {
        if needs.len() != user.state_count() || utility.len() != user.state_count() {
            return Err(AmbientError::InvalidParameter("per-state tables"));
        }
        for state_needs in &needs {
            for &svc in state_needs {
                if svc >= services.len() {
                    return Err(AmbientError::UnknownIndex("service", svc));
                }
            }
        }
        Ok(SmartSpace {
            user,
            services,
            needs,
            utility,
        })
    }

    /// A home preset: the five-state user of
    /// [`UserBehaviorModel::home_preset`], presence/display/audio
    /// services on small sensor populations, with media states depending
    /// on more services.
    ///
    /// # Errors
    ///
    /// Never fails in practice; keeps the constructor signature uniform.
    pub fn home_preset(sensor_failure_rate: f64) -> Result<Self, AmbientError> {
        let user = UserBehaviorModel::home_preset()?;
        let services = vec![
            Service {
                name: "presence".into(),
                sensors: SensorPopulation::new(6, sensor_failure_rate)?,
                required: 2,
            },
            Service {
                name: "display".into(),
                sensors: SensorPopulation::new(3, sensor_failure_rate)?,
                required: 1,
            },
            Service {
                name: "audio".into(),
                sensors: SensorPopulation::new(4, sensor_failure_rate)?,
                required: 2,
            },
        ];
        // idle needs presence; music needs presence+audio; browsing needs
        // presence+display; video and video-call need all three.
        let needs = vec![
            vec![0],
            vec![0, 2],
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 1, 2],
        ];
        let utility = vec![0.1, 0.5, 0.6, 1.0, 1.0];
        SmartSpace::new(user, services, needs, utility)
    }

    /// The user model.
    #[must_use]
    pub fn user(&self) -> &UserBehaviorModel {
        &self.user
    }

    /// Evaluates expected utility at time `t` since deployment.
    ///
    /// # Errors
    ///
    /// Propagates Markov-analysis failures.
    pub fn evaluate(&self, t: f64) -> Result<SmartSpaceReport, AmbientError> {
        let pi = self.user.stationary()?;
        let availability: Vec<f64> = self
            .services
            .iter()
            .map(|s| s.sensors.availability(s.required, t))
            .collect();
        let mut expected = 0.0;
        let mut ceiling = 0.0;
        for (state, &p) in pi.iter().enumerate() {
            let avail: f64 = self.needs[state]
                .iter()
                .map(|&svc| availability[svc])
                .product();
            expected += p * avail * self.utility[state];
            ceiling += p * self.utility[state];
        }
        Ok(SmartSpaceReport {
            time: t,
            expected_utility: expected,
            max_utility: ceiling,
            service_availability: availability,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        let user = UserBehaviorModel::home_preset().expect("preset valid");
        // Wrong table lengths.
        assert!(SmartSpace::new(user.clone(), vec![], vec![], vec![]).is_err());
        // Missing service index.
        let needs = vec![vec![7], vec![], vec![], vec![], vec![]];
        let utility = vec![1.0; 5];
        assert!(matches!(
            SmartSpace::new(user, vec![], needs, utility),
            Err(AmbientError::UnknownIndex("service", 7))
        ));
    }

    #[test]
    fn fresh_deployment_delivers_ceiling() {
        let space = SmartSpace::home_preset(0.05).expect("preset valid");
        let report = space.evaluate(0.0).expect("converges");
        assert!((report.expected_utility - report.max_utility).abs() < 1e-9);
        assert!(report.degradation().abs() < 1e-9);
        assert!(report
            .service_availability
            .iter()
            .all(|&a| (a - 1.0).abs() < 1e-9));
    }

    #[test]
    fn utility_degrades_over_time() {
        let space = SmartSpace::home_preset(0.05).expect("preset valid");
        let early = space.evaluate(1.0).expect("converges");
        let late = space.evaluate(20.0).expect("converges");
        assert!(late.expected_utility < early.expected_utility);
        assert!(late.degradation() > early.degradation());
        assert!(late.degradation() <= 1.0);
    }

    #[test]
    fn higher_failure_rate_degrades_faster() {
        let reliable = SmartSpace::home_preset(0.01).expect("preset valid");
        let flaky = SmartSpace::home_preset(0.2).expect("preset valid");
        let t = 5.0;
        assert!(
            flaky.evaluate(t).expect("converges").degradation()
                > reliable.evaluate(t).expect("converges").degradation()
        );
    }

    #[test]
    fn graceful_degradation_is_graceful() {
        // Utility decreases smoothly: no cliff between adjacent times.
        let space = SmartSpace::home_preset(0.1).expect("preset valid");
        let mut last = space.evaluate(0.0).expect("converges").expected_utility;
        for step in 1..=20 {
            let u = space
                .evaluate(f64::from(step))
                .expect("converges")
                .expected_utility;
            assert!(u <= last + 1e-12);
            assert!(last - u < 0.2, "utility cliff at step {step}");
            last = u;
        }
    }
}
