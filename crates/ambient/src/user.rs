//! Stochastic user-behaviour models.
//!
//! "Since users tend to behave non-deterministically, there is room for
//! stochastic modeling based on capturing the uncertainty in users
//! behavior" (§5, \[34\]). A [`UserBehaviorModel`] is a DTMC over named
//! activity states, each carrying a bandwidth/compute demand; its
//! stationary distribution yields the *expected* load an ambient space
//! must provision for — the average-case design principle of §2.

use dms_analysis::DiscreteMarkovChain;
use dms_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::error::AmbientError;

/// One user-activity state and its service demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityState {
    /// Name ("idle", "video-call", …).
    pub name: String,
    /// Bandwidth demand in bits/s.
    pub bandwidth_bps: f64,
    /// Compute demand in cycles/s.
    pub compute_cps: f64,
}

/// A DTMC over user activities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserBehaviorModel {
    states: Vec<ActivityState>,
    chain: DiscreteMarkovChain,
}

impl UserBehaviorModel {
    /// Creates a model from states and a row-stochastic transition
    /// matrix (per time slot, e.g. one minute).
    ///
    /// # Errors
    ///
    /// * [`AmbientError::InvalidParameter`] if the state list is empty
    ///   or its length disagrees with the matrix.
    /// * [`AmbientError::Analysis`] if the matrix is not stochastic.
    pub fn new(
        states: Vec<ActivityState>,
        transitions: Vec<Vec<f64>>,
    ) -> Result<Self, AmbientError> {
        if states.is_empty() || states.len() != transitions.len() {
            return Err(AmbientError::InvalidParameter("states"));
        }
        let chain = DiscreteMarkovChain::new(transitions)?;
        Ok(UserBehaviorModel { states, chain })
    }

    /// A five-state home-media preset: idle, music, browsing, video and
    /// video-call, with sticky diagonal behaviour.
    ///
    /// # Errors
    ///
    /// Never fails in practice; keeps the constructor signature uniform.
    pub fn home_preset() -> Result<Self, AmbientError> {
        let states = vec![
            ActivityState {
                name: "idle".into(),
                bandwidth_bps: 1e3,
                compute_cps: 1e6,
            },
            ActivityState {
                name: "music".into(),
                bandwidth_bps: 128e3,
                compute_cps: 20e6,
            },
            ActivityState {
                name: "browsing".into(),
                bandwidth_bps: 500e3,
                compute_cps: 80e6,
            },
            ActivityState {
                name: "video".into(),
                bandwidth_bps: 3e6,
                compute_cps: 300e6,
            },
            ActivityState {
                name: "video-call".into(),
                bandwidth_bps: 1.5e6,
                compute_cps: 400e6,
            },
        ];
        let transitions = vec![
            vec![0.80, 0.08, 0.07, 0.04, 0.01],
            vec![0.10, 0.80, 0.05, 0.04, 0.01],
            vec![0.10, 0.05, 0.75, 0.08, 0.02],
            vec![0.05, 0.02, 0.05, 0.85, 0.03],
            vec![0.10, 0.02, 0.03, 0.05, 0.80],
        ];
        UserBehaviorModel::new(states, transitions)
    }

    /// Number of activity states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The states in index order.
    #[must_use]
    pub fn states(&self) -> &[ActivityState] {
        &self.states
    }

    /// The stationary distribution over activities.
    ///
    /// # Errors
    ///
    /// Propagates solver non-convergence as [`AmbientError::Analysis`].
    pub fn stationary(&self) -> Result<Vec<f64>, AmbientError> {
        Ok(self.chain.stationary_gauss_seidel()?)
    }

    /// Expected bandwidth demand (bits/s) under the stationary
    /// behaviour.
    ///
    /// # Errors
    ///
    /// Propagates solver non-convergence.
    pub fn expected_bandwidth_bps(&self) -> Result<f64, AmbientError> {
        let pi = self.stationary()?;
        let demands: Vec<f64> = self.states.iter().map(|s| s.bandwidth_bps).collect();
        Ok(self.chain.expected_reward(&pi, &demands))
    }

    /// Expected compute demand (cycles/s) under the stationary
    /// behaviour.
    ///
    /// # Errors
    ///
    /// Propagates solver non-convergence.
    pub fn expected_compute_cps(&self) -> Result<f64, AmbientError> {
        let pi = self.stationary()?;
        let demands: Vec<f64> = self.states.iter().map(|s| s.compute_cps).collect();
        Ok(self.chain.expected_reward(&pi, &demands))
    }

    /// Simulates `slots` activity slots, returning the visited state
    /// indices (for cross-checking the analysis by simulation, §2.2).
    #[must_use]
    pub fn simulate(&self, slots: usize, rng: &mut SimRng) -> Vec<usize> {
        let matrix = self.chain.transition_matrix();
        let mut state = 0usize;
        (0..slots)
            .map(|_| {
                let current = state;
                state = rng.weighted_choice(&matrix[state]).unwrap_or(state);
                current
            })
            .collect()
    }

    /// Per-slot *session arrival* counts for a population of `users`
    /// independent walkers of this DTMC — the closed-loop trace export
    /// that lets user behaviour (not an open-loop rate) drive a
    /// streaming server. A session arrives at slot `t` when a user
    /// transitions *into* an activity demanding at least
    /// `min_bandwidth_bps` from one below that threshold (idle →
    /// video starts a stream; video → video-call hands one over
    /// without a new arrival).
    ///
    /// Every user walks its own `("ambient-user", u)` substream of
    /// `seed`, so the trace is byte-deterministic, independent of
    /// population iteration order, and each user's path is stable as
    /// the population grows.
    #[must_use]
    pub fn session_arrivals(
        &self,
        slots: usize,
        users: usize,
        min_bandwidth_bps: f64,
        seed: u64,
    ) -> Vec<u32> {
        let matrix = self.chain.transition_matrix();
        let streaming: Vec<bool> = self
            .states
            .iter()
            .map(|s| s.bandwidth_bps >= min_bandwidth_bps)
            .collect();
        let master = SimRng::new(seed);
        let mut counts = vec![0u32; slots];
        for u in 0..users {
            let mut rng = master.substream("ambient-user", u as u64);
            let mut state = 0usize;
            for c in counts.iter_mut() {
                let next = rng.weighted_choice(&matrix[state]).unwrap_or(state);
                if streaming[next] && !streaming[state] {
                    *c += 1;
                }
                state = next;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(UserBehaviorModel::new(vec![], vec![]).is_err());
        let states = vec![ActivityState {
            name: "a".into(),
            bandwidth_bps: 1.0,
            compute_cps: 1.0,
        }];
        // Non-stochastic matrix.
        assert!(UserBehaviorModel::new(states, vec![vec![0.7]]).is_err());
    }

    #[test]
    fn preset_stationary_sums_to_one() {
        let m = UserBehaviorModel::home_preset().expect("preset valid");
        let pi = m.stationary().expect("converges");
        assert_eq!(pi.len(), 5);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The sticky idle state dominates.
        let idle = pi[0];
        assert!(
            pi.iter().skip(1).all(|&p| p <= idle),
            "idle should be modal: {pi:?}"
        );
    }

    #[test]
    fn expected_demands_are_between_extremes() {
        let m = UserBehaviorModel::home_preset().expect("preset valid");
        let bw = m.expected_bandwidth_bps().expect("converges");
        assert!(bw > 1e3 && bw < 3e6, "expected bandwidth {bw}");
        let cc = m.expected_compute_cps().expect("converges");
        assert!(cc > 1e6 && cc < 400e6);
    }

    #[test]
    fn simulation_matches_stationary() {
        let m = UserBehaviorModel::home_preset().expect("preset valid");
        let pi = m.stationary().expect("converges");
        let visits = m.simulate(200_000, &mut SimRng::new(5));
        let mut counts = [0usize; 5];
        for v in visits {
            counts[v] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            let empirical = c as f64 / 200_000.0;
            assert!(
                (empirical - pi[s]).abs() < 0.02,
                "state {s}: empirical {empirical}, analytical {}",
                pi[s]
            );
        }
    }

    #[test]
    fn session_arrivals_are_deterministic_and_population_stable() {
        let m = UserBehaviorModel::home_preset().expect("preset valid");
        let a = m.session_arrivals(200, 30, 1e6, 9);
        assert_eq!(
            a,
            m.session_arrivals(200, 30, 1e6, 9),
            "same seed, same trace"
        );
        assert_eq!(a.len(), 200);
        // Each user starts at most one session per slot.
        assert!(a.iter().all(|&c| c <= 30));
        // The preset visits video/video-call often enough for a
        // 30-user population to produce arrivals over 200 slots.
        assert!(a.iter().map(|&c| u64::from(c)).sum::<u64>() > 0);
        // Per-user substreams: growing the population keeps the
        // existing users' contributions (the prefix population's
        // trace is a lower bound slot by slot).
        let bigger = m.session_arrivals(200, 60, 1e6, 9);
        assert!(a.iter().zip(&bigger).all(|(s, b)| s <= b));
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let m = UserBehaviorModel::home_preset().expect("preset valid");
        assert_eq!(
            m.simulate(100, &mut SimRng::new(1)),
            m.simulate(100, &mut SimRng::new(1))
        );
    }
}
