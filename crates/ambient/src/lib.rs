//! # dms-ambient — ambient multimedia in smart spaces
//!
//! §5 of the paper: ambient multimedia systems must "operate with
//! limited resources and failing parts"; and "since users tend to
//! behave non-deterministically, there is room for stochastic modeling
//! based on capturing the uncertainty in users behavior" \[34\]. This
//! crate implements both halves (experiment E11):
//!
//! * [`user`] — user-activity Markov models with per-state service
//!   demands, analysed through `dms-analysis` for their stationary
//!   behaviour;
//! * [`faults`] — sensor populations with exponential failures and
//!   k-of-n service redundancy \[33\], with and without a repair crew
//!   (the repairable case is a CTMC over the alive-sensor count);
//! * [`smartspace`] — the combined stochastic QoS evaluation: expected
//!   delivered utility = Σ over user states of π(state) × availability
//!   of the services that state needs.
//!
//! ## Example
//!
//! ```
//! use dms_ambient::user::UserBehaviorModel;
//!
//! # fn main() -> Result<(), dms_ambient::AmbientError> {
//! let user = UserBehaviorModel::home_preset()?;
//! let pi = user.stationary()?;
//! assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod faults;
pub mod smartspace;
pub mod user;

pub use error::AmbientError;
pub use faults::{RepairableSensorPopulation, SensorPopulation};
pub use smartspace::{SmartSpace, SmartSpaceReport};
pub use user::UserBehaviorModel;
