//! Sensor populations under failure.
//!
//! §5: ambient systems must be "able to operate with limited resources
//! and failing parts", echoing the fault-tolerance study of \[33\]. A
//! [`SensorPopulation`] holds `n` sensors with exponential lifetimes; a
//! service backed by the population is up while at least `k` sensors
//! are alive (k-of-n redundancy). Both the closed-form availability and
//! a Monte-Carlo estimate are provided, so experiments can verify one
//! against the other (§2.2's simulation-vs-analysis duality).
//!
//! The Monte-Carlo estimator samples sensor-failure schedules from the
//! workspace-wide fault engine, [`dms_sim::FaultPlan`]
//! ([`dms_sim::FaultSpec::ComponentFailures`] +
//! [`dms_sim::FaultPlan::alive_components`]) — the same vocabulary that
//! injects link/session faults into `dms-serve`, so there is exactly
//! one fault-event model across the workspace.

use dms_sim::{FaultPlan, FaultSpec, SimRng};
use serde::{Deserialize, Serialize};

use crate::error::AmbientError;

/// Fault-plan slots per unit of population model time. The plan's
/// schedule is integer-slotted; at 1024 slots per unit time the
/// discretisation shifts the evaluation time by at most `1/2048` of a
/// unit — far below Monte-Carlo noise at any feasible trial count.
const SLOTS_PER_UNIT_TIME: u64 = 1024;

/// A population of identical sensors with exponential failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorPopulation {
    /// Number of deployed sensors.
    pub sensors: usize,
    /// Failure rate λ per sensor per unit time (no repair).
    pub failure_rate: f64,
}

impl SensorPopulation {
    /// Creates a population.
    ///
    /// # Errors
    ///
    /// Returns [`AmbientError::InvalidParameter`] for zero sensors or a
    /// non-positive/non-finite rate.
    pub fn new(sensors: usize, failure_rate: f64) -> Result<Self, AmbientError> {
        if sensors == 0 || sensors > u32::MAX as usize {
            return Err(AmbientError::InvalidParameter("sensors"));
        }
        if !(failure_rate.is_finite() && failure_rate > 0.0) {
            return Err(AmbientError::InvalidParameter("failure_rate"));
        }
        Ok(SensorPopulation {
            sensors,
            failure_rate,
        })
    }

    /// Probability one sensor is still alive at time `t`.
    #[must_use]
    pub fn sensor_survival(&self, t: f64) -> f64 {
        (-self.failure_rate * t.max(0.0)).exp()
    }

    /// Closed-form availability of a k-of-n service at time `t`:
    /// `Σ_{i=k}^{n} C(n,i) p^i (1−p)^(n−i)` with `p` the sensor
    /// survival probability.
    ///
    /// Returns 0 for `k > n` and 1 for `k == 0`.
    #[must_use]
    pub fn availability(&self, k: usize, t: f64) -> f64 {
        let n = self.sensors;
        if k == 0 {
            return 1.0;
        }
        if k > n {
            return 0.0;
        }
        let p = self.sensor_survival(t);
        (k..=n).map(|i| binomial_pmf(n, i, p)).sum()
    }

    /// Monte-Carlo estimate of the k-of-n availability at time `t` over
    /// `trials` populations.
    ///
    /// Each trial compiles one [`FaultPlan`] sensor-failure schedule
    /// ([`FaultSpec::ComponentFailures`], exponential lifetimes drawn
    /// at compile time from `rng`) and takes the census at the slot
    /// nearest `t`. The plan clips events past its horizon, so the
    /// census slot sits *inside* the horizon by construction.
    #[must_use]
    pub fn availability_mc(&self, k: usize, t: f64, trials: usize, rng: &mut SimRng) -> f64 {
        if trials == 0 {
            return 0.0;
        }
        let eval_slot = (t.max(0.0) * SLOTS_PER_UNIT_TIME as f64).round() as u64;
        let spec = FaultSpec::ComponentFailures {
            components: self.sensors as u32,
            failure_rate: self.failure_rate / SLOTS_PER_UNIT_TIME as f64,
        };
        let mut up = 0usize;
        for _ in 0..trials {
            let plan = FaultPlan::compile_with(&[spec], eval_slot + 1, rng)
                .expect("a validated population always compiles");
            if plan.alive_components(self.sensors as u32, eval_slot) as usize >= k {
                up += 1;
            }
        }
        up as f64 / trials as f64
    }

    /// The time at which the k-of-n availability first drops below
    /// `target` (bisection; availability is non-increasing in time).
    ///
    /// Returns 0 if it is already below at `t = 0`.
    #[must_use]
    pub fn lifetime_to_availability(&self, k: usize, target: f64) -> f64 {
        if self.availability(k, 0.0) < target {
            return 0.0;
        }
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        while self.availability(k, hi) >= target && hi < 1e12 {
            hi *= 2.0;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.availability(k, mid) >= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// A sensor population with a repair crew: failures at rate `λ` per
/// alive sensor, repairs at rate `μ` (one crew, one sensor at a time) —
/// a birth–death CTMC over the alive-sensor count whose steady state
/// gives the *long-run* availability of k-of-n services. This is the
/// §5 "operate with limited resources and failing parts" story once
/// maintenance exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairableSensorPopulation {
    sensors: usize,
    failure_rate: f64,
    repair_rate: f64,
}

impl RepairableSensorPopulation {
    /// Creates a repairable population.
    ///
    /// # Errors
    ///
    /// Returns [`AmbientError::InvalidParameter`] for zero sensors or
    /// non-positive rates.
    pub fn new(sensors: usize, failure_rate: f64, repair_rate: f64) -> Result<Self, AmbientError> {
        if sensors == 0 {
            return Err(AmbientError::InvalidParameter("sensors"));
        }
        if !(failure_rate.is_finite() && failure_rate > 0.0) {
            return Err(AmbientError::InvalidParameter("failure_rate"));
        }
        if !(repair_rate.is_finite() && repair_rate > 0.0) {
            return Err(AmbientError::InvalidParameter("repair_rate"));
        }
        Ok(RepairableSensorPopulation {
            sensors,
            failure_rate,
            repair_rate,
        })
    }

    /// The birth–death generator over the alive count `0..=n`:
    /// `i → i−1` at `i·λ` (any alive sensor can fail), `i → i+1` at `μ`
    /// (a single repair crew).
    fn chain(&self) -> Result<dms_analysis::ContinuousMarkovChain, AmbientError> {
        let n = self.sensors;
        let mut q = vec![vec![0.0; n + 1]; n + 1];
        for alive in 0..=n {
            if alive > 0 {
                q[alive][alive - 1] = alive as f64 * self.failure_rate;
            }
            if alive < n {
                q[alive][alive + 1] = self.repair_rate;
            }
            q[alive][alive] = -(q[alive].iter().sum::<f64>());
        }
        Ok(dms_analysis::ContinuousMarkovChain::new(q)?)
    }

    /// Long-run distribution over the number of alive sensors.
    ///
    /// # Errors
    ///
    /// Propagates Markov-analysis failures.
    pub fn steady_state_alive(&self) -> Result<Vec<f64>, AmbientError> {
        Ok(self.chain()?.stationary()?)
    }

    /// Long-run availability of a k-of-n service: `Σ_{i≥k} π_i`.
    ///
    /// # Errors
    ///
    /// Propagates Markov-analysis failures.
    pub fn steady_state_availability(&self, k: usize) -> Result<f64, AmbientError> {
        if k == 0 {
            return Ok(1.0);
        }
        if k > self.sensors {
            return Ok(0.0);
        }
        let pi = self.steady_state_alive()?;
        Ok(pi[k..].iter().sum())
    }

    /// Availability at time `t` starting from a fully healthy
    /// population (transient analysis by uniformisation).
    ///
    /// # Errors
    ///
    /// Propagates Markov-analysis failures.
    pub fn availability_at(&self, k: usize, t: f64) -> Result<f64, AmbientError> {
        if k == 0 {
            return Ok(1.0);
        }
        if k > self.sensors {
            return Ok(0.0);
        }
        let mut initial = vec![0.0; self.sensors + 1];
        initial[self.sensors] = 1.0;
        let dist = self.chain()?.transient(&initial, t)?;
        Ok(dist[k..].iter().sum())
    }
}

/// Binomial probability mass `C(n, i) p^i (1−p)^(n−i)`, computed in log
/// space to stay stable for large `n`.
fn binomial_pmf(n: usize, i: usize, p: f64) -> f64 {
    if p <= 0.0 {
        return if i == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if i == n { 1.0 } else { 0.0 };
    }
    let ln_choose = ln_factorial(n) - ln_factorial(i) - ln_factorial(n - i);
    (ln_choose + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp()
}

fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|k| (k as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(SensorPopulation::new(0, 0.1).is_err());
        assert!(SensorPopulation::new(5, 0.0).is_err());
        assert!(SensorPopulation::new(5, f64::NAN).is_err());
    }

    #[test]
    fn survival_decays() {
        let pop = SensorPopulation::new(10, 0.1).expect("valid");
        assert_eq!(pop.sensor_survival(0.0), 1.0);
        assert!(pop.sensor_survival(10.0) < pop.sensor_survival(1.0));
        assert!((pop.sensor_survival(10.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn availability_edge_cases() {
        let pop = SensorPopulation::new(4, 0.1).expect("valid");
        assert_eq!(pop.availability(0, 100.0), 1.0);
        assert_eq!(pop.availability(5, 0.0), 0.0);
        assert!((pop.availability(4, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn redundancy_buys_availability() {
        // 2-of-6 beats 2-of-3 at any positive time.
        let small = SensorPopulation::new(3, 0.2).expect("valid");
        let big = SensorPopulation::new(6, 0.2).expect("valid");
        for t in [0.5, 1.0, 2.0, 5.0] {
            assert!(big.availability(2, t) > small.availability(2, t), "t = {t}");
        }
    }

    #[test]
    fn analysis_matches_monte_carlo() {
        let pop = SensorPopulation::new(8, 0.15).expect("valid");
        let mut rng = SimRng::new(17);
        for &(k, t) in &[(2usize, 1.0f64), (5, 2.0), (8, 0.5)] {
            let exact = pop.availability(k, t);
            let mc = pop.availability_mc(k, t, 40_000, &mut rng);
            assert!(
                (exact - mc).abs() < 0.01,
                "k={k} t={t}: exact {exact}, MC {mc}"
            );
        }
    }

    #[test]
    fn lifetime_to_availability_is_monotone_in_redundancy() {
        let sparse = SensorPopulation::new(4, 0.1).expect("valid");
        let dense = SensorPopulation::new(12, 0.1).expect("valid");
        let t_sparse = sparse.lifetime_to_availability(3, 0.9);
        let t_dense = dense.lifetime_to_availability(3, 0.9);
        assert!(t_dense > t_sparse);
        // Already below target at t = 0.
        assert_eq!(sparse.lifetime_to_availability(5, 0.9), 0.0);
    }

    #[test]
    fn repairable_validation() {
        assert!(RepairableSensorPopulation::new(0, 0.1, 1.0).is_err());
        assert!(RepairableSensorPopulation::new(4, 0.0, 1.0).is_err());
        assert!(RepairableSensorPopulation::new(4, 0.1, 0.0).is_err());
    }

    #[test]
    fn repair_restores_long_run_availability() {
        // Without repair, availability at large t tends to 0; with a fast
        // crew it stays high forever.
        let no_repair = SensorPopulation::new(6, 0.1).expect("valid");
        let repaired = RepairableSensorPopulation::new(6, 0.1, 2.0).expect("valid");
        let k = 4;
        assert!(no_repair.availability(k, 50.0) < 0.01);
        let steady = repaired.steady_state_availability(k).expect("converges");
        assert!(steady > 0.5, "steady availability {steady}");
    }

    #[test]
    fn faster_crews_buy_availability() {
        let slow = RepairableSensorPopulation::new(5, 0.2, 0.2).expect("valid");
        let fast = RepairableSensorPopulation::new(5, 0.2, 5.0).expect("valid");
        let a_slow = slow.steady_state_availability(4).expect("converges");
        let a_fast = fast.steady_state_availability(4).expect("converges");
        assert!(a_fast > a_slow);
    }

    #[test]
    fn repairable_boundaries_and_distribution() {
        let pop = RepairableSensorPopulation::new(4, 0.3, 1.0).expect("valid");
        assert_eq!(pop.steady_state_availability(0).expect("trivial"), 1.0);
        assert_eq!(pop.steady_state_availability(5).expect("trivial"), 0.0);
        let pi = pop.steady_state_alive().expect("converges");
        assert_eq!(pi.len(), 5);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn transient_relaxes_from_perfect_to_steady() {
        let pop = RepairableSensorPopulation::new(6, 0.2, 1.0).expect("valid");
        let k = 4;
        let fresh = pop.availability_at(k, 0.0).expect("valid");
        assert!((fresh - 1.0).abs() < 1e-9);
        let late = pop.availability_at(k, 200.0).expect("valid");
        let steady = pop.steady_state_availability(k).expect("converges");
        assert!(
            (late - steady).abs() < 1e-4,
            "late {late} vs steady {steady}"
        );
        // Availability decreases monotonically from fresh towards steady.
        let mid = pop.availability_at(k, 2.0).expect("valid");
        assert!(mid < fresh && mid > steady - 1e-9);
    }

    #[test]
    fn binomial_pmf_normalises() {
        let total: f64 = (0..=10).map(|i| binomial_pmf(10, i, 0.37)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
    }
}
