//! Error type for the ambient-multimedia models.

use std::error::Error;
use std::fmt;

/// Errors produced by smart-space model construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AmbientError {
    /// A numeric parameter was out of range.
    InvalidParameter(&'static str),
    /// An index referenced a missing state/service/sensor.
    UnknownIndex(&'static str, usize),
    /// An underlying Markov analysis failed.
    Analysis(String),
}

impl fmt::Display for AmbientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmbientError::InvalidParameter(name) => {
                write!(f, "parameter `{name}` is out of range")
            }
            AmbientError::UnknownIndex(what, idx) => write!(f, "unknown {what} index {idx}"),
            AmbientError::Analysis(msg) => write!(f, "markov analysis failed: {msg}"),
        }
    }
}

impl Error for AmbientError {}

impl From<dms_analysis::AnalysisError> for AmbientError {
    fn from(e: dms_analysis::AnalysisError) -> Self {
        AmbientError::Analysis(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(AmbientError::UnknownIndex("service", 4)
            .to_string()
            .contains("service"));
        let e: AmbientError = dms_analysis::AnalysisError::BadDimensions.into();
        assert!(matches!(e, AmbientError::Analysis(_)));
    }

    #[test]
    fn is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<AmbientError>();
    }
}
