//! Property-based tests for the ASIP platform.
//!
//! The crown jewel here is *retargeting equivalence*: for randomly
//! generated straight-line programs, rewriting onto custom instructions
//! must preserve the final registers and memory exactly while never
//! increasing the cycle count.

use dms_asip::extend::{CustomOp, ExtensionCatalog, Identifier};
use dms_asip::isa::{Cond, Instr, Reg};
use dms_asip::iss::{Iss, IssConfig};
use dms_asip::profile::Profile;
use dms_asip::program::{Program, ProgramBuilder};
use dms_asip::retarget::retarget;
use proptest::prelude::*;

/// Strategy: one random fusible (straight-line, register-safe) ALU
/// instruction over registers r1..r8.
fn alu_instr() -> impl Strategy<Value = Instr> {
    let reg = || (1u8..8).prop_map(Reg);
    prop_oneof![
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instr::Add(d, a, b)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instr::Sub(d, a, b)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instr::Mul(d, a, b)),
        (reg(), reg(), -100i64..100).prop_map(|(d, a, i)| Instr::Addi(d, a, i)),
        (reg(), reg(), 0u8..8).prop_map(|(d, a, s)| Instr::Shli(d, a, s)),
        (reg(), reg(), 0u8..8).prop_map(|(d, a, s)| Instr::Shri(d, a, s)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instr::Xor(d, a, b)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instr::And(d, a, b)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instr::Or(d, a, b)),
    ]
}

/// Builds a program that initialises r1..r8 and then loops `trips`
/// times over `body`, accumulating into memory.
fn looped_program(body: &[Instr], trips: i64) -> Program {
    let mut b = ProgramBuilder::new();
    for r in 1..8u8 {
        b.li(Reg(r), i64::from(r) * 3 + 1);
    }
    let (i, n) = (Reg(9), Reg(10));
    b.li(n, trips);
    let top = b.place_label();
    let mut instrs: Vec<Instr> = body.to_vec();
    // Store a body result so the loop is observable in memory.
    instrs.push(Instr::St(Reg(1), i, 100));
    for instr in instrs {
        match instr {
            Instr::Add(d, a, c) => b.add(d, a, c),
            Instr::Sub(d, a, c) => b.sub(d, a, c),
            Instr::Mul(d, a, c) => b.mul(d, a, c),
            Instr::Addi(d, a, imm) => b.addi(d, a, imm),
            Instr::Shli(d, a, s) => b.shli(d, a, s),
            Instr::Shri(d, a, s) => b.shri(d, a, s),
            Instr::Xor(d, a, c) => b.xor(d, a, c),
            Instr::And(d, a, c) => b.and(d, a, c),
            Instr::Or(d, a, c) => b.or(d, a, c),
            Instr::St(src, base, off) => b.st(src, base, off),
            other => unreachable!("strategy produced {other:?}"),
        };
    }
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, n, top);
    b.halt();
    b.build().expect("generated program is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Retargeting any identified candidate set preserves semantics and
    /// never slows the program down.
    #[test]
    fn retargeting_preserves_semantics(
        body in proptest::collection::vec(alu_instr(), 2..10),
        trips in 2i64..40,
    ) {
        let program = looped_program(&body, trips);
        let base_iss = Iss::new(IssConfig::default(), ExtensionCatalog::new());
        let base = base_iss.run(&program).expect("generated program halts");
        let profile = Profile::from_report(&base);
        let candidates = Identifier::default().candidates(&program, &profile);
        let (rewritten, catalog) = retarget(&program, &candidates).expect("rewrites");
        let fast = Iss::new(IssConfig::default(), catalog)
            .run(&rewritten)
            .expect("rewritten program halts");
        prop_assert_eq!(&base.regs, &fast.regs, "register state diverged");
        prop_assert_eq!(&base.memory, &fast.memory, "memory state diverged");
        prop_assert!(fast.cycles <= base.cycles, "{} > {}", fast.cycles, base.cycles);
        if !candidates.is_empty() {
            prop_assert!(rewritten.len() < program.len());
        }
    }

    /// Fused cycle counts never exceed the base sequence and gate costs
    /// grow monotonically with window length.
    #[test]
    fn custom_op_cost_model_sane(body in proptest::collection::vec(alu_instr(), 1..16)) {
        let op = CustomOp::from_window("w", &body).expect("fusible ALU window");
        prop_assert!(op.cycles >= 1);
        prop_assert!(op.cycles <= op.base_cycles());
        if body.len() >= 2 {
            let shorter = CustomOp::from_window("s", &body[..body.len() - 1])
                .expect("prefix is fusible");
            prop_assert!(op.gates >= shorter.gates);
        }
    }

    /// The ISS is deterministic: identical runs agree cycle-for-cycle.
    #[test]
    fn iss_is_deterministic(
        body in proptest::collection::vec(alu_instr(), 1..8),
        trips in 1i64..20,
    ) {
        let program = looped_program(&body, trips);
        let iss = Iss::new(IssConfig::default(), ExtensionCatalog::new());
        let a = iss.run(&program).expect("halts");
        let b = iss.run(&program).expect("halts");
        prop_assert_eq!(a, b);
    }

    /// Predefined blocks never hurt: enabling MAC and ZOL can only
    /// reduce the cycle count, and never changes results.
    #[test]
    fn predefined_blocks_are_pure_wins(
        body in proptest::collection::vec(alu_instr(), 1..8),
        trips in 1i64..20,
    ) {
        let program = looped_program(&body, trips);
        let plain = Iss::new(IssConfig::default(), ExtensionCatalog::new())
            .run(&program)
            .expect("halts");
        let mut cfg = IssConfig::default();
        cfg.mac_block = true;
        cfg.zero_overhead_loops = true;
        let blocks = Iss::new(cfg, ExtensionCatalog::new()).run(&program).expect("halts");
        prop_assert_eq!(&plain.regs, &blocks.regs);
        prop_assert_eq!(&plain.memory, &blocks.memory);
        prop_assert!(blocks.cycles <= plain.cycles);
    }
}
