//! Custom-instruction identification and selection.
//!
//! §3.1(a): "The designer has the choice to freely define highly
//! customized multimedia instructions ... the complexity of an
//! instruction (in terms of number of cycles for execution) may be
//! limited in order to integrate the resulting data path into the
//! existing pipeline architecture of the base core. ... Other
//! restrictions may constrain the total number of extensible
//! instructions."
//!
//! A [`CustomOp`] fuses a straight-line window of base instructions into
//! one instruction. The fused datapath executes up to [`ALU_SLOTS`]
//! chained ALU operations per cycle (multiplies occupy two slots) and
//! [`MEM_PORTS`] memory accesses per cycle, so the fused cycle count is
//!
//! ```text
//! cycles = max(1, ceil(alu_slots / ALU_SLOTS), ceil(mem_ops / MEM_PORTS))
//! ```
//!
//! [`Identifier`] mines a profiled program for profitable windows and
//! greedily selects a set under the instruction-count and gate budgets.

use serde::{Deserialize, Serialize};

use crate::error::AsipError;
use crate::gates;
use crate::isa::Instr;
use crate::profile::Profile;
use crate::program::Program;

/// Chained ALU operations the fused datapath completes per cycle.
pub const ALU_SLOTS: u64 = 6;
/// Memory accesses the fused datapath issues per cycle.
pub const MEM_PORTS: u64 = 2;
/// Longest instruction window a single extension may fuse.
pub const MAX_WINDOW: usize = 16;

/// One custom (fused) instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomOp {
    /// Descriptive name (e.g. `fuse@14x5`).
    pub name: String,
    /// The exact base-instruction sequence this op replaces and whose
    /// semantics it implements.
    pub sequence: Vec<Instr>,
    /// Execution cycles of the fused datapath.
    pub cycles: u64,
    /// Datapath area in gate equivalents.
    pub gates: u64,
}

impl CustomOp {
    /// Builds a custom op from an instruction window.
    ///
    /// # Errors
    ///
    /// Returns [`AsipError::InvalidParameter`] if the window is empty,
    /// longer than [`MAX_WINDOW`], or contains non-fusible instructions.
    pub fn from_window(name: impl Into<String>, window: &[Instr]) -> Result<Self, AsipError> {
        if window.is_empty() || window.len() > MAX_WINDOW {
            return Err(AsipError::InvalidParameter("window length"));
        }
        if window.iter().any(|i| !i.is_fusible()) {
            return Err(AsipError::InvalidParameter("window contains control flow"));
        }
        let mut alu_slots = 0u64;
        let mut mem_ops = 0u64;
        for i in window {
            if i.is_memory() {
                mem_ops += 1;
            } else if i.is_multiply() {
                alu_slots += 2;
            } else {
                alu_slots += 1;
            }
        }
        let cycles = 1
            .max(alu_slots.div_ceil(ALU_SLOTS))
            .max(mem_ops.div_ceil(MEM_PORTS));
        Ok(CustomOp {
            name: name.into(),
            sequence: window.to_vec(),
            cycles,
            gates: gates::custom_op_gates(window),
        })
    }

    /// Cycles the equivalent base-instruction sequence takes (cache hits
    /// assumed).
    #[must_use]
    pub fn base_cycles(&self) -> u64 {
        self.sequence.iter().map(Instr::base_cycles).sum()
    }

    /// Cycles saved per execution.
    #[must_use]
    pub fn saved_cycles(&self) -> u64 {
        self.base_cycles().saturating_sub(self.cycles)
    }
}

/// The set of custom instructions a processor configuration carries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtensionCatalog {
    ops: Vec<CustomOp>,
}

impl ExtensionCatalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an op, returning its opcode index.
    pub fn add(&mut self, op: CustomOp) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Looks up an op by opcode.
    ///
    /// # Errors
    ///
    /// Returns [`AsipError::UnknownCustomOp`] for an unknown opcode.
    pub fn op(&self, opcode: usize) -> Result<&CustomOp, AsipError> {
        self.ops
            .get(opcode)
            .ok_or(AsipError::UnknownCustomOp(opcode))
    }

    /// Number of custom instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over the ops in opcode order.
    pub fn iter(&self) -> impl Iterator<Item = &CustomOp> {
        self.ops.iter()
    }

    /// Total datapath area of all extensions, in gate equivalents.
    #[must_use]
    pub fn total_gates(&self) -> u64 {
        self.ops.iter().map(|o| o.gates).sum()
    }
}

/// A profitable candidate window found by the identifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Start index of the window in the program.
    pub at: usize,
    /// Window length in instructions.
    pub len: usize,
    /// Executions observed in the profile.
    pub executions: u64,
    /// Total cycles this candidate would save.
    pub total_saving: u64,
    /// The op that would implement it.
    pub op: CustomOp,
}

/// Mines profiles for custom-instruction candidates (the "Identify" box
/// of Fig. 2).
#[derive(Debug, Clone, Copy)]
pub struct Identifier {
    /// Longest window considered.
    pub max_window: usize,
    /// Minimum executions for a window to be considered hot.
    pub min_executions: u64,
}

impl Default for Identifier {
    fn default() -> Self {
        Identifier {
            max_window: MAX_WINDOW,
            min_executions: 2,
        }
    }
}

impl Identifier {
    /// Finds the best non-overlapping candidate windows in `program`
    /// given its `profile`, most profitable first.
    ///
    /// A window must be straight-line (fusible instructions only) and
    /// must not contain a branch target after its first instruction —
    /// otherwise jumping into the middle of the fused op would change
    /// semantics.
    #[must_use]
    pub fn candidates(&self, program: &Program, profile: &Profile) -> Vec<Candidate> {
        let instrs = program.instructions();
        let targets = program.branch_targets();
        let is_target = |i: usize| targets.binary_search(&i).is_ok();
        let mut found: Vec<Candidate> = Vec::new();
        let n = instrs.len();
        for start in 0..n {
            if profile.executions(start) < self.min_executions {
                continue;
            }
            let max_len = self.max_window.min(MAX_WINDOW);
            let mut len = 0;
            while start + len < n && len < max_len {
                let idx = start + len;
                if !instrs[idx].is_fusible() {
                    break;
                }
                if len > 0 && is_target(idx) {
                    break;
                }
                // All instructions in a window must execute together.
                if profile.executions(idx) != profile.executions(start) {
                    break;
                }
                len += 1;
                if len >= 2 {
                    let window = &instrs[start..start + len];
                    if let Ok(op) = CustomOp::from_window(format!("fuse@{start}x{len}"), window) {
                        let saving = op.saved_cycles() * profile.executions(start);
                        if saving > 0 {
                            found.push(Candidate {
                                at: start,
                                len,
                                executions: profile.executions(start),
                                total_saving: saving,
                                op,
                            });
                        }
                    }
                }
            }
        }
        // Most profitable first; deterministic tie-break by position.
        found.sort_by(|a, b| {
            b.total_saving
                .cmp(&a.total_saving)
                .then(a.at.cmp(&b.at))
                .then(a.len.cmp(&b.len))
        });
        // Keep only non-overlapping windows, preferring the profitable ones.
        let mut taken: Vec<(usize, usize)> = Vec::new();
        found.retain(|c| {
            let overlaps = taken.iter().any(|&(s, l)| c.at < s + l && s < c.at + c.len);
            if overlaps {
                false
            } else {
                taken.push((c.at, c.len));
                true
            }
        });
        found
    }

    /// Greedily selects candidates under the §3.1 restrictions: at most
    /// `max_instructions` extensions and at most `gate_budget` gates of
    /// extension datapath.
    #[must_use]
    pub fn select(
        &self,
        candidates: &[Candidate],
        max_instructions: usize,
        gate_budget: u64,
    ) -> Vec<Candidate> {
        let mut chosen = Vec::new();
        let mut gates_used = 0u64;
        for c in candidates {
            if chosen.len() >= max_instructions {
                break;
            }
            if gates_used + c.op.gates > gate_budget {
                continue;
            }
            gates_used += c.op.gates;
            chosen.push(c.clone());
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Reg};
    use crate::iss::{Iss, IssConfig};
    use crate::program::ProgramBuilder;

    fn mac_loop(n: i64) -> Program {
        // acc += a[i] * b[i] over n elements at mem[0..n] and mem[n..2n].
        let mut b = ProgramBuilder::new();
        let (i, acc, nr, ai, bi, t0, t1) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6), Reg(7));
        b.li(nr, n);
        let top = b.place_label();
        b.ld(ai, i, 0);
        b.addi(t0, i, 0); // address of b[i] via i + n
        b.addi(t1, t0, 0); // filler ALU op
        b.ld(bi, i, 100);
        b.mul(t0, ai, bi);
        b.add(acc, acc, t0);
        b.addi(i, i, 1);
        b.branch(Cond::Lt, i, nr, top);
        b.halt();
        b.build().expect("valid")
    }

    #[test]
    fn custom_op_cycle_model() {
        // 4 ALU + 2 loads: max(ceil(4/6), ceil(2/2)) = 1 cycle.
        let w = [
            Instr::Ld(Reg(1), Reg(2), 0),
            Instr::Ld(Reg(3), Reg(4), 0),
            Instr::Add(Reg(5), Reg(1), Reg(3)),
            Instr::Add(Reg(6), Reg(5), Reg(5)),
            Instr::Sub(Reg(7), Reg(6), Reg(1)),
            Instr::Xor(Reg(8), Reg(7), Reg(3)),
        ];
        let op = CustomOp::from_window("w", &w).expect("fusible");
        assert_eq!(op.cycles, 1);
        assert_eq!(op.base_cycles(), 6);
        assert_eq!(op.saved_cycles(), 5);
    }

    #[test]
    fn multiplies_occupy_two_slots() {
        let w = [
            Instr::Mul(Reg(1), Reg(2), Reg(3)),
            Instr::Mul(Reg(4), Reg(5), Reg(6)),
            Instr::Mul(Reg(7), Reg(8), Reg(9)),
            Instr::Add(Reg(10), Reg(1), Reg(4)),
        ];
        // 3 muls × 2 + 1 add = 7 slots → 2 cycles.
        let op = CustomOp::from_window("w", &w).expect("fusible");
        assert_eq!(op.cycles, 2);
    }

    #[test]
    fn control_flow_is_not_fusible() {
        let w = [Instr::Add(Reg(1), Reg(2), Reg(3)), Instr::Jmp(0)];
        assert!(CustomOp::from_window("w", &w).is_err());
        assert!(CustomOp::from_window("w", &[]).is_err());
    }

    #[test]
    fn identifier_finds_the_loop_body() {
        let program = mac_loop(50);
        let iss = Iss::new(IssConfig::default(), ExtensionCatalog::new());
        let report = iss.run(&program).expect("runs");
        let profile = Profile::from_report(&report);
        let cands = Identifier::default().candidates(&program, &profile);
        assert!(!cands.is_empty(), "hot loop body should yield candidates");
        // The top candidate covers the loop body (instructions 1..=7).
        let top = &cands[0];
        assert!(
            top.at >= 1 && top.at + top.len <= 8,
            "window {}..{}",
            top.at,
            top.at + top.len
        );
        assert!(top.executions >= 50);
        assert!(top.total_saving > 0);
    }

    #[test]
    fn selection_respects_budgets() {
        let program = mac_loop(50);
        let iss = Iss::new(IssConfig::default(), ExtensionCatalog::new());
        let profile = Profile::from_report(&iss.run(&program).expect("runs"));
        let ident = Identifier::default();
        let cands = ident.candidates(&program, &profile);
        assert!(ident.select(&cands, 0, u64::MAX).is_empty());
        let one = ident.select(&cands, 1, u64::MAX);
        assert_eq!(one.len(), 1);
        let none = ident.select(&cands, 10, 0);
        assert!(none.is_empty(), "zero gate budget admits nothing");
    }

    #[test]
    fn catalog_round_trip() {
        let mut cat = ExtensionCatalog::new();
        let op = CustomOp::from_window(
            "x",
            &[
                Instr::Add(Reg(1), Reg(2), Reg(3)),
                Instr::Add(Reg(4), Reg(1), Reg(3)),
            ],
        )
        .expect("fusible");
        let id = cat.add(op.clone());
        assert_eq!(cat.op(id).expect("exists"), &op);
        assert!(cat.op(99).is_err());
        assert_eq!(cat.total_gates(), op.gates);
        assert_eq!(cat.len(), 1);
    }
}
