//! Profiling: cycle attribution and hotspot discovery.
//!
//! "Profiling by means of an ISS resembling the target processor unveils
//! the bottlenecks through cycle-accurate simulation i.e. it shows which
//! parts of the application represent the most time consuming ones"
//! (§3.1 / Fig. 2).

use serde::{Deserialize, Serialize};

use crate::iss::ExecReport;

/// A profiled program: per-PC cycles and execution counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    pc_cycles: Vec<u64>,
    pc_execs: Vec<u64>,
    total_cycles: u64,
}

/// A contiguous hot region of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotBlock {
    /// First instruction index of the block.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Total cycles spent in the block.
    pub cycles: u64,
}

impl Profile {
    /// Extracts the profile from an execution report.
    #[must_use]
    pub fn from_report(report: &ExecReport) -> Self {
        Profile {
            pc_cycles: report.pc_cycles.clone(),
            pc_execs: report.pc_execs.clone(),
            total_cycles: report.cycles,
        }
    }

    /// Cycles attributed to instruction `pc` (0 beyond the program).
    #[must_use]
    pub fn cycles(&self, pc: usize) -> u64 {
        self.pc_cycles.get(pc).copied().unwrap_or(0)
    }

    /// Executions of instruction `pc` (0 beyond the program).
    #[must_use]
    pub fn executions(&self, pc: usize) -> u64 {
        self.pc_execs.get(pc).copied().unwrap_or(0)
    }

    /// Total cycles of the run.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Fraction of all cycles spent at instruction `pc`.
    #[must_use]
    pub fn fraction(&self, pc: usize) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.cycles(pc) as f64 / self.total_cycles as f64
        }
    }

    /// Maximal contiguous regions whose instructions each consume at
    /// least `threshold` of total cycles, sorted by descending cycle
    /// count — the Fig. 2 "bottlenecks".
    #[must_use]
    pub fn hot_blocks(&self, threshold: f64) -> Vec<HotBlock> {
        let mut blocks = Vec::new();
        let mut start: Option<usize> = None;
        for pc in 0..self.pc_cycles.len() {
            if self.fraction(pc) >= threshold {
                start.get_or_insert(pc);
            } else if let Some(s) = start.take() {
                blocks.push(self.block(s, pc));
            }
        }
        if let Some(s) = start {
            blocks.push(self.block(s, self.pc_cycles.len()));
        }
        blocks.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.start.cmp(&b.start)));
        blocks
    }

    fn block(&self, start: usize, end: usize) -> HotBlock {
        HotBlock {
            start,
            end,
            cycles: self.pc_cycles[start..end].iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extend::ExtensionCatalog;
    use crate::isa::{Cond, Reg};
    use crate::iss::{Iss, IssConfig};
    use crate::program::ProgramBuilder;

    fn profiled_loop() -> Profile {
        let mut b = ProgramBuilder::new();
        b.li(Reg(2), 100);
        let top = b.place_label();
        b.addi(Reg(1), Reg(1), 1);
        b.mul(Reg(3), Reg(1), Reg(1));
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        let p = b.build().expect("valid");
        let r = Iss::new(IssConfig::default(), ExtensionCatalog::new())
            .run(&p)
            .expect("runs");
        Profile::from_report(&r)
    }

    #[test]
    fn loop_body_dominates() {
        let p = profiled_loop();
        assert_eq!(p.executions(1), 100);
        assert_eq!(p.executions(0), 1);
        assert!(p.fraction(2) > p.fraction(0)); // mul in loop vs li outside
        assert!(p.total_cycles() > 0);
    }

    #[test]
    fn hot_blocks_cover_the_loop() {
        let p = profiled_loop();
        let blocks = p.hot_blocks(0.05);
        assert!(!blocks.is_empty());
        let top = blocks[0];
        assert!(
            top.start <= 1 && top.end >= 4,
            "block {}..{}",
            top.start,
            top.end
        );
        assert!(top.cycles as f64 / p.total_cycles() as f64 > 0.9);
    }

    #[test]
    fn out_of_range_queries_are_zero() {
        let p = profiled_loop();
        assert_eq!(p.cycles(999), 0);
        assert_eq!(p.executions(999), 0);
        assert_eq!(p.fraction(999), 0.0);
    }

    #[test]
    fn no_hot_blocks_above_everything() {
        let p = profiled_loop();
        assert!(p.hot_blocks(2.0).is_empty());
    }
}
