//! A small two-pass text assembler for the base ISA.
//!
//! Lets workloads be written as readable assembly instead of builder
//! calls — the "C/C++-like specification" entry point of Fig. 2, scaled
//! to this ISA. Syntax, one instruction per line:
//!
//! ```text
//! ; comments run to end of line (also '#')
//! start:              ; labels end with ':'
//!     li   r1, 10
//!     li   r2, 0
//! loop:
//!     add  r2, r2, r1
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     st   r2, r0, 100
//!     halt
//! ```
//!
//! Mnemonics: `add sub mul and or xor` (3 registers), `addi` (reg, reg,
//! imm), `shli shri` (reg, reg, imm), `li` (reg, imm), `ld st` (reg,
//! reg, offset), branches `beq bne blt bge` (reg, reg, label), `jmp`
//! (label), `halt`. Everything is case-insensitive.

use std::collections::HashMap;

use crate::isa::{Cond, Instr, Reg};
use crate::program::Program;

/// An assembly diagnostic: what went wrong and on which line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics/registers, duplicate or undefined labels, or
/// out-of-range operands.
///
/// # Examples
///
/// ```
/// use dms_asip::asm::assemble;
/// use dms_asip::extend::ExtensionCatalog;
/// use dms_asip::isa::Reg;
/// use dms_asip::iss::{Iss, IssConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble(
///     "    li r1, 6\n     li r2, 7\n     mul r3, r1, r2\n     halt\n",
/// )?;
/// let report = Iss::new(IssConfig::default(), ExtensionCatalog::new()).run(&program)?;
/// assert_eq!(report.reg(Reg(3)), 42);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 1: strip comments, collect labels and raw statements.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut statements: Vec<(usize, Vec<String>)> = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split([';', '#']).next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let mut rest = code;
        // A line may carry several labels before an instruction.
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(AsmError {
                    line,
                    message: format!("malformed label `{label}`"),
                });
            }
            if labels
                .insert(label.to_lowercase(), statements.len())
                .is_some()
            {
                return Err(AsmError {
                    line,
                    message: format!("duplicate label `{label}`"),
                });
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let tokens: Vec<String> = rest
            .split([' ', '\t', ','])
            .filter(|t| !t.is_empty())
            .map(str::to_lowercase)
            .collect();
        statements.push((line, tokens));
    }
    // Pass 2: encode.
    let mut instrs = Vec::with_capacity(statements.len());
    for (line, tokens) in &statements {
        instrs.push(encode(*line, tokens, &labels)?);
    }
    Program::new(instrs).map_err(|e| AsmError {
        line: 0,
        message: e.to_string(),
    })
}

fn encode(
    line: usize,
    tokens: &[String],
    labels: &HashMap<String, usize>,
) -> Result<Instr, AsmError> {
    let err = |message: String| AsmError { line, message };
    let mnemonic = tokens[0].as_str();
    let arity = tokens.len() - 1;
    let want = |n: usize| -> Result<(), AsmError> {
        if arity == n {
            Ok(())
        } else {
            Err(err(format!(
                "`{mnemonic}` expects {n} operand(s), got {arity}"
            )))
        }
    };
    let reg = |t: &str| -> Result<Reg, AsmError> {
        let idx = t
            .strip_prefix('r')
            .and_then(|d| d.parse::<u8>().ok())
            .ok_or_else(|| err(format!("expected register, got `{t}`")))?;
        let r = Reg(idx);
        if r.is_valid() {
            Ok(r)
        } else {
            Err(err(format!("register r{idx} out of range")))
        }
    };
    let imm = |t: &str| -> Result<i64, AsmError> {
        t.parse::<i64>()
            .map_err(|_| err(format!("expected integer, got `{t}`")))
    };
    let shift = |t: &str| -> Result<u8, AsmError> {
        let v = imm(t)?;
        if (0..64).contains(&v) {
            Ok(v as u8)
        } else {
            Err(err(format!("shift amount {v} out of 0..64")))
        }
    };
    let target = |t: &str| -> Result<usize, AsmError> {
        labels
            .get(t)
            .copied()
            .ok_or_else(|| err(format!("undefined label `{t}`")))
    };
    let instr = match mnemonic {
        "add" | "sub" | "mul" | "and" | "or" | "xor" => {
            want(3)?;
            let (d, a, b) = (reg(&tokens[1])?, reg(&tokens[2])?, reg(&tokens[3])?);
            match mnemonic {
                "add" => Instr::Add(d, a, b),
                "sub" => Instr::Sub(d, a, b),
                "mul" => Instr::Mul(d, a, b),
                "and" => Instr::And(d, a, b),
                "or" => Instr::Or(d, a, b),
                _ => Instr::Xor(d, a, b),
            }
        }
        "addi" => {
            want(3)?;
            Instr::Addi(reg(&tokens[1])?, reg(&tokens[2])?, imm(&tokens[3])?)
        }
        "shli" => {
            want(3)?;
            Instr::Shli(reg(&tokens[1])?, reg(&tokens[2])?, shift(&tokens[3])?)
        }
        "shri" => {
            want(3)?;
            Instr::Shri(reg(&tokens[1])?, reg(&tokens[2])?, shift(&tokens[3])?)
        }
        "li" => {
            want(2)?;
            Instr::Li(reg(&tokens[1])?, imm(&tokens[2])?)
        }
        "ld" => {
            want(3)?;
            Instr::Ld(reg(&tokens[1])?, reg(&tokens[2])?, imm(&tokens[3])?)
        }
        "st" => {
            want(3)?;
            Instr::St(reg(&tokens[1])?, reg(&tokens[2])?, imm(&tokens[3])?)
        }
        "beq" | "bne" | "blt" | "bge" => {
            want(3)?;
            let cond = match mnemonic {
                "beq" => Cond::Eq,
                "bne" => Cond::Ne,
                "blt" => Cond::Lt,
                _ => Cond::Ge,
            };
            Instr::Branch(
                cond,
                reg(&tokens[1])?,
                reg(&tokens[2])?,
                target(&tokens[3])?,
            )
        }
        "jmp" => {
            want(1)?;
            Instr::Jmp(target(&tokens[1])?)
        }
        "halt" => {
            want(0)?;
            Instr::Halt
        }
        other => return Err(err(format!("unknown mnemonic `{other}`"))),
    };
    Ok(instr)
}

/// Disassembles a program back to text (labels synthesised as `L<n>`),
/// the inverse convenience for debugging retargeted code. `Custom`
/// opcodes print as `custom <id>` (not re-assemblable — extensions are
/// configuration, not text).
#[must_use]
pub fn disassemble(program: &Program) -> String {
    let targets = program.branch_targets();
    let label_of = |idx: usize| format!("L{idx}");
    let mut out = String::new();
    for (i, instr) in program.instructions().iter().enumerate() {
        if targets.binary_search(&i).is_ok() {
            out.push_str(&label_of(i));
            out.push_str(":\n");
        }
        let text = match *instr {
            Instr::Add(d, a, b) => format!("add r{}, r{}, r{}", d.0, a.0, b.0),
            Instr::Sub(d, a, b) => format!("sub r{}, r{}, r{}", d.0, a.0, b.0),
            Instr::Mul(d, a, b) => format!("mul r{}, r{}, r{}", d.0, a.0, b.0),
            Instr::And(d, a, b) => format!("and r{}, r{}, r{}", d.0, a.0, b.0),
            Instr::Or(d, a, b) => format!("or r{}, r{}, r{}", d.0, a.0, b.0),
            Instr::Xor(d, a, b) => format!("xor r{}, r{}, r{}", d.0, a.0, b.0),
            Instr::Addi(d, a, i) => format!("addi r{}, r{}, {}", d.0, a.0, i),
            Instr::Shli(d, a, s) => format!("shli r{}, r{}, {}", d.0, a.0, s),
            Instr::Shri(d, a, s) => format!("shri r{}, r{}, {}", d.0, a.0, s),
            Instr::Li(d, i) => format!("li r{}, {}", d.0, i),
            Instr::Ld(d, b, o) => format!("ld r{}, r{}, {}", d.0, b.0, o),
            Instr::St(s, b, o) => format!("st r{}, r{}, {}", s.0, b.0, o),
            Instr::Branch(c, a, b, t) => {
                let m = match c {
                    Cond::Eq => "beq",
                    Cond::Ne => "bne",
                    Cond::Lt => "blt",
                    Cond::Ge => "bge",
                };
                format!("{m} r{}, r{}, {}", a.0, b.0, label_of(t))
            }
            Instr::Jmp(t) => format!("jmp {}", label_of(t)),
            Instr::Custom(id) => format!("custom {id}"),
            Instr::Halt => "halt".to_string(),
        };
        out.push_str("    ");
        out.push_str(&text);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extend::ExtensionCatalog;
    use crate::iss::{Iss, IssConfig};

    fn run(src: &str) -> crate::iss::ExecReport {
        let p = assemble(src).expect("assembles");
        Iss::new(IssConfig::default(), ExtensionCatalog::new())
            .run(&p)
            .expect("halts")
    }

    #[test]
    fn assembles_and_runs_a_loop() {
        let r = run("
            ; sum 1..=10 into r2, store at mem[100]
                li   r1, 10
                li   r2, 0
            loop:
                add  r2, r2, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                st   r2, r0, 100
                halt
        ");
        assert_eq!(r.memory[100], 55);
    }

    #[test]
    fn labels_forward_and_multiple() {
        let r = run("
                li r1, 1
                jmp skip
                li r1, 99     # never executed
            skip: done:
                halt
        ");
        assert_eq!(r.reg(Reg(1)), 1);
    }

    #[test]
    fn all_mnemonics_round_trip_through_disassembly() {
        let src = "
            top:
                li   r1, 5
                addi r2, r1, 3
                add  r3, r1, r2
                sub  r4, r3, r1
                mul  r5, r4, r2
                and  r6, r5, r3
                or   r6, r6, r1
                xor  r6, r6, r2
                shli r7, r6, 2
                shri r7, r7, 1
                st   r7, r0, 50
                ld   r8, r0, 50
                beq  r8, r7, ok
                jmp  top
            ok:
                blt  r1, r2, end
                bge  r2, r1, end
            end:
                halt
        ";
        let p = assemble(src).expect("assembles");
        let text = disassemble(&p);
        let p2 = assemble(&text).expect("disassembly re-assembles");
        assert_eq!(p, p2, "assemble . disassemble must be the identity");
    }

    #[test]
    fn error_reporting_names_the_line() {
        let e = assemble("  li r1, 5\n  frob r1\n  halt").expect_err("unknown mnemonic");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frob"));

        let e = assemble("  li r99, 5\n  halt").expect_err("bad register");
        assert_eq!(e.line, 1);
        assert!(e.message.contains("r99"));

        let e = assemble("  jmp nowhere\n  halt").expect_err("undefined label");
        assert!(e.message.contains("nowhere"));

        let e = assemble("x: x: halt").expect_err("duplicate label");
        assert!(e.message.contains("duplicate"));

        let e = assemble("  add r1, r2\n  halt").expect_err("arity");
        assert!(e.message.contains("expects 3"));

        let e = assemble("  shli r1, r2, 70\n  halt").expect_err("shift range");
        assert!(e.message.contains("out of"));

        let e = assemble("  li r1, abc\n  halt").expect_err("bad immediate");
        assert!(e.message.contains("abc"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let r = run("\n\n; nothing\n# also nothing\n  li r1, 7 ; trailing\n  halt\n");
        assert_eq!(r.reg(Reg(1)), 7);
    }

    #[test]
    fn assembled_program_feeds_the_design_flow() {
        use crate::flow::{DesignFlow, FlowConstraints};
        let p = assemble(
            "
                li r2, 200
            top:
                ld  r3, r1, 0
                ld  r4, r1, 1000
                mul r5, r3, r4
                add r6, r6, r5
                addi r1, r1, 1
                blt r1, r2, top
                st  r6, r0, 2000
                halt
        ",
        )
        .expect("assembles");
        let report = DesignFlow::new(FlowConstraints::default())
            .run(&p)
            .expect("flow runs");
        assert!(report.verified);
        assert!(report.speedup > 1.0);
    }
}
