//! The base instruction set.
//!
//! A small load/store RISC: 32 general-purpose 64-bit registers with
//! `r0` hard-wired to zero, word-addressed data memory, absolute branch
//! targets (resolved from labels by the
//! [`ProgramBuilder`](crate::program::ProgramBuilder)), and a `Custom`
//! opcode slot for the §3.1 instruction extensions.

use serde::{Deserialize, Serialize};

/// Number of general-purpose registers.
pub const REG_COUNT: u8 = 32;

/// A register name. `Reg(0)` reads as zero and ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Whether the register index is within the register file.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.0 < REG_COUNT
    }
}

/// Branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
}

/// One machine instruction.
///
/// Branch targets are absolute instruction indices (the builder resolves
/// labels before a [`Program`](crate::program::Program) is produced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = a + b`
    Add(Reg, Reg, Reg),
    /// `dst = a - b`
    Sub(Reg, Reg, Reg),
    /// `dst = a * b`
    Mul(Reg, Reg, Reg),
    /// `dst = a + imm`
    Addi(Reg, Reg, i64),
    /// `dst = a << imm` (imm masked to 0..64)
    Shli(Reg, Reg, u8),
    /// `dst = a >> imm` arithmetic (imm masked to 0..64)
    Shri(Reg, Reg, u8),
    /// `dst = a & b`
    And(Reg, Reg, Reg),
    /// `dst = a | b`
    Or(Reg, Reg, Reg),
    /// `dst = a ^ b`
    Xor(Reg, Reg, Reg),
    /// `dst = imm`
    Li(Reg, i64),
    /// `dst = mem[base + offset]`
    Ld(Reg, Reg, i64),
    /// `mem[base + offset] = src`
    St(Reg, Reg, i64),
    /// Branch to `target` if `cond(a, b)`.
    Branch(Cond, Reg, Reg, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// A custom (fused) instruction, by catalog index.
    Custom(usize),
    /// Stop execution.
    Halt,
}

impl Instr {
    /// Base-core cycle cost (before predefined blocks are considered;
    /// see [`IssConfig`](crate::iss::IssConfig) for the block effects).
    ///
    /// Loads/stores report their *hit* cost; cache misses add a penalty
    /// at execution time. `Custom` reports 1 here — the ISS charges the
    /// catalog-defined cost instead.
    #[must_use]
    pub fn base_cycles(&self) -> u64 {
        match self {
            Instr::Mul(..) => 3,
            Instr::Ld(..) | Instr::St(..) => 1,
            _ => 1,
        }
    }

    /// Whether the instruction can be absorbed into a fused custom
    /// instruction: straight-line data processing and memory access, but
    /// no control flow and no further nesting of custom ops.
    #[must_use]
    pub fn is_fusible(&self) -> bool {
        !matches!(
            self,
            Instr::Branch(..) | Instr::Jmp(_) | Instr::Custom(_) | Instr::Halt
        )
    }

    /// Registers written by the instruction (`r0` writes are discarded
    /// at execution time but still reported here).
    #[must_use]
    pub fn defs(&self) -> Vec<Reg> {
        match *self {
            Instr::Add(d, ..)
            | Instr::Sub(d, ..)
            | Instr::Mul(d, ..)
            | Instr::Addi(d, ..)
            | Instr::Shli(d, ..)
            | Instr::Shri(d, ..)
            | Instr::And(d, ..)
            | Instr::Or(d, ..)
            | Instr::Xor(d, ..)
            | Instr::Li(d, _)
            | Instr::Ld(d, ..) => vec![d],
            _ => vec![],
        }
    }

    /// Registers read by the instruction.
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        match *self {
            Instr::Add(_, a, b)
            | Instr::Sub(_, a, b)
            | Instr::Mul(_, a, b)
            | Instr::And(_, a, b)
            | Instr::Or(_, a, b)
            | Instr::Xor(_, a, b) => vec![a, b],
            Instr::Addi(_, a, _) | Instr::Shli(_, a, _) | Instr::Shri(_, a, _) => vec![a],
            Instr::Ld(_, base, _) => vec![base],
            Instr::St(src, base, _) => vec![src, base],
            Instr::Branch(_, a, b, _) => vec![a, b],
            _ => vec![],
        }
    }

    /// Whether this is a memory access.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(self, Instr::Ld(..) | Instr::St(..))
    }

    /// Whether this is a multiply (relevant to the MAC block and to
    /// datapath slot accounting).
    #[must_use]
    pub fn is_multiply(&self) -> bool {
        matches!(self, Instr::Mul(..))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_validity() {
        assert!(Reg(0).is_valid());
        assert!(Reg(31).is_valid());
        assert!(!Reg(32).is_valid());
        assert_eq!(Reg::ZERO, Reg(0));
    }

    #[test]
    fn cycle_costs() {
        assert_eq!(Instr::Add(Reg(1), Reg(2), Reg(3)).base_cycles(), 1);
        assert_eq!(Instr::Mul(Reg(1), Reg(2), Reg(3)).base_cycles(), 3);
        assert_eq!(Instr::Ld(Reg(1), Reg(2), 0).base_cycles(), 1);
    }

    #[test]
    fn fusibility() {
        assert!(Instr::Add(Reg(1), Reg(2), Reg(3)).is_fusible());
        assert!(Instr::Ld(Reg(1), Reg(2), 0).is_fusible());
        assert!(!Instr::Branch(Cond::Eq, Reg(1), Reg(2), 0).is_fusible());
        assert!(!Instr::Jmp(0).is_fusible());
        assert!(!Instr::Custom(0).is_fusible());
        assert!(!Instr::Halt.is_fusible());
    }

    #[test]
    fn def_use_sets() {
        let add = Instr::Add(Reg(1), Reg(2), Reg(3));
        assert_eq!(add.defs(), vec![Reg(1)]);
        assert_eq!(add.uses(), vec![Reg(2), Reg(3)]);
        let st = Instr::St(Reg(4), Reg(5), 8);
        assert!(st.defs().is_empty());
        assert_eq!(st.uses(), vec![Reg(4), Reg(5)]);
        let br = Instr::Branch(Cond::Lt, Reg(6), Reg(7), 3);
        assert!(br.defs().is_empty());
        assert_eq!(br.uses(), vec![Reg(6), Reg(7)]);
    }

    #[test]
    fn classifications() {
        assert!(Instr::Ld(Reg(1), Reg(0), 0).is_memory());
        assert!(!Instr::Add(Reg(1), Reg(0), Reg(0)).is_memory());
        assert!(Instr::Mul(Reg(1), Reg(0), Reg(0)).is_multiply());
    }
}
