//! The Fig. 2 extensible-processor design flow, end to end.
//!
//! Profile → identify (extensions, blocks, parameters) → define →
//! retarget tools → verify constraints → iterate until they hold. The
//! flow's outputs mirror the §3.1 case study: speed-up over the plain
//! base core, number of custom instructions, and total gate count.

use serde::{Deserialize, Serialize};

use crate::error::AsipError;
use crate::extend::{ExtensionCatalog, Identifier};
use crate::gates::AreaModel;
use crate::iss::{Iss, IssConfig};
use crate::profile::Profile;
use crate::program::Program;
use crate::retarget::retarget;

/// Constraints the customised processor must meet (Fig. 2's "verify"
/// box).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowConstraints {
    /// Maximum number of custom instructions (§3.1: "less than 10").
    pub max_custom_instructions: usize,
    /// Total gate budget including the base core (§3.1: "less than 200k").
    pub gate_budget: u64,
    /// Include the MAC predefined block in the enhanced configuration.
    pub mac_block: bool,
    /// Include the zero-overhead-loop block.
    pub zol_block: bool,
    /// Data-cache size in bytes for the enhanced configuration.
    pub cache_bytes: u64,
}

impl Default for FlowConstraints {
    fn default() -> Self {
        FlowConstraints {
            max_custom_instructions: 10,
            gate_budget: 200_000,
            mac_block: true,
            zol_block: true,
            cache_bytes: 8192,
        }
    }
}

/// The outcome of one complete design-flow run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReport {
    /// Cycles of the unmodified base core.
    pub base_cycles: u64,
    /// Cycles of the customised processor on the retargeted program.
    pub enhanced_cycles: u64,
    /// `base_cycles / enhanced_cycles`.
    pub speedup: f64,
    /// Number of custom instructions adopted.
    pub custom_instructions: usize,
    /// Total gate count of the final configuration.
    pub total_gates: u64,
    /// Iterations of the verify loop (candidate set shrinkages).
    pub iterations: usize,
    /// Whether the retargeted program was verified bit-equivalent to the
    /// original (registers and memory at halt).
    pub verified: bool,
    /// Names of the adopted custom instructions.
    pub adopted: Vec<String>,
}

/// Drives the Fig. 2 flow.
#[derive(Debug, Clone, Copy)]
pub struct DesignFlow {
    constraints: FlowConstraints,
    identifier: Identifier,
}

impl DesignFlow {
    /// Creates a flow with the given constraints and a default
    /// identifier.
    #[must_use]
    pub fn new(constraints: FlowConstraints) -> Self {
        DesignFlow {
            constraints,
            identifier: Identifier::default(),
        }
    }

    /// The constraints in force.
    #[must_use]
    pub fn constraints(&self) -> &FlowConstraints {
        &self.constraints
    }

    /// Runs the flow on `program` with zeroed initial memory.
    ///
    /// # Errors
    ///
    /// Propagates ISS and rewriting failures.
    pub fn run(&self, program: &Program) -> Result<FlowReport, AsipError> {
        self.run_with_memory(program, Vec::new())
    }

    /// Runs the flow on `program` with the given initial memory image.
    ///
    /// Steps: profile on the plain base core; identify candidate
    /// extensions; select under the instruction and gate budgets;
    /// retarget; verify semantics and constraints; shrink the candidate
    /// set and repeat if the area constraint fails.
    ///
    /// # Errors
    ///
    /// Propagates ISS and rewriting failures.
    pub fn run_with_memory(
        &self,
        program: &Program,
        memory: Vec<i64>,
    ) -> Result<FlowReport, AsipError> {
        let c = self.constraints;
        // 1. Profile on the plain base core (no blocks, no extensions).
        let base_cfg = IssConfig::default();
        let base_iss = Iss::new(base_cfg, ExtensionCatalog::new());
        let base_report = base_iss.run_with_memory(program, memory.clone())?;
        let profile = Profile::from_report(&base_report);

        // 2. Identify.
        let candidates = self.identifier.candidates(program, &profile);

        // Block + cache area is fixed by the constraints; extensions get
        // what remains of the budget.
        let fixed = AreaModel {
            mac_block: c.mac_block,
            zol_block: c.zol_block,
            cache_bytes: c.cache_bytes,
            extension_gates: 0,
        }
        .total_gates();
        let ext_budget = c.gate_budget.saturating_sub(fixed);

        // 3–5. Select → define → retarget → verify; iterate, shrinking
        // the allowed instruction count if the area check fails.
        let mut iterations = 0;
        let mut allowed = c.max_custom_instructions;
        loop {
            iterations += 1;
            let selected = self.identifier.select(&candidates, allowed, ext_budget);
            let (rewritten, catalog) = retarget(program, &selected)?;
            let area = AreaModel {
                mac_block: c.mac_block,
                zol_block: c.zol_block,
                cache_bytes: c.cache_bytes,
                extension_gates: catalog.total_gates(),
            };
            if area.total_gates() > c.gate_budget && allowed > 0 {
                allowed -= 1;
                continue;
            }
            // Retargeted ("generated") tools: an ISS aware of the
            // extensions and blocks.
            let enhanced_cfg = IssConfig {
                mac_block: c.mac_block,
                zero_overhead_loops: c.zol_block,
                cache_words: (c.cache_bytes / 8) as usize,
                ..IssConfig::default()
            };
            let adopted: Vec<String> = catalog.iter().map(|o| o.name.clone()).collect();
            let custom_instructions = catalog.len();
            let enhanced_iss = Iss::new(enhanced_cfg, catalog);
            let enhanced_report = enhanced_iss.run_with_memory(&rewritten, memory.clone())?;
            let verified = enhanced_report.regs == base_report.regs
                && enhanced_report.memory == base_report.memory;
            return Ok(FlowReport {
                base_cycles: base_report.cycles,
                enhanced_cycles: enhanced_report.cycles,
                speedup: base_report.cycles as f64 / enhanced_report.cycles.max(1) as f64,
                custom_instructions,
                total_gates: area.total_gates(),
                iterations,
                verified,
                adopted,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn flow_on_dot_product_speeds_up_and_verifies() {
        let p = workloads::dot_product(128).expect("valid");
        let mut mem = vec![0i64; 1 << 16];
        for k in 0..128 {
            mem[k] = k as i64;
            mem[1000 + k] = 3;
        }
        let report = DesignFlow::new(FlowConstraints::default())
            .run_with_memory(&p, mem)
            .expect("runs");
        assert!(report.verified, "retargeted program must be bit-equivalent");
        assert!(report.speedup > 1.8, "speedup {}", report.speedup); // memory-bound kernel
        assert!(report.custom_instructions >= 1);
        assert!(report.total_gates <= 200_000);
    }

    #[test]
    fn voice_recognition_reproduces_the_headline_claim() {
        // E1: 5–10× speed-up, <10 custom instructions, <200k gates.
        let (n, tones, templates) = (512, 8, 8);
        let p = workloads::voice_recognition(n, tones, templates).expect("valid");
        let mem = workloads::voice_test_memory(n, tones, templates, 1 << 16);
        let report = DesignFlow::new(FlowConstraints::default())
            .run_with_memory(&p, mem)
            .expect("runs");
        assert!(report.verified);
        assert!(
            report.speedup >= 5.0 && report.speedup <= 12.0,
            "speedup {} outside the 5–10× band (12 allows model headroom)",
            report.speedup
        );
        assert!(
            report.custom_instructions < 10,
            "{} instructions",
            report.custom_instructions
        );
        assert!(report.total_gates < 200_000, "{} gates", report.total_gates);
    }

    #[test]
    fn tighter_gate_budget_means_fewer_extensions() {
        let p = workloads::dot_product(128).expect("valid");
        let loose = DesignFlow::new(FlowConstraints::default())
            .run(&p)
            .expect("runs");
        let mut tight_c = FlowConstraints::default();
        tight_c.gate_budget = 150_000;
        let tight = DesignFlow::new(tight_c).run(&p).expect("runs");
        assert!(tight.total_gates <= 150_000);
        assert!(tight.custom_instructions <= loose.custom_instructions);
        assert!(tight.speedup <= loose.speedup + 1e-9);
    }

    #[test]
    fn zero_budget_flow_still_reports() {
        let p = workloads::dot_product(32).expect("valid");
        let mut c = FlowConstraints::default();
        c.max_custom_instructions = 0;
        c.mac_block = false;
        c.zol_block = false;
        let r = DesignFlow::new(c).run(&p).expect("runs");
        assert_eq!(r.custom_instructions, 0);
        // Cache configuration differs from the profiling run, so cycles
        // may differ slightly, but without blocks/extensions there is no
        // speedup mechanism beyond the cache.
        assert!(r.speedup < 2.0);
        assert!(r.verified);
    }
}
