//! # dms-asip — extensible-processor platform
//!
//! §3.1 of the paper: Application-Specific Instruction-set Processors
//! "represent a very efficient option with respect to performance-per-
//! power ratio, design costs/time, manufacturing costs, flexibility".
//! Customisation happens at three levels — **instruction extension**,
//! **inclusion/exclusion of predefined blocks** (MAC, caches,
//! zero-overhead loops) and **parameterisation** (cache size, register
//! count) — driven by the Fig. 2 design flow: profile on an ISS,
//! identify extensions, define them, retarget the tools, verify, iterate.
//!
//! This crate is that platform, built from scratch:
//!
//! * [`isa`]/[`program`] — a small load/store RISC ISA and a program
//!   builder with label resolution;
//! * [`iss`] — a cycle-accurate instruction-set simulator with a
//!   direct-mapped cache model and optional predefined blocks;
//! * [`profile`] — per-PC cycle attribution and hot-block discovery
//!   (the "Profiling" box of Fig. 2);
//! * [`extend`] — dataflow-window custom-instruction identification and
//!   selection under instruction-count and gate budgets ("Identify");
//! * [`retarget`] — the retargetable compiler: rewrites programs to use
//!   the selected custom instructions, preserving semantics ("Define" +
//!   "Retargetable tool generation");
//! * [`gates`] — the gate-equivalent area model (base core, blocks,
//!   per-extension datapath cost);
//! * [`flow`] — the end-to-end Fig. 2 loop, producing a report with
//!   speed-up, gate count and the chosen extensions;
//! * [`workloads`] — the §3.1 voice-recognition system (Goertzel filter
//!   bank, log-energy feature extraction, DTW template matching) plus
//!   FIR/dot-product kernels, written in the ISA;
//! * [`asm`] — a two-pass text assembler/disassembler so workloads can
//!   be written as readable assembly.
//!
//! ## Example
//!
//! Run the complete Fig. 2 flow on the voice-recognition workload:
//!
//! ```
//! use dms_asip::flow::{DesignFlow, FlowConstraints};
//! use dms_asip::workloads;
//!
//! # fn main() -> Result<(), dms_asip::AsipError> {
//! let program = workloads::voice_recognition(64, 4, 8)?;
//! let flow = DesignFlow::new(FlowConstraints::default());
//! let report = flow.run(&program)?;
//! assert!(report.speedup > 1.0);
//! assert!(report.custom_instructions <= 10);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod error;
pub mod extend;
pub mod flow;
pub mod gates;
pub mod isa;
pub mod iss;
pub mod profile;
pub mod program;
pub mod retarget;
pub mod workloads;

pub use asm::{assemble, disassemble, AsmError};
pub use error::AsipError;
pub use extend::{CustomOp, ExtensionCatalog, Identifier};
pub use flow::{DesignFlow, FlowConstraints, FlowReport};
pub use gates::AreaModel;
pub use isa::{Instr, Reg};
pub use iss::{ExecReport, Iss, IssConfig};
pub use profile::Profile;
pub use program::{Program, ProgramBuilder};
