//! The retargetable compiler: rewriting programs onto custom
//! instructions.
//!
//! §3.1: "retargetable techniques allow then to automatically generate a
//! compiler that is aware of the new instructions i.e. it can generate
//! code and optimize using the recently defined extensible
//! instructions". [`retarget`] rewrites a program, replacing every
//! occurrence of each selected window with its `Custom` opcode, and
//! remaps all branch targets across the shrinking program — the
//! mechanical core of what a retargeted compiler does.

use crate::error::AsipError;
use crate::extend::{Candidate, ExtensionCatalog};
use crate::isa::Instr;
use crate::program::Program;

/// Rewrites `program`, replacing each selected candidate window (and any
/// other exact occurrence of the same instruction sequence) with its
/// custom opcode. Returns the rewritten program and the catalog the
/// retargeted ISS must carry.
///
/// Windows never contain interior branch targets (the identifier
/// guarantees it), so the replacement preserves semantics; a test below
/// verifies register/memory equivalence on real programs.
///
/// # Errors
///
/// Propagates program-validation failures (which would indicate a bug in
/// the rewriter rather than in user input).
pub fn retarget(
    program: &Program,
    selected: &[Candidate],
) -> Result<(Program, ExtensionCatalog), AsipError> {
    let mut catalog = ExtensionCatalog::new();
    let instrs = program.instructions();
    // Occurrence map: old index -> (window length, opcode) for window starts.
    let mut replace_at: Vec<Option<(usize, usize)>> = vec![None; instrs.len()];
    let targets = program.branch_targets();
    for cand in selected {
        let opcode = catalog.add(cand.op.clone());
        // Replace every exact occurrence of the sequence, not just the
        // profiled one — the "compiler" generalises the pattern.
        let seq = &cand.op.sequence;
        let mut i = 0;
        while i + seq.len() <= instrs.len() {
            let window = &instrs[i..i + seq.len()];
            let interior_target = targets.iter().any(|&t| t > i && t < i + seq.len());
            let already_claimed = (i..i + seq.len()).any(|k| replace_at[k].is_some());
            if window == seq.as_slice() && !interior_target && !already_claimed {
                replace_at[i] = Some((seq.len(), opcode));
                // Mark the tail so overlapping candidates skip it.
                for k in i + 1..i + seq.len() {
                    replace_at[k] = Some((0, usize::MAX));
                }
                i += seq.len();
            } else {
                i += 1;
            }
        }
    }
    // Emit the new instruction stream, building old→new index mapping.
    let mut new_instrs: Vec<Instr> = Vec::with_capacity(instrs.len());
    let mut index_map = vec![usize::MAX; instrs.len() + 1];
    let mut i = 0;
    while i < instrs.len() {
        index_map[i] = new_instrs.len();
        match replace_at[i] {
            Some((len, opcode)) if len > 0 => {
                // Interior instructions map to the custom op itself.
                for k in i..i + len {
                    index_map[k] = new_instrs.len();
                }
                new_instrs.push(Instr::Custom(opcode));
                i += len;
            }
            _ => {
                new_instrs.push(instrs[i]);
                i += 1;
            }
        }
    }
    index_map[instrs.len()] = new_instrs.len();
    // Remap branch targets.
    for instr in &mut new_instrs {
        match instr {
            Instr::Branch(_, _, _, t) | Instr::Jmp(t) => *t = index_map[*t],
            _ => {}
        }
    }
    Ok((Program::new(new_instrs)?, catalog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extend::Identifier;
    use crate::isa::{Cond, Reg};
    use crate::iss::{Iss, IssConfig};
    use crate::profile::Profile;
    use crate::program::ProgramBuilder;

    /// Builds a FIR-like kernel and returns it.
    fn kernel() -> Program {
        let mut b = ProgramBuilder::new();
        let (i, n, acc, x, c, t) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
        b.li(n, 64);
        let top = b.place_label();
        b.ld(x, i, 0);
        b.ld(c, i, 1000);
        b.mul(t, x, c);
        b.add(acc, acc, t);
        b.addi(i, i, 1);
        b.branch(Cond::Lt, i, n, top);
        b.st(acc, Reg(0), 2000);
        b.halt();
        b.build().expect("valid")
    }

    fn identify(program: &Program) -> Vec<Candidate> {
        let iss = Iss::new(IssConfig::default(), ExtensionCatalog::new());
        let profile = Profile::from_report(&iss.run(program).expect("runs"));
        Identifier::default().candidates(program, &profile)
    }

    #[test]
    fn retargeted_program_is_shorter_and_equivalent() {
        let program = kernel();
        let selected = identify(&program);
        assert!(!selected.is_empty());
        let top = vec![selected[0].clone()];
        let (rewritten, catalog) = retarget(&program, &top).expect("rewrites");
        assert!(rewritten.len() < program.len());
        assert!(!catalog.is_empty());

        // Semantics must be identical: same registers, same memory.
        let mut mem = vec![0i64; 1 << 16];
        for k in 0..64 {
            mem[k] = k as i64;
            mem[1000 + k] = 2;
        }
        let base_iss = Iss::new(IssConfig::default(), ExtensionCatalog::new());
        let fast_iss = Iss::new(IssConfig::default(), catalog);
        let base = base_iss
            .run_with_memory(&program, mem.clone())
            .expect("runs");
        let fast = fast_iss.run_with_memory(&rewritten, mem).expect("runs");
        assert_eq!(base.regs, fast.regs);
        assert_eq!(base.memory, fast.memory);
        assert!(
            fast.cycles < base.cycles,
            "{} !< {}",
            fast.cycles,
            base.cycles
        );
    }

    #[test]
    fn branch_targets_survive_rewriting() {
        let program = kernel();
        let selected = identify(&program);
        let (rewritten, catalog) = retarget(&program, &selected).expect("rewrites");
        // The loop must still iterate 64 times: acc == Σ k·2 = 4032.
        let mut mem = vec![0i64; 1 << 16];
        for k in 0..64 {
            mem[k] = k as i64;
            mem[1000 + k] = 2;
        }
        let r = Iss::new(IssConfig::default(), catalog)
            .run_with_memory(&rewritten, mem)
            .expect("runs");
        assert_eq!(r.memory[2000], 4032);
    }

    #[test]
    fn empty_selection_is_identity() {
        let program = kernel();
        let (rewritten, catalog) = retarget(&program, &[]).expect("rewrites");
        assert_eq!(rewritten, program);
        assert!(catalog.is_empty());
    }

    #[test]
    fn all_occurrences_are_replaced() {
        // The same 3-op pattern appears twice in straight-line code.
        let mut b = ProgramBuilder::new();
        for _ in 0..2 {
            b.add(Reg(1), Reg(1), Reg(2));
            b.mul(Reg(3), Reg(1), Reg(1));
            b.sub(Reg(1), Reg(3), Reg(2));
        }
        b.halt();
        let program = b.build().expect("valid");
        let op = crate::extend::CustomOp::from_window("p", &program.instructions()[0..3])
            .expect("fusible");
        let cand = Candidate {
            at: 0,
            len: 3,
            executions: 1,
            total_saving: op.saved_cycles(),
            op,
        };
        let (rewritten, _) = retarget(&program, &[cand]).expect("rewrites");
        // Both occurrences collapse: 7 instructions → 3.
        assert_eq!(rewritten.len(), 3);
        let customs = rewritten
            .instructions()
            .iter()
            .filter(|i| matches!(i, Instr::Custom(_)))
            .count();
        assert_eq!(customs, 2);
    }
}
