//! Error type for the ASIP platform.

use std::error::Error;
use std::fmt;

/// Errors produced by program construction, simulation and the design
/// flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AsipError {
    /// A register index is outside the register file.
    BadRegister(u8),
    /// A branch references an unresolved or foreign label.
    UnresolvedLabel(usize),
    /// Execution touched memory outside the configured data size.
    MemoryFault { address: i64 },
    /// The program ran past its fuel budget (probable infinite loop).
    OutOfFuel { executed: u64 },
    /// Execution fell off the end of the program without `Halt`.
    MissingHalt,
    /// A custom opcode was executed that the ISS does not know.
    UnknownCustomOp(usize),
    /// A numeric parameter was out of range.
    InvalidParameter(&'static str),
}

impl fmt::Display for AsipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsipError::BadRegister(r) => write!(f, "register r{r} is outside the register file"),
            AsipError::UnresolvedLabel(l) => write!(f, "label {l} was never placed"),
            AsipError::MemoryFault { address } => write!(f, "memory fault at address {address}"),
            AsipError::OutOfFuel { executed } => {
                write!(
                    f,
                    "fuel exhausted after {executed} instructions (infinite loop?)"
                )
            }
            AsipError::MissingHalt => write!(f, "execution fell off the end of the program"),
            AsipError::UnknownCustomOp(id) => write!(f, "unknown custom opcode {id}"),
            AsipError::InvalidParameter(name) => write!(f, "parameter `{name}` is out of range"),
        }
    }
}

impl Error for AsipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AsipError::BadRegister(40).to_string().contains("r40"));
        assert!(AsipError::MemoryFault { address: -1 }
            .to_string()
            .contains("-1"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<AsipError>();
    }
}
