//! Gate-equivalent area model.
//!
//! §3.1's example system: "a base processor core enhanced with less than
//! 10 low-complexity custom instructions ... at a total gate count less
//! than 200k". The constants here put the base core at 110k gates and
//! typical extensions at a few thousand gates each, so a full
//! configuration lands in the same ballpark. Absolute numbers are
//! order-of-magnitude estimates (documented substitution for synthesis
//! results); every experiment uses them only *relatively*.

use crate::isa::Instr;

/// Gate cost of the base processor core.
pub const BASE_CORE_GATES: u64 = 80_000;
/// Gate cost of the multiply-accumulate predefined block.
pub const MAC_BLOCK_GATES: u64 = 10_000;
/// Gate cost of the zero-overhead-loop predefined block.
pub const ZOL_BLOCK_GATES: u64 = 3_000;
/// Gate cost per kilobyte of cache (tags + SRAM periphery).
pub const CACHE_GATES_PER_KB: u64 = 4_000;
/// Decode/dispatch overhead per custom instruction.
pub const CUSTOM_DECODE_GATES: u64 = 600;

/// Datapath gates of one fused operation.
#[must_use]
pub fn op_gates(instr: &Instr) -> u64 {
    match instr {
        Instr::Mul(..) => 8_000, // fixed-point audio-width multiplier
        Instr::Add(..) | Instr::Sub(..) | Instr::Addi(..) => 2_200,
        Instr::Shli(..) | Instr::Shri(..) => 1_400,
        Instr::And(..) | Instr::Or(..) | Instr::Xor(..) | Instr::Li(..) => 900,
        Instr::Ld(..) | Instr::St(..) => 3_000,
        // Control flow and custom ops never appear inside a window.
        _ => 0,
    }
}

/// Total datapath gates of a custom-instruction window, including its
/// decode overhead.
#[must_use]
pub fn custom_op_gates(window: &[Instr]) -> u64 {
    CUSTOM_DECODE_GATES + window.iter().map(op_gates).sum::<u64>()
}

/// The area model of one processor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaModel {
    /// Whether the MAC predefined block is included.
    pub mac_block: bool,
    /// Whether the zero-overhead-loop block is included.
    pub zol_block: bool,
    /// Data-cache size in bytes.
    pub cache_bytes: u64,
    /// Extension-datapath gates (from the catalog).
    pub extension_gates: u64,
}

impl AreaModel {
    /// Total gate count of the configuration.
    #[must_use]
    pub fn total_gates(&self) -> u64 {
        BASE_CORE_GATES
            + if self.mac_block { MAC_BLOCK_GATES } else { 0 }
            + if self.zol_block { ZOL_BLOCK_GATES } else { 0 }
            + self.cache_bytes.div_ceil(1024) * CACHE_GATES_PER_KB
            + self.extension_gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    #[test]
    fn multiplier_dominates_window_cost() {
        let mul = op_gates(&Instr::Mul(Reg(1), Reg(2), Reg(3)));
        let add = op_gates(&Instr::Add(Reg(1), Reg(2), Reg(3)));
        assert!(mul > 3 * add);
    }

    #[test]
    fn window_cost_includes_decode() {
        let w = [Instr::Add(Reg(1), Reg(2), Reg(3))];
        assert_eq!(custom_op_gates(&w), CUSTOM_DECODE_GATES + 2_200);
        assert_eq!(custom_op_gates(&[]), CUSTOM_DECODE_GATES);
    }

    #[test]
    fn control_flow_costs_nothing() {
        assert_eq!(op_gates(&Instr::Halt), 0);
        assert_eq!(op_gates(&Instr::Jmp(0)), 0);
    }

    #[test]
    fn typical_configuration_stays_under_200k() {
        // Base + MAC + ZOL + 8 KB cache + ~8 modest extensions.
        let model = AreaModel {
            mac_block: true,
            zol_block: true,
            cache_bytes: 8192,
            extension_gates: 8 * 6_000,
        };
        assert!(
            model.total_gates() < 200_000,
            "total {}",
            model.total_gates()
        );
        assert!(model.total_gates() > BASE_CORE_GATES);
    }

    #[test]
    fn cache_rounds_up_to_kb() {
        let a = AreaModel {
            mac_block: false,
            zol_block: false,
            cache_bytes: 1,
            extension_gates: 0,
        };
        let b = AreaModel {
            mac_block: false,
            zol_block: false,
            cache_bytes: 1024,
            extension_gates: 0,
        };
        assert_eq!(a.total_gates(), b.total_gates());
    }
}
