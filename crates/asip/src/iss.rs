//! The cycle-accurate instruction-set simulator.
//!
//! The "Profiling by means of an ISS" box of Fig. 2: the ISS executes a
//! program, attributing cycles to each program counter so the designer
//! can see "which parts of the application represent the most time
//! consuming ones". It models the three §3.1 customisation levels:
//!
//! * custom instructions (executed from an [`ExtensionCatalog`], charged
//!   their fused cycle cost);
//! * predefined blocks — a MAC unit (single-cycle multiply) and
//!   zero-overhead loops (free backward taken branches);
//! * parameters — data-cache size (direct-mapped, 4-word lines) and
//!   memory size.

use serde::{Deserialize, Serialize};

use crate::error::AsipError;
use crate::extend::ExtensionCatalog;
use crate::isa::{Cond, Instr, Reg, REG_COUNT};
use crate::program::Program;

/// ISS configuration: predefined blocks and parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IssConfig {
    /// Data-memory size in 64-bit words.
    pub mem_words: usize,
    /// Data-cache size in 64-bit words (0 disables the cache: every
    /// access pays the miss penalty).
    pub cache_words: usize,
    /// Extra cycles for a cache miss.
    pub cache_miss_penalty: u64,
    /// MAC predefined block: multiplies take 1 cycle instead of 3.
    pub mac_block: bool,
    /// Zero-overhead-loop block: taken backward branches cost 0 extra.
    pub zero_overhead_loops: bool,
    /// Maximum instructions to execute before aborting.
    pub fuel: u64,
}

impl Default for IssConfig {
    fn default() -> Self {
        IssConfig {
            mem_words: 1 << 16,
            cache_words: 256,
            cache_miss_penalty: 10,
            mac_block: false,
            zero_overhead_loops: false,
            fuel: 100_000_000,
        }
    }
}

/// The result of executing a program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Total cycles consumed.
    pub cycles: u64,
    /// Instructions executed (custom ops count once).
    pub instructions: u64,
    /// Cycles attributed to each program counter.
    pub pc_cycles: Vec<u64>,
    /// Execution count of each program counter.
    pub pc_execs: Vec<u64>,
    /// Final register file.
    pub regs: Vec<i64>,
    /// Final data memory.
    pub memory: Vec<i64>,
    /// Cache hits observed.
    pub cache_hits: u64,
    /// Cache misses observed.
    pub cache_misses: u64,
}

impl ExecReport {
    /// Convenience: the value of register `r` at halt.
    #[must_use]
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs.get(r.0 as usize).copied().unwrap_or(0)
    }
}

/// Words per cache line.
const LINE_WORDS: usize = 4;

/// Direct-mapped data cache (tags only; data lives in `memory`).
#[derive(Debug, Clone)]
struct Cache {
    tags: Vec<Option<usize>>,
}

impl Cache {
    fn new(cache_words: usize) -> Option<Self> {
        if cache_words < LINE_WORDS {
            return None;
        }
        Some(Cache {
            tags: vec![None; cache_words / LINE_WORDS],
        })
    }

    /// Returns `true` on hit and updates the tag on miss.
    fn access(&mut self, addr: usize) -> bool {
        let line = addr / LINE_WORDS;
        let idx = line % self.tags.len();
        if self.tags[idx] == Some(line) {
            true
        } else {
            self.tags[idx] = Some(line);
            false
        }
    }
}

/// The instruction-set simulator.
#[derive(Debug, Clone)]
pub struct Iss {
    config: IssConfig,
    catalog: ExtensionCatalog,
}

impl Iss {
    /// Creates a simulator for a processor configuration.
    #[must_use]
    pub fn new(config: IssConfig, catalog: ExtensionCatalog) -> Self {
        Iss { config, catalog }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &IssConfig {
        &self.config
    }

    /// The extension catalog ("retargeted" ISSs carry the custom ops).
    #[must_use]
    pub fn catalog(&self) -> &ExtensionCatalog {
        &self.catalog
    }

    /// Runs `program` on zeroed memory.
    ///
    /// # Errors
    ///
    /// See [`Iss::run_with_memory`].
    pub fn run(&self, program: &Program) -> Result<ExecReport, AsipError> {
        self.run_with_memory(program, vec![0; self.config.mem_words])
    }

    /// Runs `program` on the given initial memory (resized to the
    /// configured word count).
    ///
    /// # Errors
    ///
    /// * [`AsipError::MemoryFault`] for out-of-range accesses.
    /// * [`AsipError::OutOfFuel`] if the fuel budget is exhausted.
    /// * [`AsipError::MissingHalt`] if execution falls off the end.
    /// * [`AsipError::UnknownCustomOp`] for an opcode missing from the
    ///   catalog.
    pub fn run_with_memory(
        &self,
        program: &Program,
        mut memory: Vec<i64>,
    ) -> Result<ExecReport, AsipError> {
        memory.resize(self.config.mem_words, 0);
        let mut regs = vec![0i64; REG_COUNT as usize];
        let mut cache = Cache::new(self.config.cache_words);
        let mut pc = 0usize;
        let mut cycles = 0u64;
        let mut instructions = 0u64;
        let n = program.len();
        let mut pc_cycles = vec![0u64; n];
        let mut pc_execs = vec![0u64; n];
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let instrs = program.instructions();

        while pc < n {
            if instructions >= self.config.fuel {
                return Err(AsipError::OutOfFuel {
                    executed: instructions,
                });
            }
            let instr = instrs[pc];
            instructions += 1;
            pc_execs[pc] += 1;
            let mut cost;
            let mut next_pc = pc + 1;
            match instr {
                Instr::Halt => {
                    pc_cycles[pc] += 1;
                    cycles += 1;
                    return Ok(ExecReport {
                        cycles,
                        instructions,
                        pc_cycles,
                        pc_execs,
                        regs,
                        memory,
                        cache_hits,
                        cache_misses,
                    });
                }
                Instr::Custom(opcode) => {
                    let op = self.catalog.op(opcode)?.clone();
                    cost = op.cycles;
                    for sub in &op.sequence {
                        let mem_extra = Self::exec_data(
                            *sub,
                            &mut regs,
                            &mut memory,
                            &mut cache,
                            self.config.cache_miss_penalty,
                            &mut cache_hits,
                            &mut cache_misses,
                        )?;
                        cost += mem_extra;
                    }
                }
                Instr::Branch(cond, a, b, target) => {
                    cost = 1;
                    let av = regs[a.0 as usize];
                    let bv = regs[b.0 as usize];
                    let taken = match cond {
                        Cond::Eq => av == bv,
                        Cond::Ne => av != bv,
                        Cond::Lt => av < bv,
                        Cond::Ge => av >= bv,
                    };
                    if taken {
                        // Pipeline bubble on taken branches, except for
                        // hardware (zero-overhead) loops branching back.
                        if !(self.config.zero_overhead_loops && target <= pc) {
                            cost += 1;
                        }
                        next_pc = target;
                    }
                }
                Instr::Jmp(target) => {
                    cost = if self.config.zero_overhead_loops && target <= pc {
                        1
                    } else {
                        2
                    };
                    next_pc = target;
                }
                other => {
                    cost = if other.is_multiply() && self.config.mac_block {
                        1
                    } else {
                        other.base_cycles()
                    };
                    let mem_extra = Self::exec_data(
                        other,
                        &mut regs,
                        &mut memory,
                        &mut cache,
                        self.config.cache_miss_penalty,
                        &mut cache_hits,
                        &mut cache_misses,
                    )?;
                    cost += mem_extra;
                }
            }
            pc_cycles[pc] += cost;
            cycles += cost;
            pc = next_pc;
        }
        Err(AsipError::MissingHalt)
    }

    /// Executes one data (non-control) instruction; returns the extra
    /// memory cycles incurred (cache miss penalties).
    fn exec_data(
        instr: Instr,
        regs: &mut [i64],
        memory: &mut [i64],
        cache: &mut Option<Cache>,
        miss_penalty: u64,
        hits: &mut u64,
        misses: &mut u64,
    ) -> Result<u64, AsipError> {
        fn get(r: Reg, regs: &[i64]) -> i64 {
            regs[r.0 as usize]
        }
        fn set(r: Reg, v: i64, regs: &mut [i64]) {
            if r.0 != 0 {
                regs[r.0 as usize] = v;
            }
        }
        #[allow(clippy::too_many_arguments)]
        fn resolve(
            base: Reg,
            offset: i64,
            regs: &[i64],
            mem_len: usize,
            cache: &mut Option<Cache>,
            miss_penalty: u64,
            hits: &mut u64,
            misses: &mut u64,
            mem_extra: &mut u64,
        ) -> Result<usize, AsipError> {
            let addr = get(base, regs) + offset;
            if addr < 0 || addr as usize >= mem_len {
                return Err(AsipError::MemoryFault { address: addr });
            }
            let hit = cache.as_mut().is_some_and(|c| c.access(addr as usize));
            if hit {
                *hits += 1;
            } else {
                *misses += 1;
                *mem_extra += miss_penalty;
            }
            Ok(addr as usize)
        }
        let mut mem_extra = 0u64;
        match instr {
            Instr::Add(d, a, b) => set(d, get(a, regs).wrapping_add(get(b, regs)), regs),
            Instr::Sub(d, a, b) => set(d, get(a, regs).wrapping_sub(get(b, regs)), regs),
            Instr::Mul(d, a, b) => set(d, get(a, regs).wrapping_mul(get(b, regs)), regs),
            Instr::Addi(d, a, imm) => set(d, get(a, regs).wrapping_add(imm), regs),
            Instr::Shli(d, a, imm) => set(d, get(a, regs) << (imm & 63), regs),
            Instr::Shri(d, a, imm) => set(d, get(a, regs) >> (imm & 63), regs),
            Instr::And(d, a, b) => set(d, get(a, regs) & get(b, regs), regs),
            Instr::Or(d, a, b) => set(d, get(a, regs) | get(b, regs), regs),
            Instr::Xor(d, a, b) => set(d, get(a, regs) ^ get(b, regs), regs),
            Instr::Li(d, imm) => set(d, imm, regs),
            Instr::Ld(d, base, offset) => {
                let addr = resolve(
                    base,
                    offset,
                    regs,
                    memory.len(),
                    cache,
                    miss_penalty,
                    hits,
                    misses,
                    &mut mem_extra,
                )?;
                let v = memory[addr];
                set(d, v, regs);
            }
            Instr::St(src, base, offset) => {
                let addr = resolve(
                    base,
                    offset,
                    regs,
                    memory.len(),
                    cache,
                    miss_penalty,
                    hits,
                    misses,
                    &mut mem_extra,
                )?;
                memory[addr] = get(src, regs);
            }
            // Control flow is handled by the main loop; Custom never nests.
            Instr::Branch(..) | Instr::Jmp(_) | Instr::Custom(_) | Instr::Halt => {}
        }
        Ok(mem_extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn iss() -> Iss {
        Iss::new(IssConfig::default(), ExtensionCatalog::new())
    }

    #[test]
    fn arithmetic_semantics() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 6);
        b.li(Reg(2), 7);
        b.mul(Reg(3), Reg(1), Reg(2));
        b.addi(Reg(3), Reg(3), -2);
        b.shli(Reg(4), Reg(3), 1);
        b.shri(Reg(5), Reg(4), 2);
        b.xor(Reg(6), Reg(4), Reg(5));
        b.halt();
        let r = iss().run(&b.build().expect("valid")).expect("runs");
        assert_eq!(r.reg(Reg(3)), 40);
        assert_eq!(r.reg(Reg(4)), 80);
        assert_eq!(r.reg(Reg(5)), 20);
        assert_eq!(r.reg(Reg(6)), 80 ^ 20);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(0), 42);
        b.add(Reg(1), Reg(0), Reg(0));
        b.halt();
        let r = iss().run(&b.build().expect("valid")).expect("runs");
        assert_eq!(r.reg(Reg(0)), 0);
        assert_eq!(r.reg(Reg(1)), 0);
    }

    #[test]
    fn memory_round_trip_and_fault() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 123);
        b.st(Reg(1), Reg(0), 10);
        b.ld(Reg(2), Reg(0), 10);
        b.halt();
        let r = iss().run(&b.build().expect("valid")).expect("runs");
        assert_eq!(r.reg(Reg(2)), 123);
        assert_eq!(r.memory[10], 123);

        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), -5);
        b.halt();
        let err = iss().run(&b.build().expect("valid")).expect_err("fault");
        assert_eq!(err, AsipError::MemoryFault { address: -5 });
    }

    #[test]
    fn loop_executes_correct_count() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(2), 10);
        let top = b.place_label();
        b.addi(Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        let r = iss().run(&b.build().expect("valid")).expect("runs");
        assert_eq!(r.reg(Reg(1)), 10);
        assert_eq!(r.pc_execs[1], 10);
        assert_eq!(r.pc_execs[2], 10);
    }

    #[test]
    fn fuel_guards_infinite_loops() {
        let mut b = ProgramBuilder::new();
        let top = b.place_label();
        b.jmp(top);
        b.halt();
        let mut cfg = IssConfig::default();
        cfg.fuel = 1000;
        let iss = Iss::new(cfg, ExtensionCatalog::new());
        assert!(matches!(
            iss.run(&b.build().expect("valid")),
            Err(AsipError::OutOfFuel { .. })
        ));
    }

    #[test]
    fn missing_halt_detected() {
        let mut b = ProgramBuilder::new();
        b.addi(Reg(1), Reg(1), 1);
        let err = iss().run(&b.build().expect("valid")).expect_err("no halt");
        assert_eq!(err, AsipError::MissingHalt);
    }

    #[test]
    fn mac_block_accelerates_multiplies() {
        let mut b = ProgramBuilder::new();
        for _ in 0..100 {
            b.mul(Reg(1), Reg(2), Reg(3));
        }
        b.halt();
        let p = b.build().expect("valid");
        let plain = iss().run(&p).expect("runs");
        let mut cfg = IssConfig::default();
        cfg.mac_block = true;
        let fast = Iss::new(cfg, ExtensionCatalog::new())
            .run(&p)
            .expect("runs");
        assert_eq!(plain.cycles - fast.cycles, 200); // 100 muls × (3−1)
    }

    #[test]
    fn zero_overhead_loops_remove_branch_bubbles() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(2), 1000);
        let top = b.place_label();
        b.addi(Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        let p = b.build().expect("valid");
        let plain = iss().run(&p).expect("runs");
        let mut cfg = IssConfig::default();
        cfg.zero_overhead_loops = true;
        let zol = Iss::new(cfg, ExtensionCatalog::new())
            .run(&p)
            .expect("runs");
        // 999 taken backward branches × 1 bubble each.
        assert_eq!(plain.cycles - zol.cycles, 999);
    }

    #[test]
    fn cache_misses_cost_cycles() {
        // Stream over 1024 words with a 256-word cache: every 4-word line
        // misses once.
        let mut b = ProgramBuilder::new();
        b.li(Reg(2), 1024);
        let top = b.place_label();
        b.ld(Reg(3), Reg(1), 0);
        b.addi(Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        let p = b.build().expect("valid");
        let r = iss().run(&p).expect("runs");
        assert_eq!(r.cache_misses, 256); // 1024 / 4 words per line
        assert_eq!(r.cache_hits, 768);
        // A larger cache does not help a pure streaming pattern…
        let mut big = IssConfig::default();
        big.cache_words = 4096;
        let rb = Iss::new(big, ExtensionCatalog::new())
            .run(&p)
            .expect("runs");
        assert_eq!(rb.cache_misses, 256);
        // …but disabling the cache makes every access miss.
        let mut none = IssConfig::default();
        none.cache_words = 0;
        let rn = Iss::new(none, ExtensionCatalog::new())
            .run(&p)
            .expect("runs");
        assert_eq!(rn.cache_misses, 1024);
        assert!(rn.cycles > r.cycles);
    }

    #[test]
    fn custom_op_preserves_semantics_and_saves_cycles() {
        use crate::extend::CustomOp;
        // Base sequence: r3 = (r1 + r2) * r1
        let seq = [
            Instr::Add(Reg(3), Reg(1), Reg(2)),
            Instr::Mul(Reg(3), Reg(3), Reg(1)),
        ];
        let mut cat = ExtensionCatalog::new();
        let opcode = cat.add(CustomOp::from_window("madd", &seq).expect("fusible"));

        let mut base = ProgramBuilder::new();
        base.li(Reg(1), 5);
        base.li(Reg(2), 9);
        base.add(Reg(3), Reg(1), Reg(2));
        base.mul(Reg(3), Reg(3), Reg(1));
        base.halt();
        let base_r = iss().run(&base.build().expect("valid")).expect("runs");

        let custom = Program::new(vec![
            Instr::Li(Reg(1), 5),
            Instr::Li(Reg(2), 9),
            Instr::Custom(opcode),
            Instr::Halt,
        ])
        .expect("valid");
        let custom_r = Iss::new(IssConfig::default(), cat)
            .run(&custom)
            .expect("runs");
        assert_eq!(base_r.reg(Reg(3)), custom_r.reg(Reg(3)));
        assert_eq!(custom_r.reg(Reg(3)), (5 + 9) * 5);
        assert!(custom_r.cycles < base_r.cycles);
    }

    #[test]
    fn unknown_custom_op_is_reported() {
        let p = Program::new(vec![Instr::Custom(7), Instr::Halt]).expect("valid");
        assert_eq!(
            iss().run(&p).expect_err("no catalog"),
            AsipError::UnknownCustomOp(7)
        );
    }

    use crate::program::Program;
}
