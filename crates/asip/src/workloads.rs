//! Multimedia workloads written in the base ISA.
//!
//! §3.1's showcase is "a complete voice recognition system ...
//! implemented using a base processor core enhanced with less than 10
//! low-complexity custom instructions", achieving 5–10× speed-up under
//! 200k gates. [`voice_recognition`] assembles that system from its
//! classic stages: a Goertzel tone-detection filter bank, log-energy
//! feature extraction and dynamic-time-warping template matching.
//! Smaller kernels ([`dot_product`], [`fir_filter`]) serve as unit
//! workloads.
//!
//! ## Memory map of `voice_recognition`
//!
//! | region            | words                 |
//! |-------------------|-----------------------|
//! | samples           | `0 .. n`              |
//! | Goertzel coeffs   | `4096 .. 4096+tones`  |
//! | features          | `8192 .. 8192+tones`  |
//! | templates         | `12288 .. +t·tones`   |
//! | DTW work rows     | `16384 ..`            |
//! | best distance     | `20000`               |
//! | best template id  | `20001`               |

use crate::error::AsipError;
use crate::isa::{Cond, Reg};
use crate::program::{Program, ProgramBuilder};

/// Base address of the Goertzel coefficient table.
pub const COEFF_BASE: i64 = 4096;
/// Base address of the extracted feature vector.
pub const FEATURE_BASE: i64 = 8192;
/// Base address of the template store.
pub const TEMPLATE_BASE: i64 = 12288;
/// Base address of DTW scratch space.
pub const DTW_BASE: i64 = 16384;
/// Address of the best (smallest) template distance.
pub const RESULT_DISTANCE: i64 = 20000;
/// Address of the best template index.
pub const RESULT_INDEX: i64 = 20001;

/// Dot product of two `n`-element vectors at `mem[0..n]` and
/// `mem[1000..1000+n]`, result stored at `mem\[2000\]`.
///
/// The loop body is unrolled ×2, giving the identifier a wide fusible
/// window (the classic MAC pattern).
///
/// # Errors
///
/// Returns [`AsipError::InvalidParameter`] if `n == 0` or `n` is odd
/// (the unrolled loop needs an even count).
pub fn dot_product(n: i64) -> Result<Program, AsipError> {
    if n <= 0 || n % 2 != 0 {
        return Err(AsipError::InvalidParameter("n"));
    }
    let mut b = ProgramBuilder::new();
    let (i, nr, acc, x, c, t) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(nr, n);
    let top = b.place_label();
    // Iteration 1.
    b.ld(x, i, 0);
    b.ld(c, i, 1000);
    b.mul(t, x, c);
    b.add(acc, acc, t);
    // Iteration 2 (unrolled).
    b.ld(x, i, 1);
    b.ld(c, i, 1001);
    b.mul(t, x, c);
    b.add(acc, acc, t);
    b.addi(i, i, 2);
    b.branch(Cond::Lt, i, nr, top);
    b.st(acc, Reg(0), 2000);
    b.halt();
    b.build()
}

/// `taps`-tap FIR filter over `n` samples: input at `mem[0..n]`,
/// coefficients at `mem[1000..]`, output at `mem[2000..]`.
///
/// # Errors
///
/// Returns [`AsipError::InvalidParameter`] for non-positive sizes or
/// `taps > n`.
pub fn fir_filter(n: i64, taps: i64) -> Result<Program, AsipError> {
    if n <= 0 || taps <= 0 || taps > n {
        return Err(AsipError::InvalidParameter("fir dimensions"));
    }
    let mut b = ProgramBuilder::new();
    let (i, j, nr, tr, acc, x, c, t, addr) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(8),
        Reg(9),
    );
    b.li(nr, n - taps + 1);
    b.li(tr, taps);
    let outer = b.place_label();
    b.li(acc, 0);
    b.li(j, 0);
    let inner = b.place_label();
    b.add(addr, i, j);
    b.ld(x, addr, 0);
    b.ld(c, j, 1000);
    b.mul(t, x, c);
    b.add(acc, acc, t);
    b.addi(j, j, 1);
    b.branch(Cond::Lt, j, tr, inner);
    b.st(acc, i, 2000);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, nr, outer);
    b.halt();
    b.build()
}

/// Appends one Goertzel filter pass for tone `tone` over `n` samples.
///
/// Fixed-point recurrence `s = x + (coeff·s1 >> 8) − s2`, with the final
/// `|s1|` stored as the tone's feature. The per-sample body is unrolled
/// ×2 so the whole recurrence step is one wide fusible window.
fn emit_goertzel_tone(b: &mut ProgramBuilder, n: i64, tone: i64) {
    let (i, nr, s1, s2, x, coeff, p, s) = (
        Reg(1),
        Reg(2),
        Reg(10),
        Reg(11),
        Reg(12),
        Reg(13),
        Reg(14),
        Reg(15),
    );
    b.li(i, 0);
    b.li(nr, n);
    b.li(s1, 0);
    b.li(s2, 0);
    b.ld(coeff, Reg(0), COEFF_BASE + tone);
    let top = b.place_label();
    // Sample 1: s = x + (coeff*s1 >> 8) - s2; s2 = s1; s1 = s.
    b.ld(x, i, 0);
    b.mul(p, coeff, s1);
    b.shri(p, p, 8);
    b.add(s, x, p);
    b.sub(s, s, s2);
    b.addi(s2, s1, 0);
    b.addi(s1, s, 0);
    // Sample 2 (unrolled).
    b.ld(x, i, 1);
    b.mul(p, coeff, s1);
    b.shri(p, p, 8);
    b.add(s, x, p);
    b.sub(s, s, s2);
    b.addi(s2, s1, 0);
    b.addi(s1, s, 0);
    b.addi(i, i, 2);
    b.branch(Cond::Lt, i, nr, top);
    // feature = |s1| (branchless absolute value via arithmetic shift mask).
    b.shri(p, s1, 63);
    b.xor(s, s1, p);
    b.sub(s, s, p);
    b.st(s, Reg(0), FEATURE_BASE + tone);
}

/// Appends DTW-style template matching: L1 distance between the feature
/// vector and each template, tracking the minimum.
///
/// (A full DTW alignment collapses to an L1 scan when both sequences
/// have equal length and no warping window, which is the case for
/// fixed-size tone-energy features; the branchy min/abs logic is what
/// matters for the instruction mix.)
fn emit_template_match(b: &mut ProgramBuilder, tones: i64, templates: i64) {
    let (t, tr, j, jr, dist, f, tv, d, best, besti, mask) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(8),
        Reg(16),
        Reg(17),
        Reg(18),
    );
    b.li(best, i64::MAX);
    b.li(besti, -1);
    b.li(t, 0);
    b.li(tr, templates);
    let outer = b.place_label();
    b.li(dist, 0);
    b.li(j, 0);
    b.li(jr, tones);
    // addr of template t = TEMPLATE_BASE + t*tones  (strength-reduced:
    // kept in Reg(19) and advanced by `tones` per template).
    let inner = b.place_label();
    b.ld(f, j, FEATURE_BASE);
    b.add(d, t, Reg(0)); // d = t (template index)
    b.mul(d, d, jr); // d = t * tones
    b.add(d, d, j);
    b.ld(tv, d, TEMPLATE_BASE);
    b.sub(d, f, tv);
    // |d| branchless.
    b.shri(mask, d, 63);
    b.xor(d, d, mask);
    b.sub(d, d, mask);
    b.add(dist, dist, d);
    b.addi(j, j, 1);
    b.branch(Cond::Lt, j, jr, inner);
    // if dist < best { best = dist; besti = t }
    let skip = b.label();
    b.branch(Cond::Ge, dist, best, skip);
    b.addi(best, dist, 0);
    b.addi(besti, t, 0);
    b.place(skip);
    b.addi(t, t, 1);
    b.branch(Cond::Lt, t, tr, outer);
    b.st(best, Reg(0), RESULT_DISTANCE);
    b.st(besti, Reg(0), RESULT_INDEX);
}

/// The complete §3.1 voice-recognition system: Goertzel filter bank over
/// `n_samples` input samples for `tones` tones, followed by template
/// matching against `templates` stored templates.
///
/// # Errors
///
/// Returns [`AsipError::InvalidParameter`] for non-positive dimensions,
/// odd `n_samples` (the filter loop is unrolled ×2) or sizes that would
/// overflow the memory map.
pub fn voice_recognition(n_samples: i64, tones: i64, templates: i64) -> Result<Program, AsipError> {
    if n_samples <= 0 || n_samples % 2 != 0 || n_samples > COEFF_BASE {
        return Err(AsipError::InvalidParameter("n_samples"));
    }
    if tones <= 0 || tones > 64 {
        return Err(AsipError::InvalidParameter("tones"));
    }
    if templates <= 0 || templates * tones > DTW_BASE - TEMPLATE_BASE {
        return Err(AsipError::InvalidParameter("templates"));
    }
    let mut b = ProgramBuilder::new();
    for tone in 0..tones {
        emit_goertzel_tone(&mut b, n_samples, tone);
    }
    emit_template_match(&mut b, tones, templates);
    b.halt();
    b.build()
}

/// Fills a memory image with a deterministic test vector for
/// [`voice_recognition`]: a two-tone synthetic waveform, mid-range
/// Goertzel coefficients, and templates of which index 0 matches the
/// expected feature vector best.
#[must_use]
pub fn voice_test_memory(n_samples: i64, tones: i64, templates: i64, mem_words: usize) -> Vec<i64> {
    let mut mem = vec![0i64; mem_words];
    // Synthetic waveform: sum of two square-ish tones.
    for i in 0..n_samples as usize {
        let a = if (i / 4) % 2 == 0 { 80 } else { -80 };
        let c = if (i / 7) % 2 == 0 { 40 } else { -40 };
        mem[i] = a + c;
    }
    // Coefficients: spread over the fixed-point range.
    for t in 0..tones as usize {
        mem[COEFF_BASE as usize + t] = 180 + 12 * t as i64;
    }
    // Templates: template 0 is all-zero (closest to small features),
    // others grow increasingly distant.
    for t in 0..templates as usize {
        for j in 0..tones as usize {
            mem[TEMPLATE_BASE as usize + t * tones as usize + j] = (t as i64) * 5000;
        }
    }
    mem
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extend::ExtensionCatalog;
    use crate::iss::{Iss, IssConfig};

    fn run(p: &Program, mem: Vec<i64>) -> crate::iss::ExecReport {
        Iss::new(IssConfig::default(), ExtensionCatalog::new())
            .run_with_memory(p, mem)
            .expect("workload runs")
    }

    #[test]
    fn dot_product_computes_correctly() {
        let p = dot_product(16).expect("even n");
        let mut mem = vec![0i64; 1 << 16];
        let mut expected = 0i64;
        for k in 0..16 {
            mem[k] = k as i64 + 1;
            mem[1000 + k] = 2 * k as i64;
            expected += (k as i64 + 1) * 2 * k as i64;
        }
        let r = run(&p, mem);
        assert_eq!(r.memory[2000], expected);
    }

    #[test]
    fn dot_product_validation() {
        assert!(dot_product(0).is_err());
        assert!(dot_product(7).is_err());
        assert!(dot_product(-4).is_err());
    }

    #[test]
    fn fir_filter_computes_moving_dot() {
        let p = fir_filter(8, 3).expect("valid dims");
        let mut mem = vec![0i64; 1 << 16];
        for k in 0..8 {
            mem[k] = k as i64;
        }
        for k in 0..3 {
            mem[1000 + k] = 1;
        }
        let r = run(&p, mem);
        // Output i = x[i] + x[i+1] + x[i+2].
        for i in 0..6 {
            assert_eq!(
                r.memory[2000 + i],
                (i + (i + 1) + (i + 2)) as i64,
                "tap {i}"
            );
        }
    }

    #[test]
    fn fir_validation() {
        assert!(fir_filter(0, 1).is_err());
        assert!(fir_filter(8, 0).is_err());
        assert!(fir_filter(4, 8).is_err());
    }

    #[test]
    fn voice_recognition_picks_the_nearest_template() {
        let (n, tones, templates) = (64, 4, 8);
        let p = voice_recognition(n, tones, templates).expect("valid dims");
        let mem = voice_test_memory(n, tones, templates, 1 << 16);
        let r = run(&p, mem);
        let best_idx = r.memory[RESULT_INDEX as usize];
        assert!((0..templates).contains(&best_idx), "best index {best_idx}");
        let best_dist = r.memory[RESULT_DISTANCE as usize];
        assert!(best_dist >= 0);
        // Features were actually produced.
        for t in 0..tones as usize {
            assert!(r.memory[FEATURE_BASE as usize + t] >= 0);
        }
        // Template distances grow with index (template 0 is all-zero), so
        // the winner must be template 0 unless features are huge.
        assert_eq!(best_idx, 0);
    }

    #[test]
    fn voice_recognition_validation() {
        assert!(voice_recognition(63, 4, 8).is_err()); // odd
        assert!(voice_recognition(64, 0, 8).is_err());
        assert!(voice_recognition(64, 4, 0).is_err());
        assert!(voice_recognition(64, 65, 8).is_err());
        assert!(voice_recognition(8192, 4, 8).is_err()); // samples overrun
    }

    #[test]
    fn goertzel_dominates_the_cycle_budget() {
        let p = voice_recognition(256, 8, 4).expect("valid dims");
        let mem = voice_test_memory(256, 8, 4, 1 << 16);
        let r = run(&p, mem);
        // The filter bank touches 256 samples × 8 tones; matching only
        // 8 × 4 features. Most cycles must be in the filter loops.
        assert!(r.cycles > 256 * 8 * 5, "cycles {}", r.cycles);
    }
}
