//! Programs and the label-resolving builder.

use serde::{Deserialize, Serialize};

use crate::error::AsipError;
use crate::isa::{Cond, Instr, Reg};

/// A forward-referenceable code label handed out by
/// [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// A finished program: instructions with resolved absolute branch
/// targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates a program directly from resolved instructions.
    ///
    /// # Errors
    ///
    /// Returns [`AsipError::BadRegister`] or
    /// [`AsipError::UnresolvedLabel`] (for a branch target outside the
    /// program) if validation fails.
    pub fn new(instrs: Vec<Instr>) -> Result<Self, AsipError> {
        let len = instrs.len();
        for instr in &instrs {
            for r in instr.defs().into_iter().chain(instr.uses()) {
                if !r.is_valid() {
                    return Err(AsipError::BadRegister(r.0));
                }
            }
            match instr {
                Instr::Branch(_, _, _, t) | Instr::Jmp(t) if *t >= len => {
                    return Err(AsipError::UnresolvedLabel(*t));
                }
                _ => {}
            }
        }
        Ok(Program { instrs })
    }

    /// The instruction sequence.
    #[must_use]
    pub fn instructions(&self) -> &[Instr] {
        &self.instrs
    }

    /// Program length in instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// All instruction indices that are branch/jump targets.
    #[must_use]
    pub fn branch_targets(&self) -> Vec<usize> {
        let mut targets: Vec<usize> = self
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Branch(_, _, _, t) | Instr::Jmp(t) => Some(*t),
                _ => None,
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        targets
    }
}

/// Builds a [`Program`] with symbolic labels.
///
/// # Examples
///
/// A loop summing `0..10`:
///
/// ```
/// use dms_asip::isa::{Cond, Reg};
/// use dms_asip::program::ProgramBuilder;
///
/// # fn main() -> Result<(), dms_asip::AsipError> {
/// let mut b = ProgramBuilder::new();
/// let (i, acc, n) = (Reg(1), Reg(2), Reg(3));
/// b.li(n, 10);
/// let top = b.place_label();
/// b.add(acc, acc, i);
/// b.addi(i, i, 1);
/// b.branch(Cond::Lt, i, n, top);
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    /// `labels[l]` = resolved instruction index, once placed.
    labels: Vec<Option<usize>>,
    /// `(instruction index, label)` pairs to patch at build time.
    patches: Vec<(usize, usize)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a label to be placed later with
    /// [`ProgramBuilder::place`].
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Places `label` at the current position.
    pub fn place(&mut self, label: Label) {
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Allocates and immediately places a label (for loop tops).
    pub fn place_label(&mut self) -> Label {
        let l = self.label();
        self.place(l);
        l
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.instrs.push(Instr::Add(dst, a, b));
        self
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.instrs.push(Instr::Sub(dst, a, b));
        self
    }

    /// `dst = a * b`
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.instrs.push(Instr::Mul(dst, a, b));
        self
    }

    /// `dst = a + imm`
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.instrs.push(Instr::Addi(dst, a, imm));
        self
    }

    /// `dst = a << imm`
    pub fn shli(&mut self, dst: Reg, a: Reg, imm: u8) -> &mut Self {
        self.instrs.push(Instr::Shli(dst, a, imm));
        self
    }

    /// `dst = a >> imm` (arithmetic)
    pub fn shri(&mut self, dst: Reg, a: Reg, imm: u8) -> &mut Self {
        self.instrs.push(Instr::Shri(dst, a, imm));
        self
    }

    /// `dst = a & b`
    pub fn and(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.instrs.push(Instr::And(dst, a, b));
        self
    }

    /// `dst = a | b`
    pub fn or(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.instrs.push(Instr::Or(dst, a, b));
        self
    }

    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.instrs.push(Instr::Xor(dst, a, b));
        self
    }

    /// `dst = imm`
    pub fn li(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.instrs.push(Instr::Li(dst, imm));
        self
    }

    /// `dst = mem[base + offset]`
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.instrs.push(Instr::Ld(dst, base, offset));
        self
    }

    /// `mem[base + offset] = src`
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.instrs.push(Instr::St(src, base, offset));
        self
    }

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Reg, label: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), label.0));
        self.instrs.push(Instr::Branch(cond, a, b, usize::MAX));
        self
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), label.0));
        self.instrs.push(Instr::Jmp(usize::MAX));
        self
    }

    /// Stop.
    pub fn halt(&mut self) -> &mut Self {
        self.instrs.push(Instr::Halt);
        self
    }

    /// Resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// * [`AsipError::UnresolvedLabel`] if a referenced label was never
    ///   placed.
    /// * [`AsipError::BadRegister`] if any instruction names a register
    ///   outside the file.
    pub fn build(mut self) -> Result<Program, AsipError> {
        for (at, label) in &self.patches {
            let target = self.labels[*label].ok_or(AsipError::UnresolvedLabel(*label))?;
            match &mut self.instrs[*at] {
                Instr::Branch(_, _, _, t) | Instr::Jmp(t) => *t = target,
                other => unreachable!("patch points at non-branch {other:?}"),
            }
        }
        Program::new(self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let end = b.label();
        let top = b.place_label();
        b.addi(Reg(1), Reg(1), 1);
        b.branch(Cond::Ge, Reg(1), Reg(2), end);
        b.jmp(top);
        b.place(end);
        b.halt();
        let p = b.build().expect("labels placed");
        match p.instructions()[1] {
            Instr::Branch(_, _, _, t) => assert_eq!(t, 3),
            ref other => panic!("expected branch, got {other:?}"),
        }
        match p.instructions()[2] {
            Instr::Jmp(t) => assert_eq!(t, 0),
            ref other => panic!("expected jmp, got {other:?}"),
        }
    }

    #[test]
    fn unplaced_label_fails() {
        let mut b = ProgramBuilder::new();
        let ghost = b.label();
        b.jmp(ghost);
        assert!(matches!(b.build(), Err(AsipError::UnresolvedLabel(_))));
    }

    #[test]
    fn bad_register_fails() {
        let p = Program::new(vec![Instr::Add(Reg(40), Reg(0), Reg(0)), Instr::Halt]);
        assert_eq!(p.expect_err("r40 invalid"), AsipError::BadRegister(40));
    }

    #[test]
    fn out_of_range_target_fails() {
        let p = Program::new(vec![Instr::Jmp(5), Instr::Halt]);
        assert!(matches!(p, Err(AsipError::UnresolvedLabel(5))));
    }

    #[test]
    fn branch_targets_collected() {
        let mut b = ProgramBuilder::new();
        let top = b.place_label();
        b.addi(Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        let p = b.build().expect("valid");
        assert_eq!(p.branch_targets(), vec![0]);
    }

    #[test]
    fn empty_program_is_fine() {
        let p = Program::new(vec![]).expect("empty is valid");
        assert!(p.is_empty());
        assert!(p.branch_targets().is_empty());
    }
}
