//! Error type shared by the wire protocol, the endpoints and the
//! drivers.

use std::fmt;

/// Everything that can go wrong between a socket and the slot loop.
#[derive(Debug)]
pub enum NetError {
    /// A frame violated the wire grammar (bad tag, bad length,
    /// oversized payload). Decoding never panics — corrupt input lands
    /// here, naming the offending rule.
    Frame(&'static str),
    /// A well-formed frame arrived at the wrong point of the session
    /// protocol (offer before hello, slot going backwards, …).
    Protocol(&'static str),
    /// The peer speaks a different protocol version.
    Version {
        /// Version this side implements.
        ours: u16,
        /// Version the peer announced.
        theirs: u16,
    },
    /// The peer closed the connection before a graceful shutdown.
    Closed,
    /// No heartbeat (or any other frame) within the stall window.
    Stalled,
    /// Reconnect backoff ran out of retries.
    RetriesExhausted,
    /// An underlying socket error.
    Io(std::io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Frame(rule) => write!(f, "malformed frame: {rule}"),
            NetError::Protocol(rule) => write!(f, "protocol violation: {rule}"),
            NetError::Version { ours, theirs } => {
                write!(f, "version mismatch: ours {ours}, peer {theirs}")
            }
            NetError::Closed => write!(f, "peer closed before shutdown"),
            NetError::Stalled => write!(f, "stalled: no frame within the heartbeat window"),
            NetError::RetriesExhausted => write!(f, "reconnect retries exhausted"),
            NetError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}
