//! The wire protocol: one [`Frame`] enum, one binary encoding, one
//! incremental decoder — the single source of truth both sides of
//! every `dms-net` socket share.
//!
//! # Frame grammar
//!
//! Every frame is a little-endian length-prefixed record:
//!
//! ```text
//! [u32 payload_len][u8 tag][payload bytes…]
//! ```
//!
//! `payload_len` counts the tag byte plus the fixed-width body, so a
//! decoder can skip unknown *lengths* but never guesses: each tag has
//! exactly one legal payload length, anything else is
//! [`NetError::Frame`] (never a panic). Integers are little-endian;
//! there is no padding, no varints, no strings — offers and verdicts
//! are numbers all the way down, which is what keeps the loopback soak
//! byte-deterministic.
//!
//! The protocol is versioned through the [`Frame::Hello`] handshake
//! ([`PROTOCOL_VERSION`]), not through per-frame version bits: both
//! sides agree once, then every later frame is interpreted under that
//! version.

use crate::error::NetError;

/// Version of the wire grammar this crate implements. Bumped on any
/// incompatible layout change; [`Frame::Hello`] carries it.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard ceiling on `payload_len` — far above any legal frame (the
/// largest is 25 bytes), so a corrupt or hostile length prefix fails
/// fast instead of asking the codec to buffer gigabytes.
pub const MAX_PAYLOAD: u32 = 64;

const TAG_HELLO: u8 = 1;
const TAG_OFFER: u8 = 2;
const TAG_ADMIT: u8 = 3;
const TAG_REJECT: u8 = 4;
const TAG_DATA: u8 = 5;
const TAG_SHED: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;

/// One protocol message. The enum is the protocol: encode/decode are
/// total over it and reject everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// Session handshake, first frame in both directions.
    Hello {
        /// [`PROTOCOL_VERSION`] of the sender.
        version: u16,
        /// Caller-chosen client identity (echoed by the server).
        client_id: u64,
        /// Slot horizon of the run both sides must agree on.
        slots: u64,
    },
    /// A session offered to the server's admission path.
    Offer {
        /// Session id, unique per client run.
        id: u64,
        /// Slot the offer arrives at (non-decreasing per connection).
        arrival_slot: u64,
        /// Service slots the session wants.
        duration_slots: u64,
    },
    /// First-offer admission verdict: admitted.
    Admit {
        /// Session id the verdict is for.
        id: u64,
        /// Slot the verdict was decided at.
        slot: u64,
    },
    /// First-offer admission verdict: rejected.
    Reject {
        /// Session id the verdict is for.
        id: u64,
        /// Slot the verdict was decided at.
        slot: u64,
    },
    /// Per-slot delivery telemetry (aggregate when `id` is 0).
    Data {
        /// Session id, or 0 for the whole-link aggregate.
        id: u64,
        /// Slot the bits were served in.
        slot: u64,
        /// Bits delivered.
        bits: u64,
    },
    /// The FGS layer cap changed: the server is shedding (or
    /// restoring) enhancement layers.
    Shed {
        /// Slot of the change.
        slot: u64,
        /// New layer cap.
        layers: u32,
    },
    /// Liveness beacon; also the lockstep carrier — a heartbeat's
    /// `slot` advances the receiver's slot cursor.
    Heartbeat {
        /// Sender's current slot.
        slot: u64,
    },
    /// Graceful end of stream. The initiator sends it, the server
    /// drains in-flight sessions and acks with its own `Shutdown`.
    Shutdown {
        /// 0 = drain (graceful), anything else names an error class.
        reason: u8,
    },
}

fn u16_at(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn u32_at(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn u64_at(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        b[at],
        b[at + 1],
        b[at + 2],
        b[at + 3],
        b[at + 4],
        b[at + 5],
        b[at + 6],
        b[at + 7],
    ])
}

impl Frame {
    /// Appends the frame's length-prefixed encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // length patched below
        match *self {
            Frame::Hello {
                version,
                client_id,
                slots,
            } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&client_id.to_le_bytes());
                out.extend_from_slice(&slots.to_le_bytes());
            }
            Frame::Offer {
                id,
                arrival_slot,
                duration_slots,
            } => {
                out.push(TAG_OFFER);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&arrival_slot.to_le_bytes());
                out.extend_from_slice(&duration_slots.to_le_bytes());
            }
            Frame::Admit { id, slot } => {
                out.push(TAG_ADMIT);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&slot.to_le_bytes());
            }
            Frame::Reject { id, slot } => {
                out.push(TAG_REJECT);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&slot.to_le_bytes());
            }
            Frame::Data { id, slot, bits } => {
                out.push(TAG_DATA);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&slot.to_le_bytes());
                out.extend_from_slice(&bits.to_le_bytes());
            }
            Frame::Shed { slot, layers } => {
                out.push(TAG_SHED);
                out.extend_from_slice(&slot.to_le_bytes());
                out.extend_from_slice(&layers.to_le_bytes());
            }
            Frame::Heartbeat { slot } => {
                out.push(TAG_HEARTBEAT);
                out.extend_from_slice(&slot.to_le_bytes());
            }
            Frame::Shutdown { reason } => {
                out.push(TAG_SHUTDOWN);
                out.push(reason);
            }
        }
        let payload_len = (out.len() - start - 4) as u32;
        out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
    }

    /// The frame's encoding as a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        self.encode_into(&mut out);
        out
    }

    /// Decodes one payload (tag byte + body, *without* the length
    /// prefix). Strict: every tag has exactly one legal body length.
    ///
    /// # Errors
    ///
    /// [`NetError::Frame`] naming the violated rule; never panics on
    /// any input.
    pub fn decode(payload: &[u8]) -> Result<Frame, NetError> {
        let (&tag, body) = payload
            .split_first()
            .ok_or(NetError::Frame("empty payload"))?;
        match tag {
            TAG_HELLO => {
                if body.len() != 18 {
                    return Err(NetError::Frame("hello length"));
                }
                Ok(Frame::Hello {
                    version: u16_at(body, 0),
                    client_id: u64_at(body, 2),
                    slots: u64_at(body, 10),
                })
            }
            TAG_OFFER => {
                if body.len() != 24 {
                    return Err(NetError::Frame("offer length"));
                }
                Ok(Frame::Offer {
                    id: u64_at(body, 0),
                    arrival_slot: u64_at(body, 8),
                    duration_slots: u64_at(body, 16),
                })
            }
            TAG_ADMIT => {
                if body.len() != 16 {
                    return Err(NetError::Frame("admit length"));
                }
                Ok(Frame::Admit {
                    id: u64_at(body, 0),
                    slot: u64_at(body, 8),
                })
            }
            TAG_REJECT => {
                if body.len() != 16 {
                    return Err(NetError::Frame("reject length"));
                }
                Ok(Frame::Reject {
                    id: u64_at(body, 0),
                    slot: u64_at(body, 8),
                })
            }
            TAG_DATA => {
                if body.len() != 24 {
                    return Err(NetError::Frame("data length"));
                }
                Ok(Frame::Data {
                    id: u64_at(body, 0),
                    slot: u64_at(body, 8),
                    bits: u64_at(body, 16),
                })
            }
            TAG_SHED => {
                if body.len() != 12 {
                    return Err(NetError::Frame("shed length"));
                }
                Ok(Frame::Shed {
                    slot: u64_at(body, 0),
                    layers: u32_at(body, 8),
                })
            }
            TAG_HEARTBEAT => {
                if body.len() != 8 {
                    return Err(NetError::Frame("heartbeat length"));
                }
                Ok(Frame::Heartbeat {
                    slot: u64_at(body, 0),
                })
            }
            TAG_SHUTDOWN => {
                if body.len() != 1 {
                    return Err(NetError::Frame("shutdown length"));
                }
                Ok(Frame::Shutdown { reason: body[0] })
            }
            _ => Err(NetError::Frame("unknown tag")),
        }
    }
}

/// Incremental frame decoder: push arbitrary byte chunks in, pull
/// whole frames out. Tolerates any fragmentation the transport
/// produces (byte-at-a-time included); rejects corrupt input with
/// [`NetError::Frame`] without panicking and without consuming bytes
/// past the bad frame.
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted away once
    /// the cursor passes half the buffer.
    at: usize,
}

impl FrameCodec {
    /// A fresh, empty codec.
    #[must_use]
    pub fn new() -> Self {
        FrameCodec::default()
    }

    /// Appends raw transport bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Decodes the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`NetError::Frame`] on a corrupt length prefix or payload; the
    /// stream is unrecoverable after an error (framing is lost).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, NetError> {
        let avail = &self.buf[self.at..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32_at(avail, 0);
        if len > MAX_PAYLOAD {
            return Err(NetError::Frame("oversized payload"));
        }
        let len = len as usize;
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let frame = Frame::decode(&avail[4..4 + len])?;
        self.at += 4 + len;
        if self.at > self.buf.len() / 2 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                client_id: 7,
                slots: 700,
            },
            Frame::Offer {
                id: 42,
                arrival_slot: 3,
                duration_slots: 150,
            },
            Frame::Admit { id: 42, slot: 3 },
            Frame::Reject { id: 43, slot: 4 },
            Frame::Data {
                id: 0,
                slot: 5,
                bits: 123_456,
            },
            Frame::Shed { slot: 6, layers: 2 },
            Frame::Heartbeat { slot: 9 },
            Frame::Shutdown { reason: 0 },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let decoded = Frame::decode(&bytes[4..]).expect("round trip");
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn codec_reassembles_byte_at_a_time() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let mut codec = FrameCodec::new();
        let mut decoded = Vec::new();
        for &b in &wire {
            codec.push(&[b]);
            while let Some(f) = codec.next_frame().expect("well-formed stream") {
                decoded.push(f);
            }
        }
        assert_eq!(decoded, frames);
        assert_eq!(codec.pending(), 0);
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let bytes = Frame::Heartbeat { slot: 1 }.encode();
        // Claim the full length but deliver a short body to decode().
        assert!(matches!(
            Frame::decode(&bytes[4..bytes.len() - 1]),
            Err(NetError::Frame(_))
        ));
        // Empty payload.
        assert!(matches!(Frame::decode(&[]), Err(NetError::Frame(_))));
    }

    #[test]
    fn unknown_tag_and_oversized_length_are_rejected() {
        assert!(matches!(
            Frame::decode(&[99, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(NetError::Frame("unknown tag"))
        ));
        let mut codec = FrameCodec::new();
        codec.push(&u32::MAX.to_le_bytes());
        assert!(matches!(
            codec.next_frame(),
            Err(NetError::Frame("oversized payload"))
        ));
    }
}
