//! Lockstep drivers: frames in, slots stepped, verdicts out.
//!
//! # The tick ↔ slot lockstep contract
//!
//! The engine never looks at a clock. Every [`Frame::Offer`] and
//! [`Frame::Heartbeat`] carries the *slot* it belongs to, and the
//! driver steps the engine exactly up to that slot before applying
//! the frame — wall-clock pacing (a [`dms_sim::TickClock`] in the
//! load generator) only decides *when* frames are sent, never *what*
//! they mean. Two consequences:
//!
//! 1. A socket-fed run is a deterministic function of the offer
//!    trace: same `(id, arrival_slot, duration_slots)` sequence in,
//!    byte-identical run-log out, regardless of scheduling jitter,
//!    socket fragmentation, or `DMS_THREADS`.
//! 2. Direct injection is the degenerate transport: [`drive_direct`]
//!    feeds the *same frames* through the *same* [`SessionDriver`]
//!    without a socket, which is what the loopback differential test
//!    compares against.
//!
//! Offers must arrive with non-decreasing slots (the generator owns
//! its own timeline); a slot going backwards is a
//! [`NetError::Protocol`] violation, not a reorder. An offer whose
//! slot the wall clock has already passed simply lands on the next
//! unstepped slot — [`dms_serve::ServerEngine::offer`]'s late-frame
//! rule.
//!
//! On [`Frame::Shutdown`] the driver drains every remaining slot so
//! in-flight sessions play out, then enforces the conservation
//! invariant `admitted + rejected + drained == offered` — the same
//! ledger discipline [`dms_cluster::FleetEndpoint::shutdown`] applies
//! to reserved admission bits.

use std::fmt::Write as _;
use std::io::{Read, Write};

use dms_cluster::{DispatchReport, FleetEndpoint, FleetVerdict, OfferOutcome};
use dms_serve::{
    ServeError, ServerConfig, ServerEngine, SessionRequest, SessionTemplate, Workload,
};
use dms_sim::TickClock;

use crate::endpoint::NetConnection;
use crate::error::NetError;
use crate::frame::{Frame, FrameCodec, PROTOCOL_VERSION};

/// Knobs for what a [`SessionDriver`] emits beyond verdicts.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverConfig {
    /// Emit a [`Frame::Heartbeat`] every this many stepped slots
    /// (0 disables). Heartbeats are liveness, not state — they never
    /// appear in the run-log.
    pub heartbeat_every_slots: u64,
    /// Emit a per-slot aggregate [`Frame::Data`] (id 0) with the bits
    /// delivered in that slot.
    pub emit_data: bool,
}

/// Counters a load generator keeps of what the server sent back.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenReport {
    /// Offers written to the wire.
    pub offered: u64,
    /// [`Frame::Admit`] verdicts received.
    pub admitted: u64,
    /// [`Frame::Reject`] verdicts received.
    pub rejected: u64,
    /// [`Frame::Heartbeat`] frames received.
    pub heartbeats: u64,
    /// [`Frame::Data`] frames received.
    pub data_frames: u64,
}

impl LoadgenReport {
    fn absorb(&mut self, frame: &Frame) {
        match frame {
            Frame::Admit { .. } => self.admitted += 1,
            Frame::Reject { .. } => self.rejected += 1,
            Frame::Heartbeat { .. } => self.heartbeats += 1,
            Frame::Data { .. } => self.data_frames += 1,
            _ => {}
        }
    }
}

/// Maps a frame stream onto one [`ServerEngine`]: the server half of
/// a `dms-net` session. Feed it decoded frames via
/// [`SessionDriver::on_frame`]; it steps the engine in lockstep,
/// pushes reply frames into the caller's buffer, and accumulates the
/// byte-deterministic run-log.
#[derive(Debug)]
pub struct SessionDriver {
    engine: ServerEngine,
    cfg: DriverConfig,
    verdict_buf: Vec<(u64, bool)>,
    log: String,
    hello_seen: bool,
    done: bool,
    last_offer_slot: u64,
    delivered_last: u64,
}

impl SessionDriver {
    /// A driver over a fresh nominal engine for `slots` slots.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerEngine::new`] validation.
    pub fn new(
        config: &ServerConfig,
        template: SessionTemplate,
        slots: u64,
        cfg: DriverConfig,
    ) -> Result<Self, ServeError> {
        let mut engine = ServerEngine::new(config, template, slots)?;
        engine.record_verdicts(true);
        let mut log = String::new();
        let _ = writeln!(log, "dms-net run-log v1");
        let _ = writeln!(log, "horizon={slots}");
        Ok(SessionDriver {
            engine,
            cfg,
            verdict_buf: Vec::new(),
            log,
            hello_seen: false,
            done: false,
            last_offer_slot: 0,
            delivered_last: 0,
        })
    }

    /// Whether the session finished (shutdown ack sent).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Slot horizon of the underlying engine.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.engine.horizon()
    }

    /// The run-log so far. Identical for socket-fed and
    /// direct-injected runs of the same offer trace — the log records
    /// slots and verdicts, never the transport.
    #[must_use]
    pub fn run_log(&self) -> &str {
        &self.log
    }

    /// Consumes the driver, returning the final run-log.
    #[must_use]
    pub fn into_run_log(self) -> String {
        self.log
    }

    /// The engine, for report inspection after the session ends.
    #[must_use]
    pub fn engine(&self) -> &ServerEngine {
        &self.engine
    }

    /// Applies one frame, pushing any replies into `out`.
    ///
    /// # Errors
    ///
    /// [`NetError::Version`] on a handshake mismatch,
    /// [`NetError::Protocol`] on out-of-order frames (offer before
    /// hello, slot going backwards, frames after shutdown, verdict
    /// frames sent *to* the server).
    pub fn on_frame(&mut self, frame: Frame, out: &mut Vec<Frame>) -> Result<(), NetError> {
        if self.done {
            return Err(NetError::Protocol("frame after shutdown"));
        }
        match frame {
            Frame::Hello {
                version,
                client_id,
                slots,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(NetError::Version {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                if slots != self.engine.horizon() {
                    return Err(NetError::Protocol("slot horizon mismatch"));
                }
                self.hello_seen = true;
                out.push(Frame::Hello {
                    version: PROTOCOL_VERSION,
                    client_id,
                    slots,
                });
                Ok(())
            }
            Frame::Offer {
                id,
                arrival_slot,
                duration_slots,
            } => {
                if !self.hello_seen {
                    return Err(NetError::Protocol("offer before hello"));
                }
                if arrival_slot < self.last_offer_slot {
                    return Err(NetError::Protocol("offer slot went backwards"));
                }
                self.last_offer_slot = arrival_slot;
                self.advance_to(arrival_slot, out);
                self.engine.offer(SessionRequest {
                    id,
                    arrival_slot,
                    duration_slots,
                });
                Ok(())
            }
            Frame::Heartbeat { slot } => {
                if !self.hello_seen {
                    return Err(NetError::Protocol("heartbeat before hello"));
                }
                self.advance_to(slot, out);
                Ok(())
            }
            Frame::Shutdown { reason } => {
                if !self.hello_seen {
                    return Err(NetError::Protocol("shutdown before hello"));
                }
                // Graceful drain: step every remaining slot so
                // admitted sessions play out and queued offers get
                // their verdicts.
                self.advance_to(self.engine.horizon(), out);
                let offered = self.engine.offered();
                let admitted = self.engine.admitted();
                let rejected = self.engine.rejected();
                let drained = self.engine.undecided();
                // Conservation: every offer is admitted, rejected, or
                // drained at shutdown — nothing leaks.
                assert_eq!(
                    admitted + rejected + drained,
                    offered,
                    "driver conservation violated"
                );
                let _ = writeln!(
                    self.log,
                    "summary offered={offered} admitted={admitted} rejected={rejected} \
                     drained={drained} delivered_bits={} slots={}",
                    self.engine.delivered_bits(),
                    self.engine.slot(),
                );
                out.push(Frame::Shutdown { reason });
                self.done = true;
                Ok(())
            }
            Frame::Admit { .. }
            | Frame::Reject { .. }
            | Frame::Data { .. }
            | Frame::Shed { .. } => Err(NetError::Protocol("verdict frame sent to server")),
        }
    }

    /// Steps the engine up to (not beyond) `target`, clamped to the
    /// horizon, emitting verdict frames and run-log lines for every
    /// slot stepped.
    fn advance_to(&mut self, target: u64, out: &mut Vec<Frame>) {
        let target = target.min(self.engine.horizon());
        while self.engine.slot() < target {
            let stepping = self.engine.slot();
            self.engine.step_slot(None);
            self.engine.take_verdicts(&mut self.verdict_buf);
            for &(id, admitted) in &self.verdict_buf {
                let word = if admitted { "admit" } else { "reject" };
                let _ = writeln!(self.log, "verdict slot={stepping} id={id} {word}");
                out.push(if admitted {
                    Frame::Admit { id, slot: stepping }
                } else {
                    Frame::Reject { id, slot: stepping }
                });
            }
            self.verdict_buf.clear();
            if self.cfg.emit_data {
                let delivered = self.engine.delivered_bits();
                out.push(Frame::Data {
                    id: 0,
                    slot: stepping,
                    bits: delivered - self.delivered_last,
                });
                self.delivered_last = delivered;
            }
            let hb = self.cfg.heartbeat_every_slots;
            if hb > 0 && self.engine.slot().is_multiple_of(hb) {
                out.push(Frame::Heartbeat {
                    slot: self.engine.slot(),
                });
            }
        }
    }
}

/// Runs a [`SessionDriver`] over a connection: decode frames, apply,
/// write replies, until the driver reports done. Returns once the
/// shutdown ack has been flushed.
///
/// # Errors
///
/// [`NetError::Closed`] if the peer disconnects before a graceful
/// shutdown; frame/protocol errors from the driver; I/O errors from
/// the socket.
pub fn serve_connection(
    conn: &mut NetConnection,
    driver: &mut SessionDriver,
) -> Result<(), NetError> {
    let mut codec = FrameCodec::new();
    let mut buf = [0u8; 16 * 1024];
    let mut out: Vec<Frame> = Vec::new();
    let mut wire: Vec<u8> = Vec::new();
    loop {
        let n = conn.read(&mut buf)?;
        if n == 0 {
            return Err(NetError::Closed);
        }
        codec.push(&buf[..n]);
        while let Some(frame) = codec.next_frame()? {
            driver.on_frame(frame, &mut out)?;
        }
        if !out.is_empty() {
            wire.clear();
            for f in &out {
                f.encode_into(&mut wire);
            }
            conn.write_all(&wire)?;
            conn.flush()?;
            out.clear();
        }
        if driver.is_done() {
            return Ok(());
        }
    }
}

/// The client half: replays `offers` over `conn` and collects the
/// server's verdicts.
///
/// A second handle to the connection ([`NetConnection::try_clone`])
/// drains the server's frames on a reader thread while this thread
/// writes — with 10⁴-session traces both directions carry hundreds of
/// kilobytes, far past default socket buffers, so a half-duplex client
/// would deadlock against the server's verdict backlog.
///
/// With `pace: Some(clock)` the writer holds each offer until the
/// wall clock reaches its arrival slot ([`TickClock::sleep_until_slot`])
/// — real-time replay. Pacing changes *when* bytes move, never what
/// they say, so the server's run-log is identical paced or not; the
/// loopback soak runs unpaced for speed.
///
/// # Errors
///
/// Handshake ([`NetError::Version`]/[`NetError::Protocol`]), transport
/// ([`NetError::Io`], [`NetError::Closed`]) and frame-grammar errors.
pub fn run_loadgen(
    conn: &mut NetConnection,
    client_id: u64,
    slots: u64,
    offers: &[SessionRequest],
    pace: Option<&TickClock>,
) -> Result<LoadgenReport, NetError> {
    let reader_conn = conn.try_clone()?;
    let reader = std::thread::spawn(move || read_until_shutdown(reader_conn));

    let mut wire: Vec<u8> = Vec::with_capacity(64 * 1024);
    Frame::Hello {
        version: PROTOCOL_VERSION,
        client_id,
        slots,
    }
    .encode_into(&mut wire);
    let mut paced_slot = 0u64;
    for req in offers {
        if let Some(clock) = pace {
            if req.arrival_slot > paced_slot {
                // Flush what the peer can already act on, then wait
                // for the wall clock to catch up to the next slot.
                if !wire.is_empty() {
                    conn.write_all(&wire)?;
                    conn.flush()?;
                    wire.clear();
                }
                clock.sleep_until_slot(req.arrival_slot);
                paced_slot = req.arrival_slot;
            }
        }
        Frame::Offer {
            id: req.id,
            arrival_slot: req.arrival_slot,
            duration_slots: req.duration_slots,
        }
        .encode_into(&mut wire);
        if wire.len() >= 32 * 1024 {
            conn.write_all(&wire)?;
            wire.clear();
        }
    }
    Frame::Shutdown { reason: 0 }.encode_into(&mut wire);
    conn.write_all(&wire)?;
    conn.flush()?;

    let mut report = reader
        .join()
        .map_err(|_| NetError::Protocol("reader thread panicked"))??;
    report.offered = offers.len() as u64;
    Ok(report)
}

fn read_until_shutdown(mut conn: NetConnection) -> Result<LoadgenReport, NetError> {
    let mut codec = FrameCodec::new();
    let mut buf = [0u8; 16 * 1024];
    let mut report = LoadgenReport::default();
    loop {
        let n = conn.read(&mut buf)?;
        if n == 0 {
            return Err(NetError::Closed);
        }
        codec.push(&buf[..n]);
        while let Some(frame) = codec.next_frame()? {
            match frame {
                Frame::Hello { version, .. } => {
                    if version != PROTOCOL_VERSION {
                        return Err(NetError::Version {
                            ours: PROTOCOL_VERSION,
                            theirs: version,
                        });
                    }
                }
                Frame::Shutdown { .. } => return Ok(report),
                other => report.absorb(&other),
            }
        }
    }
}

/// The transportless differential arm: pushes the exact frame
/// sequence [`run_loadgen`] would send through the same
/// [`SessionDriver`], no socket involved. Returns the final run-log
/// and the verdict counts a loadgen would have seen — byte- and
/// count-identical to the socket path for the same offer trace.
///
/// # Errors
///
/// The same driver protocol errors a socket-fed run can hit.
pub fn drive_direct(
    mut driver: SessionDriver,
    client_id: u64,
    offers: &[SessionRequest],
) -> Result<(String, LoadgenReport), NetError> {
    let slots = driver.horizon();
    let mut out: Vec<Frame> = Vec::new();
    let mut report = LoadgenReport::default();
    driver.on_frame(
        Frame::Hello {
            version: PROTOCOL_VERSION,
            client_id,
            slots,
        },
        &mut out,
    )?;
    for req in offers {
        driver.on_frame(
            Frame::Offer {
                id: req.id,
                arrival_slot: req.arrival_slot,
                duration_slots: req.duration_slots,
            },
            &mut out,
        )?;
    }
    driver.on_frame(Frame::Shutdown { reason: 0 }, &mut out)?;
    for f in &out {
        report.absorb(f);
    }
    report.offered = offers.len() as u64;
    Ok((driver.into_run_log(), report))
}

/// The fleet analogue of [`SessionDriver`]: frames route offers into
/// a [`FleetEndpoint`] (mirror predictors + balancer) instead of a
/// single engine. Dispatched offers come back as [`Frame::Admit`]
/// carrying the decision slot, balancer rejections as
/// [`Frame::Reject`]; retries stay internal until they resolve.
/// After shutdown, [`FleetDriver::finish`] yields the per-shard
/// workloads for [`dms_cluster::ClusterSim::run_dispatched`].
#[derive(Debug)]
pub struct FleetDriver {
    endpoint: FleetEndpoint,
    outcome_buf: Vec<OfferOutcome>,
    hello_seen: bool,
    done: bool,
    last_slot: u64,
}

impl FleetDriver {
    /// Wraps an endpoint; turns its outcome stream on.
    #[must_use]
    pub fn new(mut endpoint: FleetEndpoint) -> Self {
        endpoint.record_outcomes(true);
        FleetDriver {
            endpoint,
            outcome_buf: Vec::new(),
            hello_seen: false,
            done: false,
            last_slot: 0,
        }
    }

    /// Whether the session finished (shutdown ack sent).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Applies one frame, pushing replies into `out`.
    ///
    /// # Errors
    ///
    /// Same protocol surface as [`SessionDriver::on_frame`]; endpoint
    /// refusals (offer after shutdown, slot going backwards) surface
    /// as [`NetError::Protocol`].
    pub fn on_frame(&mut self, frame: Frame, out: &mut Vec<Frame>) -> Result<(), NetError> {
        if self.done {
            return Err(NetError::Protocol("frame after shutdown"));
        }
        match frame {
            Frame::Hello {
                version,
                client_id,
                slots,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(NetError::Version {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                if slots != self.endpoint.horizon() {
                    return Err(NetError::Protocol("slot horizon mismatch"));
                }
                self.hello_seen = true;
                out.push(Frame::Hello {
                    version: PROTOCOL_VERSION,
                    client_id,
                    slots,
                });
                Ok(())
            }
            Frame::Offer {
                id,
                arrival_slot,
                duration_slots,
            } => {
                if !self.hello_seen {
                    return Err(NetError::Protocol("offer before hello"));
                }
                self.last_slot = self.last_slot.max(arrival_slot);
                self.endpoint
                    .offer(id, arrival_slot, duration_slots)
                    .map_err(|_| NetError::Protocol("offer refused by endpoint"))?;
                self.pump(out);
                Ok(())
            }
            Frame::Heartbeat { slot } => {
                if !self.hello_seen {
                    return Err(NetError::Protocol("heartbeat before hello"));
                }
                self.last_slot = self.last_slot.max(slot);
                Ok(())
            }
            Frame::Shutdown { reason } => {
                if !self.hello_seen {
                    return Err(NetError::Protocol("shutdown before hello"));
                }
                self.endpoint.shutdown(self.last_slot);
                self.pump(out);
                out.push(Frame::Shutdown { reason });
                self.done = true;
                Ok(())
            }
            Frame::Admit { .. }
            | Frame::Reject { .. }
            | Frame::Data { .. }
            | Frame::Shed { .. } => Err(NetError::Protocol("verdict frame sent to server")),
        }
    }

    fn pump(&mut self, out: &mut Vec<Frame>) {
        self.endpoint.take_outcomes(&mut self.outcome_buf);
        for o in &self.outcome_buf {
            match o.verdict {
                FleetVerdict::Dispatched { .. } => out.push(Frame::Admit {
                    id: o.id,
                    slot: o.slot,
                }),
                FleetVerdict::Rejected => out.push(Frame::Reject {
                    id: o.id,
                    slot: o.slot,
                }),
                FleetVerdict::Retrying { .. } => {}
            }
        }
        self.outcome_buf.clear();
    }

    /// Consumes the driver, yielding the per-shard workloads and the
    /// dispatch report for [`dms_cluster::ClusterSim::run_dispatched`].
    #[must_use]
    pub fn finish(self) -> (Vec<Workload>, DispatchReport) {
        self.endpoint.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dms_serve::{
        rate_for_load, AdmissionPolicy, ArrivalProcess, CapacityModel, SessionTemplate, Workload,
    };

    fn setup(load: f64, slots: u64, seed: u64) -> (ServerConfig, Workload) {
        let template = SessionTemplate::streaming_default().expect("preset valid");
        let cfg = ServerConfig {
            capacity: CapacityModel {
                link_bits_per_slot: 20 * template.full_bits(),
                queue_frames: 64,
                occupancy_bound: 8.0,
            },
            policy: AdmissionPolicy::QueuePredictor,
            degrade: Some(dms_serve::DegradeConfig::default()),
            buffer_slots: 4,
            miss_slots: 2,
        };
        let rate = rate_for_load(load, &template, cfg.capacity.link_bits_per_slot);
        let workload = Workload::generate(ArrivalProcess::Poisson { rate }, template, slots, seed)
            .expect("valid");
        (cfg, workload)
    }

    fn driver_for(cfg: &ServerConfig, workload: &Workload) -> SessionDriver {
        SessionDriver::new(
            cfg,
            workload.template,
            workload.slots,
            DriverConfig::default(),
        )
        .expect("valid driver")
    }

    #[test]
    fn offer_before_hello_is_a_protocol_error() {
        let (cfg, workload) = setup(1.0, 50, 1);
        let mut driver = driver_for(&cfg, &workload);
        let mut out = Vec::new();
        let err = driver.on_frame(
            Frame::Offer {
                id: 1,
                arrival_slot: 0,
                duration_slots: 10,
            },
            &mut out,
        );
        assert!(matches!(err, Err(NetError::Protocol("offer before hello"))));
    }

    #[test]
    fn version_mismatch_is_rejected_at_hello() {
        let (cfg, workload) = setup(1.0, 50, 1);
        let mut driver = driver_for(&cfg, &workload);
        let mut out = Vec::new();
        let err = driver.on_frame(
            Frame::Hello {
                version: PROTOCOL_VERSION + 1,
                client_id: 1,
                slots: 50,
            },
            &mut out,
        );
        assert!(matches!(err, Err(NetError::Version { ours: 1, theirs: 2 })));
    }

    #[test]
    fn offers_going_backwards_are_rejected() {
        let (cfg, workload) = setup(1.0, 50, 1);
        let mut driver = driver_for(&cfg, &workload);
        let mut out = Vec::new();
        driver
            .on_frame(
                Frame::Hello {
                    version: PROTOCOL_VERSION,
                    client_id: 1,
                    slots: 50,
                },
                &mut out,
            )
            .unwrap();
        driver
            .on_frame(
                Frame::Offer {
                    id: 1,
                    arrival_slot: 10,
                    duration_slots: 5,
                },
                &mut out,
            )
            .unwrap();
        let err = driver.on_frame(
            Frame::Offer {
                id: 2,
                arrival_slot: 9,
                duration_slots: 5,
            },
            &mut out,
        );
        assert!(matches!(
            err,
            Err(NetError::Protocol("offer slot went backwards"))
        ));
    }

    #[test]
    fn direct_drive_conserves_and_matches_the_batch_report() {
        let (cfg, workload) = setup(1.3, 300, 7);
        let batch = dms_serve::ServerSim::new(cfg)
            .expect("valid")
            .run(&workload)
            .expect("runs");

        let driver = driver_for(&cfg, &workload);
        let (log, report) = drive_direct(driver, 99, &workload.sessions).expect("drives");

        assert_eq!(report.offered, batch.offered);
        assert_eq!(report.admitted, batch.admitted);
        assert_eq!(report.rejected, batch.rejected);
        assert_eq!(report.admitted + report.rejected, report.offered);
        assert!(log.starts_with("dms-net run-log v1\nhorizon=300\n"));
        let summary = log.lines().last().expect("has summary");
        assert!(summary.starts_with("summary offered="), "got: {summary}");
        assert_eq!(
            log.matches("verdict ").count() as u64,
            report.admitted + report.rejected
        );
    }

    #[test]
    fn drained_offers_balance_the_shutdown_ledger() {
        let (cfg, workload) = setup(1.0, 50, 3);
        let mut driver = driver_for(&cfg, &workload);
        let mut out = Vec::new();
        driver
            .on_frame(
                Frame::Hello {
                    version: PROTOCOL_VERSION,
                    client_id: 1,
                    slots: 50,
                },
                &mut out,
            )
            .unwrap();
        // An offer stamped beyond the horizon can never be decided:
        // it must show up as drained, not vanish.
        driver
            .on_frame(
                Frame::Offer {
                    id: 7,
                    arrival_slot: 60,
                    duration_slots: 5,
                },
                &mut out,
            )
            .unwrap();
        driver
            .on_frame(Frame::Shutdown { reason: 0 }, &mut out)
            .unwrap();
        let log = driver.into_run_log();
        let summary = log.lines().last().unwrap();
        assert!(
            summary.contains("offered=1 admitted=0 rejected=0 drained=1"),
            "got: {summary}"
        );
    }

    #[test]
    fn fleet_driver_matches_batch_dispatch_counts() {
        use dms_cluster::{BalancerPolicy, ClusterConfig, ClusterSim};

        let (cfg, workload) = setup(1.5, 200, 11);
        let cluster = ClusterConfig {
            shards: vec![cfg, cfg],
            balancer: BalancerPolicy::JoinShortestQueue,
            recovery: dms_serve::RecoveryConfig::default(),
            seed: 17,
        };
        let sim = ClusterSim::new(cluster.clone()).expect("valid");
        let (_, batch) = sim.dispatch(&workload, &[]).expect("dispatches");

        let endpoint = FleetEndpoint::new(&cluster, workload.template, workload.slots)
            .expect("valid endpoint");
        let mut driver = FleetDriver::new(endpoint);
        let mut out = Vec::new();
        driver
            .on_frame(
                Frame::Hello {
                    version: PROTOCOL_VERSION,
                    client_id: 5,
                    slots: workload.slots,
                },
                &mut out,
            )
            .unwrap();
        let mut order: Vec<usize> = (0..workload.sessions.len()).collect();
        order.sort_by_key(|&i| workload.sessions[i].arrival_slot);
        for &i in &order {
            let s = workload.sessions[i];
            driver
                .on_frame(
                    Frame::Offer {
                        id: s.id,
                        arrival_slot: s.arrival_slot,
                        duration_slots: s.duration_slots,
                    },
                    &mut out,
                )
                .unwrap();
        }
        driver
            .on_frame(Frame::Shutdown { reason: 0 }, &mut out)
            .unwrap();
        let (_, dispatch) = driver.finish();
        assert_eq!(dispatch.dispatched, batch.dispatched);
        assert_eq!(dispatch.balancer_rejected, batch.balancer_rejected);
        let admits = out
            .iter()
            .filter(|f| matches!(f, Frame::Admit { .. }))
            .count() as u64;
        assert_eq!(admits, dispatch.dispatched);
    }
}
