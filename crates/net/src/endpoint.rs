//! Session endpoints: TCP / Unix-socket transport with the fleet's
//! recovery discipline.
//!
//! The transport layer deliberately knows nothing about frames or
//! slots — it moves bytes and fails loudly. What it *does* import from
//! the simulated core is the recovery vocabulary: reconnect backoff is
//! [`RecoveryConfig::backoff_slots`] scaled into wall-clock time by a
//! slot duration ([`ReconnectPolicy::delay`]), and stall detection
//! mirrors `stall_window_slots`. The schedules are therefore exactly
//! as deterministic as the simulated ones — same config, same delays —
//! which the reconnect tests pin down without opening a single socket:
//! [`Reconnector`] and [`StallDetector`] are pure state machines, the
//! blocking [`connect_with_backoff`] helper merely executes them.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dms_serve::RecoveryConfig;

use crate::error::NetError;

/// Where an endpoint lives: a TCP address or a Unix socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointAddr {
    /// A `host:port` TCP address, e.g. `127.0.0.1:4070`.
    Tcp(String),
    /// A filesystem Unix-domain socket path.
    Unix(PathBuf),
}

impl EndpointAddr {
    /// Parses `tcp:HOST:PORT` or `unix:PATH`.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on an unrecognized scheme.
    pub fn parse(s: &str) -> Result<EndpointAddr, NetError> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            Ok(EndpointAddr::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix:") {
            Ok(EndpointAddr::Unix(PathBuf::from(rest)))
        } else {
            Err(NetError::Protocol("endpoint scheme must be tcp: or unix:"))
        }
    }
}

/// A bound, accepting server socket over either transport.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Unix(UnixListener),
}

impl Listener {
    /// Binds the address. For [`EndpointAddr::Unix`] a stale socket
    /// file from a previous run is removed first.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] from the underlying bind.
    pub fn bind(addr: &EndpointAddr) -> Result<Listener, NetError> {
        match addr {
            EndpointAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a.as_str())?)),
            EndpointAddr::Unix(p) => {
                let _ = std::fs::remove_file(p);
                Ok(Listener::Unix(UnixListener::bind(p)?))
            }
        }
    }

    /// The address actually bound — lets `tcp:127.0.0.1:0` callers
    /// discover the kernel-assigned port.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<EndpointAddr, NetError> {
        match self {
            Listener::Tcp(l) => Ok(EndpointAddr::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr.as_pathname().map(PathBuf::from).unwrap_or_default();
                Ok(EndpointAddr::Unix(path))
            }
        }
    }

    /// Blocks until a peer connects.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] from the underlying accept.
    pub fn accept(&self) -> Result<NetConnection, NetError> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(NetConnection::Tcp(stream))
            }
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(NetConnection::Unix(stream))
            }
        }
    }
}

/// One byte stream to a peer, over either transport. Implements
/// [`Read`] + [`Write`]; [`NetConnection::try_clone`] yields an
/// independent handle so a reader thread can drain the peer's frames
/// while the main thread writes — the standard full-duplex shape that
/// keeps large offer/verdict exchanges from deadlocking on socket
/// buffers.
#[derive(Debug)]
pub enum NetConnection {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    Unix(UnixStream),
}

impl NetConnection {
    /// An in-process connected pair (Unix socketpair) — the loopback
    /// transport the differential tests and `net_loopback_perf` use;
    /// no filesystem bind, no port allocation.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the kernel refuses a socketpair.
    pub fn pair() -> Result<(NetConnection, NetConnection), NetError> {
        let (a, b) = UnixStream::pair()?;
        Ok((NetConnection::Unix(a), NetConnection::Unix(b)))
    }

    /// A second handle to the same stream (for a reader thread).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the descriptor cannot be duplicated.
    pub fn try_clone(&self) -> Result<NetConnection, NetError> {
        match self {
            NetConnection::Tcp(s) => Ok(NetConnection::Tcp(s.try_clone()?)),
            NetConnection::Unix(s) => Ok(NetConnection::Unix(s.try_clone()?)),
        }
    }

    /// Bounds blocking reads so a stalled peer surfaces as
    /// `WouldBlock`/`TimedOut` instead of hanging the read loop.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the option cannot be set.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> Result<(), NetError> {
        match self {
            NetConnection::Tcp(s) => s.set_read_timeout(dur)?,
            NetConnection::Unix(s) => s.set_read_timeout(dur)?,
        }
        Ok(())
    }

    /// Half-closes the write side, signalling end-of-offers while
    /// still reading the peer's remaining verdicts.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the shutdown fails.
    pub fn shutdown_write(&self) -> Result<(), NetError> {
        match self {
            NetConnection::Tcp(s) => s.shutdown(std::net::Shutdown::Write)?,
            NetConnection::Unix(s) => s.shutdown(std::net::Shutdown::Write)?,
        }
        Ok(())
    }
}

impl Read for NetConnection {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetConnection::Tcp(s) => s.read(buf),
            NetConnection::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetConnection {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetConnection::Tcp(s) => s.write(buf),
            NetConnection::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NetConnection::Tcp(s) => s.flush(),
            NetConnection::Unix(s) => s.flush(),
        }
    }
}

/// Reconnect policy: the fleet's [`RecoveryConfig`] backoff curve
/// scaled into wall-clock time.
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Backoff shape and retry budget — the *same* policy type the
    /// simulated server and cluster retry under.
    pub recovery: RecoveryConfig,
    /// Wall-clock duration of one slot; converts `backoff_slots` into
    /// sleep time.
    pub slot_unit: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            recovery: RecoveryConfig::default(),
            slot_unit: Duration::from_millis(10),
        }
    }
}

impl ReconnectPolicy {
    /// Wall-clock delay before retry `attempt` (0-based):
    /// `backoff_slots(attempt) × slot_unit`, saturating.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        let slots = self.recovery.backoff_slots(attempt);
        self.slot_unit
            .saturating_mul(u32::try_from(slots).unwrap_or(u32::MAX))
    }
}

/// Pure reconnect state machine: yields the deterministic delay
/// schedule, independent of any socket. [`connect_with_backoff`]
/// executes it; tests assert on it directly.
#[derive(Debug)]
pub struct Reconnector {
    policy: ReconnectPolicy,
    attempt: u32,
}

impl Reconnector {
    /// A fresh schedule under `policy`.
    #[must_use]
    pub fn new(policy: ReconnectPolicy) -> Self {
        Reconnector { policy, attempt: 0 }
    }

    /// Attempts consumed so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The delay to sleep before the *next* retry, or `None` once the
    /// retry budget (`max_retries`) is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.recovery.max_retries {
            return None;
        }
        let d = self.policy.delay(self.attempt);
        self.attempt += 1;
        Some(d)
    }

    /// A successful connection resets the schedule.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Heartbeat-based stall detector, the client-side mirror of the
/// server's `stall_window_slots`: if no frame arrives for
/// `stall_window_slots × slot_unit`, the connection is stalled. Pure —
/// the caller feeds in `Instant`s, so tests can synthesize time.
#[derive(Debug)]
pub struct StallDetector {
    window: Duration,
    last_seen: Instant,
}

impl StallDetector {
    /// A detector whose window is `recovery.stall_window_slots`
    /// slots, anchored at `now`.
    #[must_use]
    pub fn new(policy: &ReconnectPolicy, now: Instant) -> Self {
        let slots = policy.recovery.stall_window_slots;
        let window = policy
            .slot_unit
            .saturating_mul(u32::try_from(slots).unwrap_or(u32::MAX));
        StallDetector {
            window,
            last_seen: now,
        }
    }

    /// Records frame (or heartbeat) arrival.
    pub fn observe(&mut self, now: Instant) {
        self.last_seen = now;
    }

    /// Whether the silence has exceeded the stall window.
    #[must_use]
    pub fn is_stalled(&self, now: Instant) -> bool {
        now.duration_since(self.last_seen) > self.window
    }

    /// The stall window.
    #[must_use]
    pub fn window(&self) -> Duration {
        self.window
    }
}

/// Connects to `addr`, retrying with the policy's exponential backoff.
/// The first attempt is immediate; each failure sleeps
/// [`ReconnectPolicy::delay`] for the attempt number, exactly like a
/// crashed session re-offering itself in the simulated cluster.
///
/// # Errors
///
/// [`NetError::RetriesExhausted`] once `max_retries` reconnects have
/// failed (the last I/O error is dropped in its favour — the schedule,
/// not the socket, is the contract under test).
pub fn connect_with_backoff(
    addr: &EndpointAddr,
    policy: &ReconnectPolicy,
) -> Result<NetConnection, NetError> {
    let mut reconnector = Reconnector::new(*policy);
    loop {
        match try_connect(addr) {
            Ok(conn) => return Ok(conn),
            Err(_) => match reconnector.next_delay() {
                Some(delay) => std::thread::sleep(delay),
                None => return Err(NetError::RetriesExhausted),
            },
        }
    }
}

fn try_connect(addr: &EndpointAddr) -> Result<NetConnection, NetError> {
    match addr {
        EndpointAddr::Tcp(a) => {
            let stream = TcpStream::connect(a.as_str())?;
            stream.set_nodelay(true)?;
            Ok(NetConnection::Tcp(stream))
        }
        EndpointAddr::Unix(p) => Ok(NetConnection::Unix(UnixStream::connect(p)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconnect_schedule_is_the_recovery_backoff_curve() {
        let policy = ReconnectPolicy {
            recovery: RecoveryConfig {
                backoff_base_slots: 4,
                backoff_factor: 2,
                max_retries: 3,
                timeout_miss_slots: 8,
                stall_window_slots: 3,
            },
            slot_unit: Duration::from_millis(10),
        };
        let mut r = Reconnector::new(policy);
        // base·factor^a × slot_unit: 40ms, 80ms, 160ms, then exhausted.
        assert_eq!(r.next_delay(), Some(Duration::from_millis(40)));
        assert_eq!(r.next_delay(), Some(Duration::from_millis(80)));
        assert_eq!(r.next_delay(), Some(Duration::from_millis(160)));
        assert_eq!(r.next_delay(), None);
        assert_eq!(r.attempts(), 3);
        r.reset();
        assert_eq!(r.next_delay(), Some(Duration::from_millis(40)));
    }

    #[test]
    fn stall_detector_trips_after_the_window() {
        let policy = ReconnectPolicy {
            slot_unit: Duration::from_millis(10),
            ..ReconnectPolicy::default()
        };
        let t0 = Instant::now();
        let mut d = StallDetector::new(&policy, t0);
        assert_eq!(d.window(), Duration::from_millis(30)); // 3 slots × 10ms
        assert!(!d.is_stalled(t0 + Duration::from_millis(30)));
        assert!(d.is_stalled(t0 + Duration::from_millis(31)));
        d.observe(t0 + Duration::from_millis(31));
        assert!(!d.is_stalled(t0 + Duration::from_millis(60)));
    }

    #[test]
    fn endpoint_addr_parses_both_schemes() {
        assert_eq!(
            EndpointAddr::parse("tcp:127.0.0.1:4070").unwrap(),
            EndpointAddr::Tcp("127.0.0.1:4070".into())
        );
        assert_eq!(
            EndpointAddr::parse("unix:/tmp/dms.sock").unwrap(),
            EndpointAddr::Unix(PathBuf::from("/tmp/dms.sock"))
        );
        assert!(EndpointAddr::parse("udp:1.2.3.4:5").is_err());
    }

    #[test]
    fn connect_with_backoff_exhausts_against_a_dead_address() {
        let policy = ReconnectPolicy {
            recovery: RecoveryConfig {
                backoff_base_slots: 1,
                backoff_factor: 1,
                max_retries: 2,
                timeout_miss_slots: 8,
                stall_window_slots: 3,
            },
            slot_unit: Duration::from_millis(1),
        };
        let addr = EndpointAddr::Unix(PathBuf::from("/tmp/dms-net-no-such-socket.sock"));
        assert!(matches!(
            connect_with_backoff(&addr, &policy),
            Err(NetError::RetriesExhausted)
        ));
    }

    #[test]
    fn socketpair_round_trips_bytes() {
        let (mut a, mut b) = NetConnection::pair().unwrap();
        a.write_all(b"holistic").unwrap();
        a.flush().unwrap();
        let mut buf = [0u8; 8];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"holistic");
    }
}
