//! # dms-net — a real serving frontier over the simulated core
//!
//! Every other crate in this workspace runs in virtual time: offers
//! come from a pre-built [`dms_serve::Workload`], slots advance in a
//! loop, and determinism is free. This crate puts an actual socket in
//! front of that core without giving the determinism up. Three pieces:
//!
//! * **Wire protocol** ([`frame`]) — one [`Frame`] enum with a strict
//!   length-prefixed binary encoding is the single source of truth for
//!   both sides of every connection. Versioned via the
//!   [`Frame::Hello`] handshake, round-trip tested, and hardened
//!   against truncated/corrupt input (errors, never panics).
//!
//! * **Endpoints** ([`endpoint`]) — TCP and Unix-socket listeners and
//!   connectors with the same recovery discipline the simulated fleet
//!   uses: reconnect backoff is literally
//!   [`dms_serve::RecoveryConfig::backoff_slots`] scaled by a slot
//!   duration, stall detection mirrors the server's
//!   `stall_window_slots`, and shutdown drains rather than drops.
//!
//! * **Lockstep drivers** ([`driver`]) — [`SessionDriver`] maps frames
//!   onto a [`dms_serve::ServerEngine`]: each offer carries its
//!   arrival slot, the driver steps the engine exactly to that slot,
//!   and admission verdicts flow back as [`Frame::Admit`] /
//!   [`Frame::Reject`]. Wall-clock pacing ([`dms_sim::TickClock`])
//!   only *times* the ticks; the slot stamps on the wire *decide*
//!   them, which is why a socket-fed run produces byte-identical
//!   run-logs to direct injection at any `DMS_THREADS`.
//!
//! The `dms-bench` crate ships `netserve` and `loadgen` binaries that
//! put an E12-style Poisson workload over a real loopback socket; the
//! CI soak compares the resulting server run-log byte-for-byte against
//! the direct-injection path.

pub mod driver;
pub mod endpoint;
pub mod error;
pub mod frame;

pub use driver::{
    drive_direct, run_loadgen, serve_connection, DriverConfig, FleetDriver, LoadgenReport,
    SessionDriver,
};
pub use endpoint::{
    connect_with_backoff, EndpointAddr, Listener, NetConnection, ReconnectPolicy, Reconnector,
    StallDetector,
};
pub use error::NetError;
pub use frame::{Frame, FrameCodec, MAX_PAYLOAD, PROTOCOL_VERSION};
