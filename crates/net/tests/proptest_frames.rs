//! Property-based tests for the wire protocol: the codec must be a
//! bijection on well-formed streams and a total function (error, not
//! panic) on everything else.

use dms_net::{Frame, FrameCodec, NetError, MAX_PAYLOAD, PROTOCOL_VERSION};
use proptest::prelude::*;

fn any_u64() -> std::ops::RangeInclusive<u64> {
    0..=u64::MAX
}

fn any_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (0u16..=u16::MAX, any_u64(), any_u64()).prop_map(|(version, client_id, slots)| {
            Frame::Hello {
                version,
                client_id,
                slots,
            }
        }),
        (any_u64(), any_u64(), any_u64()).prop_map(|(id, arrival_slot, duration_slots)| {
            Frame::Offer {
                id,
                arrival_slot,
                duration_slots,
            }
        }),
        (any_u64(), any_u64()).prop_map(|(id, slot)| Frame::Admit { id, slot }),
        (any_u64(), any_u64()).prop_map(|(id, slot)| Frame::Reject { id, slot }),
        (any_u64(), any_u64(), any_u64()).prop_map(|(id, slot, bits)| Frame::Data {
            id,
            slot,
            bits
        }),
        (any_u64(), 0u32..=u32::MAX).prop_map(|(slot, layers)| Frame::Shed { slot, layers }),
        any_u64().prop_map(|slot| Frame::Heartbeat { slot }),
        (0u8..=255).prop_map(|reason| Frame::Shutdown { reason }),
    ]
}

proptest! {
    /// encode ∘ decode is the identity on every frame.
    #[test]
    fn round_trip(frame in any_frame()) {
        let bytes = frame.encode();
        let decoded = Frame::decode(&bytes[4..]).expect("well-formed");
        prop_assert_eq!(decoded, frame);
    }

    /// A stream of frames survives arbitrary fragmentation: the codec
    /// reassembles the exact sequence no matter how the transport
    /// chops it up.
    #[test]
    fn codec_is_fragmentation_invariant(
        frames in proptest::collection::vec(any_frame(), 1..20),
        cuts in proptest::collection::vec(1usize..16, 1..40),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let mut codec = FrameCodec::new();
        let mut decoded = Vec::new();
        let mut at = 0;
        let mut cut = 0;
        while at < wire.len() {
            let step = cuts[cut % cuts.len()].min(wire.len() - at);
            cut += 1;
            codec.push(&wire[at..at + step]);
            at += step;
            while let Some(f) = codec.next_frame().expect("well-formed stream") {
                decoded.push(f);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(codec.pending(), 0);
    }

    /// Truncating a valid frame's payload is always an error, never a
    /// panic and never a bogus decode.
    #[test]
    fn truncation_is_rejected(frame in any_frame(), keep in 0usize..30) {
        let bytes = frame.encode();
        let payload = bytes[4..].to_vec();
        if keep < payload.len() {
            prop_assert!(matches!(
                Frame::decode(&payload[..keep]),
                Err(NetError::Frame(_))
            ));
        }
    }

    /// Arbitrary bytes thrown at the decoder never panic; any decode
    /// that *succeeds* must re-encode to the same payload (no aliased
    /// interpretations).
    #[test]
    fn arbitrary_bytes_never_panic(payload in proptest::collection::vec(0u8..=255, 0..64)) {
        if let Ok(frame) = Frame::decode(&payload) {
            let bytes = frame.encode();
            prop_assert_eq!(bytes[4..].to_vec(), payload);
        }
    }

    /// The streaming codec rejects oversized length prefixes outright
    /// instead of buffering towards them.
    #[test]
    fn oversized_lengths_fail_fast(len in (MAX_PAYLOAD + 1)..=u32::MAX) {
        let mut codec = FrameCodec::new();
        codec.push(&len.to_le_bytes());
        prop_assert!(matches!(
            codec.next_frame(),
            Err(NetError::Frame("oversized payload"))
        ));
    }

    /// Corrupting a single byte of a valid wire stream either still
    /// decodes (the flip hit a don't-care bit of an integer field) or
    /// errors — it never panics. Run against the *streaming* codec so
    /// the length prefix is in scope for corruption too.
    #[test]
    fn single_byte_corruption_never_panics(
        frame in any_frame(),
        at in 0usize..32,
        flip in 1u8..=255,
    ) {
        let mut wire = frame.encode();
        let at = at % wire.len();
        wire[at] ^= flip;
        let mut codec = FrameCodec::new();
        codec.push(&wire);
        // Drain until the codec errors, stalls, or empties — all fine.
        while let Ok(Some(_)) = codec.next_frame() {}
    }
}

#[test]
fn protocol_version_is_one() {
    // The version is wire-visible; bumping it is a compatibility
    // break and must be deliberate.
    assert_eq!(PROTOCOL_VERSION, 1);
}
