//! End-to-end loopback over real sockets: a server thread running
//! [`dms_net::serve_connection`] against a loadgen on the other end,
//! over both transports, checked against the transportless
//! [`dms_net::drive_direct`] arm.

use std::thread;

use dms_net::{
    connect_with_backoff, drive_direct, run_loadgen, serve_connection, DriverConfig, EndpointAddr,
    Listener, NetConnection, ReconnectPolicy, SessionDriver,
};
use dms_serve::{
    rate_for_load, AdmissionPolicy, ArrivalProcess, CapacityModel, DegradeConfig, ServerConfig,
    SessionTemplate, Workload,
};

fn setup(load: f64, slots: u64, seed: u64) -> (ServerConfig, Workload) {
    let template = SessionTemplate::streaming_default().expect("preset valid");
    let cfg = ServerConfig {
        capacity: CapacityModel {
            link_bits_per_slot: 20 * template.full_bits(),
            queue_frames: 64,
            occupancy_bound: 8.0,
        },
        policy: AdmissionPolicy::QueuePredictor,
        degrade: Some(DegradeConfig::default()),
        buffer_slots: 4,
        miss_slots: 2,
    };
    let rate = rate_for_load(load, &template, cfg.capacity.link_bits_per_slot);
    let workload =
        Workload::generate(ArrivalProcess::Poisson { rate }, template, slots, seed).expect("valid");
    (cfg, workload)
}

/// Runs the workload through a server on `server_conn` while the
/// caller's thread plays loadgen on `client_conn`; returns
/// (run_log, loadgen report).
fn soak_over(
    mut server_conn: NetConnection,
    mut client_conn: NetConnection,
    cfg: &ServerConfig,
    workload: &Workload,
) -> (String, dms_net::LoadgenReport) {
    let mut driver = SessionDriver::new(
        cfg,
        workload.template,
        workload.slots,
        DriverConfig::default(),
    )
    .expect("valid driver");
    let server = thread::spawn(move || {
        serve_connection(&mut server_conn, &mut driver).expect("serves");
        driver.into_run_log()
    });
    let report = run_loadgen(
        &mut client_conn,
        1,
        workload.slots,
        &workload.sessions,
        None,
    )
    .expect("loadgen runs");
    let log = server.join().expect("server thread");
    (log, report)
}

#[test]
fn socketpair_run_is_byte_identical_to_direct_injection() {
    let (cfg, workload) = setup(1.2, 300, 5);

    let direct_driver = SessionDriver::new(
        &cfg,
        workload.template,
        workload.slots,
        DriverConfig::default(),
    )
    .expect("valid driver");
    let (direct_log, direct_report) =
        drive_direct(direct_driver, 1, &workload.sessions).expect("direct drives");

    let (server_conn, client_conn) = NetConnection::pair().expect("socketpair");
    let (socket_log, socket_report) = soak_over(server_conn, client_conn, &cfg, &workload);

    assert_eq!(
        socket_log, direct_log,
        "run-logs diverged across transports"
    );
    assert_eq!(socket_report, direct_report);
    assert!(direct_report.admitted + direct_report.rejected <= direct_report.offered);
}

#[test]
fn tcp_loopback_matches_direct_injection() {
    let (cfg, workload) = setup(1.0, 150, 9);

    let direct_driver = SessionDriver::new(
        &cfg,
        workload.template,
        workload.slots,
        DriverConfig::default(),
    )
    .expect("valid driver");
    let (direct_log, _) = drive_direct(direct_driver, 1, &workload.sessions).expect("drives");

    let listener =
        Listener::bind(&EndpointAddr::Tcp("127.0.0.1:0".into())).expect("binds ephemeral port");
    let addr = listener.local_addr().expect("has addr");
    let accepter = thread::spawn(move || listener.accept().expect("accepts"));
    let client_conn = connect_with_backoff(&addr, &ReconnectPolicy::default()).expect("connects");
    let server_conn = accepter.join().expect("accept thread");

    let (socket_log, _) = soak_over(server_conn, client_conn, &cfg, &workload);
    assert_eq!(socket_log, direct_log);
}

#[test]
fn unix_socket_loopback_matches_direct_injection() {
    let (cfg, workload) = setup(1.0, 150, 13);

    let direct_driver = SessionDriver::new(
        &cfg,
        workload.template,
        workload.slots,
        DriverConfig::default(),
    )
    .expect("valid driver");
    let (direct_log, _) = drive_direct(direct_driver, 1, &workload.sessions).expect("drives");

    let path = std::env::temp_dir().join(format!("dms-net-test-{}.sock", std::process::id()));
    let addr = EndpointAddr::Unix(path.clone());
    let listener = Listener::bind(&addr).expect("binds");
    let accepter = thread::spawn(move || listener.accept().expect("accepts"));
    let client_conn = connect_with_backoff(&addr, &ReconnectPolicy::default()).expect("connects");
    let server_conn = accepter.join().expect("accept thread");

    let (socket_log, _) = soak_over(server_conn, client_conn, &cfg, &workload);
    let _ = std::fs::remove_file(&path);
    assert_eq!(socket_log, direct_log);
}

#[test]
fn heartbeats_and_data_frames_flow_when_enabled() {
    let (cfg, workload) = setup(1.0, 100, 21);
    let driver_cfg = DriverConfig {
        heartbeat_every_slots: 10,
        emit_data: true,
    };
    let mut driver =
        SessionDriver::new(&cfg, workload.template, workload.slots, driver_cfg).expect("valid");
    let (mut server_conn, mut client_conn) = NetConnection::pair().expect("socketpair");
    let server = thread::spawn(move || {
        serve_connection(&mut server_conn, &mut driver).expect("serves");
        driver.into_run_log()
    });
    let report = run_loadgen(
        &mut client_conn,
        1,
        workload.slots,
        &workload.sessions,
        None,
    )
    .expect("runs");
    let log = server.join().expect("server thread");

    // 100 slots / heartbeat every 10 → 10 beacons; one Data per slot.
    assert_eq!(report.heartbeats, 10);
    assert_eq!(report.data_frames, 100);
    // Telemetry framing must not leak into the run-log.
    let plain_driver = SessionDriver::new(
        &cfg,
        workload.template,
        workload.slots,
        DriverConfig::default(),
    )
    .expect("valid");
    let (plain_log, _) = drive_direct(plain_driver, 1, &workload.sessions).expect("drives");
    assert_eq!(log, plain_log);
}
