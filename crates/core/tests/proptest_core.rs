//! Property-based tests for the modelling front-end.

use dms_core::graph::ProcessGraph;
use dms_core::task::TaskGraph;
use dms_core::FiniteQueue;
use dms_sim::SimTime;
use proptest::prelude::*;

proptest! {
    /// Queue conservation: accepted = popped + still queued; dropped
    /// accounts for everything that was offered but rejected.
    #[test]
    fn finite_queue_conserves_items(
        capacity in 1usize..16,
        ops in proptest::collection::vec(proptest::bool::ANY, 0..300),
    ) {
        let mut q: FiniteQueue<u32> = FiniteQueue::new(capacity);
        let mut offered = 0u64;
        let mut popped = 0u64;
        let mut t = 0u64;
        for (i, &push) in ops.iter().enumerate() {
            t += 1;
            if push {
                offered += 1;
                let _ = q.push(SimTime::from_ticks(t), i as u32);
            } else if q.pop(SimTime::from_ticks(t)).is_some() {
                popped += 1;
            }
        }
        prop_assert_eq!(q.accepted() + q.dropped(), offered);
        prop_assert_eq!(q.accepted(), popped + q.len() as u64);
        prop_assert!(q.len() <= capacity);
        prop_assert!(q.peak_occupancy() <= capacity as f64);
        prop_assert!((0.0..=1.0).contains(&q.loss_rate()));
    }

    /// FIFO: items come out in the order they went in.
    #[test]
    fn finite_queue_is_fifo(values in proptest::collection::vec(0u32..1000, 1..50)) {
        let mut q: FiniteQueue<u32> = FiniteQueue::new(values.len());
        for &v in &values {
            q.push(SimTime::ZERO, v).expect("capacity == len(values)");
        }
        let drained: Vec<u32> =
            std::iter::from_fn(|| q.pop(SimTime::ZERO)).collect();
        prop_assert_eq!(drained, values);
    }

    /// Topological order of a randomly generated layered DAG respects
    /// every dependency, covers every task exactly once.
    #[test]
    fn topo_order_respects_dependencies(
        n in 1usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40, 1u64..1000), 0..120),
    ) {
        let mut g = TaskGraph::new("random");
        let ids: Vec<_> = (0..n).map(|i| g.add_task(format!("t{i}"), 10, 1.0)).collect();
        for &(a, b, bytes) in &edges {
            // Force edges forward (a < b) to keep the graph acyclic.
            let (a, b) = (a % n, b % n);
            if a < b {
                g.add_dependency(ids[a], ids[b], bytes).expect("valid endpoints");
            }
        }
        let order = g.topological_order().expect("forward edges are acyclic");
        prop_assert_eq!(order.len(), n);
        let position: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(pos, &t)| (t, pos)).collect();
        for dep in g.dependencies() {
            prop_assert!(position[&dep.from] < position[&dep.to]);
        }
    }

    /// The critical path is at least the heaviest single task and at
    /// most the total work.
    #[test]
    fn critical_path_bounds(
        cycles in proptest::collection::vec(1u64..10_000, 1..30),
        chain in proptest::bool::ANY,
    ) {
        let mut g = TaskGraph::new("bounds");
        let ids: Vec<_> = cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| g.add_task(format!("t{i}"), c, 1.0))
            .collect();
        if chain {
            for w in ids.windows(2) {
                g.add_dependency(w[0], w[1], 1).expect("valid endpoints");
            }
        }
        let cp = g.critical_path_cycles().expect("acyclic");
        let max_single = cycles.iter().copied().max().expect("non-empty");
        let total: u64 = cycles.iter().sum();
        prop_assert!(cp >= max_single);
        prop_assert!(cp <= total);
        if chain {
            prop_assert_eq!(cp, total);
        }
    }

    /// Sources and sinks of a random process graph are consistent with
    /// the edge set.
    #[test]
    fn graph_sources_and_sinks_consistent(
        n in 1usize..20,
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..60),
    ) {
        let mut g = ProcessGraph::new("random");
        let ids: Vec<_> = (0..n).map(|i| g.add_process(format!("p{i}"), 1)).collect();
        for &(a, b) in &edges {
            let (a, b) = (a % n, b % n);
            g.connect(ids[a], ids[b], 1, 1).expect("valid endpoints");
        }
        for src in g.sources() {
            prop_assert_eq!(g.predecessors(src).count(), 0);
        }
        for sink in g.sinks() {
            prop_assert_eq!(g.successors(sink).count(), 0);
        }
    }
}
