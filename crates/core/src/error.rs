//! Error type shared by the modelling front-end.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A referenced process does not exist in the graph.
    UnknownProcess(usize),
    /// A referenced channel does not exist in the graph.
    UnknownChannel(usize),
    /// A referenced processing element does not exist in the platform.
    UnknownPe(usize),
    /// A referenced task does not exist in the task graph.
    UnknownTask(usize),
    /// A channel was declared with zero capacity.
    ZeroCapacityChannel,
    /// A mapping leaves at least one process unassigned.
    UnmappedProcess(usize),
    /// The task graph contains a dependency cycle.
    CyclicTaskGraph,
    /// A numeric parameter was not finite/positive where required.
    InvalidParameter(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownProcess(id) => write!(f, "unknown process id {id}"),
            CoreError::UnknownChannel(id) => write!(f, "unknown channel id {id}"),
            CoreError::UnknownPe(id) => write!(f, "unknown processing element id {id}"),
            CoreError::UnknownTask(id) => write!(f, "unknown task id {id}"),
            CoreError::ZeroCapacityChannel => write!(f, "channel capacity must be at least one"),
            CoreError::UnmappedProcess(id) => write!(f, "process {id} has no mapping"),
            CoreError::CyclicTaskGraph => write!(f, "task graph contains a cycle"),
            CoreError::InvalidParameter(what) => {
                write!(f, "parameter `{what}` must be positive and finite")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            CoreError::UnknownProcess(3).to_string(),
            "unknown process id 3"
        );
        assert!(CoreError::CyclicTaskGraph.to_string().contains("cycle"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}
