//! Executing a mapped system: the "evaluate" arm of the Y-chart.
//!
//! §2.1: "Having the application and the architecture models, the next
//! step is to map the application onto architecture and then evaluate
//! the model using either simulation or some analytical approach."
//!
//! [`MappedSystemSim`] simulates any [`ProcessGraph`] mapped onto a
//! [`Platform`] with process-network semantics: a process *fires* when
//! every input channel holds a token and every output channel has room
//! (blocking reads and writes); firing occupies its processing element
//! for `cycles_per_token / frequency` and then moves tokens. Processes
//! sharing a PE are arbitrated round-robin — the scheduler process of
//! §2.1. Sources fire on a configurable period; energy is charged per
//! PE from its power model.

use std::collections::VecDeque;

use dms_sim::{Engine, EventQueue, Model, OnlineStats, SimTime};

use crate::error::CoreError;
use crate::graph::{ChannelId, ProcessGraph, ProcessId};
use crate::mapping::Mapping;
use crate::platform::{PeId, Platform};
use crate::qos::QosReport;

/// Configuration of a mapped-system simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Ticks between firings of each source process (its input period).
    pub source_period: u64,
    /// Number of tokens each source emits.
    pub tokens: u64,
    /// Tick duration in seconds (for energy/latency conversion).
    pub tick_s: f64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            source_period: 1_000,
            tokens: 1_000,
            tick_s: 1e-9,
        }
    }
}

impl ExecConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for zero periods/tokens
    /// or a non-positive tick duration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.source_period == 0 {
            return Err(CoreError::InvalidParameter("source_period"));
        }
        if self.tokens == 0 {
            return Err(CoreError::InvalidParameter("tokens"));
        }
        if !(self.tick_s.is_finite() && self.tick_s > 0.0) {
            return Err(CoreError::InvalidParameter("tick_s"));
        }
        Ok(())
    }
}

/// Measured outcome of executing a mapped system.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Tokens fully consumed by each sink (minimum across sinks).
    pub completed_tokens: u64,
    /// Mean source-to-sink latency, seconds.
    pub mean_latency_s: f64,
    /// Latency jitter (standard deviation), seconds.
    pub jitter_s: f64,
    /// Delivered throughput, tokens per second.
    pub throughput_per_s: f64,
    /// Computation energy, joules.
    pub energy_j: f64,
    /// Per-PE busy fraction, indexed by PE id.
    pub pe_utilization: Vec<f64>,
    /// Mean occupancy per channel, indexed by channel id.
    pub channel_occupancy: Vec<f64>,
    /// Simulated duration, seconds.
    pub duration_s: f64,
}

impl ExecReport {
    /// Collapses the measurement into a [`QosReport`] for constraint
    /// checking and Pareto exploration.
    #[must_use]
    pub fn to_qos(&self) -> QosReport {
        QosReport {
            mean_latency_s: self.mean_latency_s,
            jitter_s: self.jitter_s,
            loss_rate: 0.0, // blocking writes: nothing is dropped
            throughput_per_s: self.throughput_per_s,
            energy_j: self.energy_j,
            deadline_miss_ratio: 0.0,
        }
    }
}

/// A token in flight through the mapped system.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    created: SimTime,
}

/// Events driving the simulation (public because it is the model's
/// [`Model::Event`] type; construct simulations via [`MappedSystemSim::run`]).
#[derive(Debug)]
pub enum ExecEvent {
    /// A source process emits its next token.
    SourceFire(ProcessId, u64),
    /// A process finishes its service on its PE.
    Done(ProcessId, Token),
}

/// The mapped-system simulator (see module docs).
#[derive(Debug)]
pub struct MappedSystemSim {
    graph: ProcessGraph,
    platform: Platform,
    mapping: Mapping,
    config: ExecConfig,
    /// Token queues per channel.
    queues: Vec<VecDeque<Token>>,
    /// Occupancy integrals per channel (`Σ len·dt`).
    occupancy_sum: Vec<f64>,
    last_time: SimTime,
    /// Whether each PE is currently serving a process.
    pe_busy: Vec<bool>,
    pe_busy_ticks: Vec<u64>,
    /// Round-robin pointer per PE over its mapped processes.
    rr: Vec<usize>,
    /// Tokens completed per sink process index.
    sink_done: Vec<(ProcessId, u64)>,
    latency: OnlineStats,
    energy_j: f64,
}

impl MappedSystemSim {
    /// Builds the simulator, validating the mapping against the graph
    /// and platform.
    ///
    /// # Errors
    ///
    /// Propagates mapping/configuration validation failures.
    pub fn new(
        graph: &ProcessGraph,
        platform: &Platform,
        mapping: &Mapping,
        config: ExecConfig,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        mapping.validate(graph, platform)?;
        let sinks = graph.sinks();
        Ok(MappedSystemSim {
            graph: graph.clone(),
            platform: platform.clone(),
            mapping: mapping.clone(),
            config,
            queues: (0..graph.channel_count())
                .map(|_| VecDeque::new())
                .collect(),
            occupancy_sum: vec![0.0; graph.channel_count()],
            last_time: SimTime::ZERO,
            pe_busy: vec![false; platform.pe_count()],
            pe_busy_ticks: vec![0; platform.pe_count()],
            rr: vec![0; platform.pe_count()],
            sink_done: sinks.into_iter().map(|s| (s, 0)).collect(),
            latency: OnlineStats::new(),
            energy_j: 0.0,
        })
    }

    /// Runs the simulation to completion and reports.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn run(
        graph: &ProcessGraph,
        platform: &Platform,
        mapping: &Mapping,
        config: ExecConfig,
    ) -> Result<ExecReport, CoreError> {
        let model = MappedSystemSim::new(graph, platform, mapping, config)?;
        let sources = model.graph.sources();
        let mut engine = Engine::new(model);
        for s in sources {
            engine
                .queue_mut()
                .schedule(SimTime::ZERO, ExecEvent::SourceFire(s, 0));
        }
        engine.run_to_completion();
        let now = engine.now();
        let m = engine.into_model();
        let duration_s = now.ticks() as f64 * m.config.tick_s;
        let completed = m.sink_done.iter().map(|&(_, n)| n).min().unwrap_or(0);
        Ok(ExecReport {
            completed_tokens: completed,
            mean_latency_s: m.latency.mean() * m.config.tick_s,
            jitter_s: m.latency.std_dev() * m.config.tick_s,
            throughput_per_s: if duration_s > 0.0 {
                completed as f64 / duration_s
            } else {
                0.0
            },
            energy_j: m.energy_j,
            pe_utilization: m
                .pe_busy_ticks
                .iter()
                .map(|&b| {
                    if now.ticks() == 0 {
                        0.0
                    } else {
                        b as f64 / now.ticks() as f64
                    }
                })
                .collect(),
            channel_occupancy: m
                .occupancy_sum
                .iter()
                .map(|&s| {
                    if now.ticks() == 0 {
                        0.0
                    } else {
                        s / now.ticks() as f64
                    }
                })
                .collect(),
            duration_s,
        })
    }

    fn integrate_occupancy(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_time) as f64;
        if dt > 0.0 {
            for (sum, q) in self.occupancy_sum.iter_mut().zip(&self.queues) {
                *sum += q.len() as f64 * dt;
            }
        }
        self.last_time = self.last_time.max(now);
    }

    /// Whether `p` can fire: all inputs non-empty, all outputs have room.
    fn ready(&self, p: ProcessId) -> bool {
        let inputs_ok = self
            .graph
            .predecessors(p)
            .all(|(cid, _)| !self.queues[cid.index()].is_empty());
        let outputs_ok = self
            .graph
            .successors(p)
            .all(|(cid, c)| self.queues[cid.index()].len() < c.capacity);
        inputs_ok && outputs_ok
    }

    /// Attempts to start one process on `pe` (round-robin among its
    /// mapped non-source processes).
    fn dispatch(&mut self, pe: PeId, now: SimTime, q: &mut EventQueue<ExecEvent>) {
        if self.pe_busy[pe.index()] {
            return;
        }
        let procs = self.mapping.processes_on(pe);
        if procs.is_empty() {
            return;
        }
        let start = self.rr[pe.index()];
        for k in 0..procs.len() {
            let p = procs[(start + k) % procs.len()];
            // Sources fire on their own schedule, not via dispatch.
            if self.graph.predecessors(p).next().is_none() {
                continue;
            }
            if !self.ready(p) {
                continue;
            }
            // Consume one token from each input; remember the oldest
            // creation time for latency accounting.
            let mut oldest = SimTime::MAX;
            let input_ids: Vec<ChannelId> =
                self.graph.predecessors(p).map(|(cid, _)| cid).collect();
            for cid in input_ids {
                let tok = self.queues[cid.index()]
                    .pop_front()
                    .expect("ready() checked non-empty");
                oldest = oldest.min(tok.created);
            }
            self.rr[pe.index()] = (start + k + 1) % procs.len();
            let process = self.graph.process(p).expect("mapped process exists");
            let element = self.platform.pe(pe).expect("validated mapping");
            let exec_s = element.exec_time_s(process.cycles_per_token);
            let ticks = ((exec_s / self.config.tick_s).round() as u64).max(1);
            self.energy_j += element.exec_energy_j(process.cycles_per_token);
            self.pe_busy[pe.index()] = true;
            self.pe_busy_ticks[pe.index()] += ticks;
            q.schedule(
                now + SimTime::from_ticks(ticks),
                ExecEvent::Done(p, Token { created: oldest }),
            );
            return;
        }
    }

    fn dispatch_all(&mut self, now: SimTime, q: &mut EventQueue<ExecEvent>) {
        for i in 0..self.platform.pe_count() {
            self.dispatch(PeId(i), now, q);
        }
    }
}

impl Model for MappedSystemSim {
    type Event = ExecEvent;

    fn handle(&mut self, now: SimTime, event: ExecEvent, q: &mut EventQueue<ExecEvent>) {
        self.integrate_occupancy(now);
        match event {
            ExecEvent::SourceFire(p, i) => {
                // A source emits one token into each output (blocking
                // write: retried next period if any output is full).
                let room = self
                    .graph
                    .successors(p)
                    .all(|(cid, c)| self.queues[cid.index()].len() < c.capacity);
                let emitted = if room {
                    let outs: Vec<ChannelId> =
                        self.graph.successors(p).map(|(cid, _)| cid).collect();
                    for cid in outs {
                        self.queues[cid.index()].push_back(Token { created: now });
                    }
                    // A source with no outputs is also a sink: count it.
                    if self.graph.successors(p).next().is_none() {
                        if let Some(slot) = self.sink_done.iter_mut().find(|(s, _)| *s == p) {
                            slot.1 += 1;
                        }
                    }
                    true
                } else {
                    false
                };
                let next = if emitted { i + 1 } else { i };
                if next < self.config.tokens {
                    q.schedule(
                        now + SimTime::from_ticks(self.config.source_period),
                        ExecEvent::SourceFire(p, next),
                    );
                }
                self.dispatch_all(now, q);
            }
            ExecEvent::Done(p, token) => {
                let pe = self.mapping.pe_of(p).expect("validated mapping");
                self.pe_busy[pe.index()] = false;
                let outs: Vec<ChannelId> = self.graph.successors(p).map(|(cid, _)| cid).collect();
                if outs.is_empty() {
                    // Sink: token leaves the system.
                    if let Some(slot) = self.sink_done.iter_mut().find(|(s, _)| *s == p) {
                        slot.1 += 1;
                    }
                    self.latency
                        .record(now.saturating_since(token.created) as f64);
                } else {
                    for cid in outs {
                        self.queues[cid.index()].push_back(token);
                    }
                }
                self.dispatch_all(now, q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PeKind;

    /// source → worker → sink, all on one CPU.
    fn pipeline() -> (ProcessGraph, Platform, Mapping) {
        let mut g = ProcessGraph::new("pipe");
        let src = g.add_process("src", 100);
        let work = g.add_process("work", 400);
        let sink = g.add_process("sink", 100);
        g.connect(src, work, 8, 64).expect("valid");
        g.connect(work, sink, 8, 64).expect("valid");
        let mut plat = Platform::new("uni");
        let cpu = plat.add_pe("cpu", PeKind::Gpp, 1e9);
        let mut map = Mapping::new();
        for p in [src, work, sink] {
            map.assign(p, cpu);
        }
        (g, plat, map)
    }

    #[test]
    fn pipeline_completes_all_tokens() {
        let (g, plat, map) = pipeline();
        let cfg = ExecConfig {
            source_period: 1_000,
            tokens: 500,
            tick_s: 1e-9,
        };
        let r = MappedSystemSim::run(&g, &plat, &map, cfg).expect("valid");
        assert_eq!(r.completed_tokens, 500);
        assert!(r.mean_latency_s > 0.0);
        assert!(r.energy_j > 0.0);
        assert!(r.throughput_per_s > 0.0);
        // CPU does 600 cycles per token at 1 GHz = 600 ns per 1000 ns period.
        assert!(
            r.pe_utilization[0] > 0.4 && r.pe_utilization[0] < 0.8,
            "utilisation {}",
            r.pe_utilization[0]
        );
    }

    #[test]
    fn faster_pe_cuts_latency_and_energy_tradeoff_shows() {
        let (g, _, _) = pipeline();
        let mut plat = Platform::new("duo");
        let slow = plat.add_pe("slow", PeKind::Gpp, 200e6);
        let fast = plat.add_pe("fast", PeKind::Gpp, 2e9);
        let mk = |pe| {
            let mut m = Mapping::new();
            for (pid, _) in g.processes() {
                m.assign(pid, pe);
            }
            m
        };
        let cfg = ExecConfig {
            source_period: 5_000,
            tokens: 300,
            tick_s: 1e-9,
        };
        let r_slow = MappedSystemSim::run(&g, &plat, &mk(slow), cfg).expect("valid");
        let r_fast = MappedSystemSim::run(&g, &plat, &mk(fast), cfg).expect("valid");
        assert!(r_fast.mean_latency_s < r_slow.mean_latency_s);
        // Same per-cycle energy model scaled by frequency: faster PE at
        // same energy/cycle class burns more power but finishes sooner —
        // total compute energy here scales with active power × time,
        // i.e. equal cycles at higher W for less time: higher energy for
        // the faster part under the default linear power model.
        assert!(r_fast.energy_j >= r_slow.energy_j);
    }

    #[test]
    fn fork_join_graph_preserves_tokens() {
        // src → {a, b} → join (the Fig. 1b shape).
        let mut g = ProcessGraph::new("forkjoin");
        let src = g.add_process("src", 50);
        let a = g.add_process("a", 200);
        let b = g.add_process("b", 300);
        let join = g.add_process("join", 100);
        g.connect(src, a, 4, 8).expect("valid");
        g.connect(src, b, 4, 8).expect("valid");
        g.connect(a, join, 4, 8).expect("valid");
        g.connect(b, join, 4, 8).expect("valid");
        let mut plat = Platform::new("duo");
        let p0 = plat.add_pe("p0", PeKind::Gpp, 1e9);
        let p1 = plat.add_pe("p1", PeKind::Dsp, 1e9);
        let mut map = Mapping::new();
        map.assign(src, p0);
        map.assign(a, p0);
        map.assign(b, p1);
        map.assign(join, p1);
        let cfg = ExecConfig {
            source_period: 2_000,
            tokens: 200,
            tick_s: 1e-9,
        };
        let r = MappedSystemSim::run(&g, &plat, &map, cfg).expect("valid");
        assert_eq!(r.completed_tokens, 200, "every token must cross the join");
        assert!(r.channel_occupancy.iter().all(|&o| o >= 0.0));
    }

    #[test]
    fn overloaded_pe_backpressures_instead_of_dropping() {
        let (g, _, _) = pipeline();
        let mut plat = Platform::new("tiny");
        let cpu = plat.add_pe("cpu", PeKind::Gpp, 1e6); // 600 cycles @ 1 MHz = 600 µs per token
        let mut map = Mapping::new();
        for (pid, _) in g.processes() {
            map.assign(pid, cpu);
        }
        // Source wants a token every 1 µs: hopeless, but nothing is lost —
        // the source simply stalls (blocking write).
        let cfg = ExecConfig {
            source_period: 1_000,
            tokens: 50,
            tick_s: 1e-9,
        };
        let r = MappedSystemSim::run(&g, &plat, &map, cfg).expect("valid");
        assert_eq!(r.completed_tokens, 50);
        assert!(r.pe_utilization[0] > 0.95);
        assert!(r.to_qos().loss_rate == 0.0);
    }

    #[test]
    fn config_validation() {
        let (g, plat, map) = pipeline();
        let bad = ExecConfig {
            source_period: 0,
            ..ExecConfig::default()
        };
        assert!(MappedSystemSim::run(&g, &plat, &map, bad).is_err());
        let bad = ExecConfig {
            tokens: 0,
            ..ExecConfig::default()
        };
        assert!(MappedSystemSim::run(&g, &plat, &map, bad).is_err());
        let bad = ExecConfig {
            tick_s: 0.0,
            ..ExecConfig::default()
        };
        assert!(MappedSystemSim::run(&g, &plat, &map, bad).is_err());
        // Unmapped process.
        let empty = Mapping::new();
        assert!(MappedSystemSim::run(&g, &plat, &empty, ExecConfig::default()).is_err());
    }

    #[test]
    fn qos_conversion_round_trips() {
        let (g, plat, map) = pipeline();
        let r = MappedSystemSim::run(&g, &plat, &map, ExecConfig::default()).expect("valid");
        let qos = r.to_qos();
        assert_eq!(qos.mean_latency_s, r.mean_latency_s);
        assert_eq!(qos.energy_j, r.energy_j);
        assert_eq!(qos.loss_rate, 0.0);
    }
}
