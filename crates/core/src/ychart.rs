//! The Y-chart design loop and design-space exploration.
//!
//! "The overall goal of successful design is then to find the best
//! mapping of the target multimedia application onto the architectural
//! resources, while satisfying an imposed set of design constraints
//! (e.g. minimum power dissipation, maximum performance) and specified
//! QoS metrics" (abstract). [`DesignConstraints`] bundles the hard
//! limits; [`ParetoFront`] keeps the non-dominated energy/latency
//! trade-off points discovered during exploration.

use serde::{Deserialize, Serialize};

use crate::qos::{QosReport, QosRequirement, QosViolation};

/// Design constraints beyond QoS: cost, area and design time appear in
/// §1 as first-class concerns for consumer multimedia.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DesignConstraints {
    /// QoS requirements the mapped system must meet.
    pub qos: QosRequirement,
    /// Maximum silicon area in gate equivalents (e.g. the 200k-gate
    /// budget of the §3.1 voice-recognition ASIP), if bounded.
    pub max_gates: Option<u64>,
    /// Maximum unit cost in arbitrary currency units, if bounded.
    pub max_unit_cost: Option<f64>,
}

impl DesignConstraints {
    /// Constraints with nothing bounded.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a design point against all constraints.
    ///
    /// # Errors
    ///
    /// Returns the QoS violations plus synthetic violations for area/cost
    /// overruns (reported through [`QosViolation::Energy`]-style pairs is
    /// not possible, so overruns are returned as formatted strings).
    pub fn check(&self, point: &DesignPoint) -> Result<(), Vec<String>> {
        let mut problems: Vec<String> = match self.qos.check(&point.qos) {
            Ok(()) => Vec::new(),
            Err(vs) => vs.iter().map(QosViolation::to_string).collect(),
        };
        if let Some(max) = self.max_gates {
            if point.gates > max {
                problems.push(format!("area {} gates exceeds budget {max}", point.gates));
            }
        }
        if let Some(max) = self.max_unit_cost {
            if point.unit_cost > max {
                problems.push(format!(
                    "unit cost {:.2} exceeds budget {max:.2}",
                    point.unit_cost
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

/// One evaluated point in the design space: a candidate mapping together
/// with its measured QoS and implementation cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// A label identifying the candidate (e.g. a mapping digest).
    pub label: String,
    /// Measured QoS.
    pub qos: QosReport,
    /// Estimated area in gate equivalents.
    pub gates: u64,
    /// Estimated unit cost.
    pub unit_cost: f64,
}

impl DesignPoint {
    /// Whether this point dominates `other` in the (energy, latency)
    /// plane: no worse in both, strictly better in at least one.
    #[must_use]
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let no_worse = self.qos.energy_j <= other.qos.energy_j
            && self.qos.mean_latency_s <= other.qos.mean_latency_s;
        let better = self.qos.energy_j < other.qos.energy_j
            || self.qos.mean_latency_s < other.qos.mean_latency_s;
        no_worse && better
    }
}

/// The set of non-dominated design points found so far.
///
/// # Examples
///
/// ```
/// use dms_core::qos::QosReport;
/// use dms_core::ychart::{DesignPoint, ParetoFront};
///
/// fn point(label: &str, energy: f64, latency: f64) -> DesignPoint {
///     let mut qos = QosReport::ideal();
///     qos.energy_j = energy;
///     qos.mean_latency_s = latency;
///     DesignPoint { label: label.into(), qos, gates: 0, unit_cost: 0.0 }
/// }
///
/// let mut front = ParetoFront::new();
/// assert!(front.offer(point("balanced", 1.0, 1.0)));
/// assert!(front.offer(point("fast", 2.0, 0.5)));   // trade-off: kept
/// assert!(!front.offer(point("bad", 3.0, 3.0)));   // dominated: rejected
/// assert_eq!(front.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParetoFront {
    points: Vec<DesignPoint>,
}

impl ParetoFront {
    /// Creates an empty front.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a candidate to the front.
    ///
    /// Returns `true` if the candidate was admitted (it is not dominated
    /// by any existing point); admitting it evicts any points it
    /// dominates.
    pub fn offer(&mut self, candidate: DesignPoint) -> bool {
        if self.points.iter().any(|p| p.dominates(&candidate)) {
            return false;
        }
        self.points.retain(|p| !candidate.dominates(p));
        self.points.push(candidate);
        true
    }

    /// Number of points on the front.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The non-dominated points, sorted by increasing energy.
    #[must_use]
    pub fn points(&self) -> Vec<&DesignPoint> {
        let mut pts: Vec<&DesignPoint> = self.points.iter().collect();
        pts.sort_by(|a, b| {
            a.qos
                .energy_j
                .partial_cmp(&b.qos.energy_j)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        pts
    }

    /// The lowest-energy point, if any.
    #[must_use]
    pub fn min_energy(&self) -> Option<&DesignPoint> {
        self.points.iter().min_by(|a, b| {
            a.qos
                .energy_j
                .partial_cmp(&b.qos.energy_j)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The lowest-latency point, if any.
    #[must_use]
    pub fn min_latency(&self) -> Option<&DesignPoint> {
        self.points.iter().min_by(|a, b| {
            a.qos
                .mean_latency_s
                .partial_cmp(&b.qos.mean_latency_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(label: &str, energy: f64, latency: f64) -> DesignPoint {
        let mut qos = QosReport::ideal();
        qos.energy_j = energy;
        qos.mean_latency_s = latency;
        DesignPoint {
            label: label.into(),
            qos,
            gates: 100,
            unit_cost: 1.0,
        }
    }

    #[test]
    fn domination_rules() {
        let a = point("a", 1.0, 1.0);
        let b = point("b", 2.0, 2.0);
        let c = point("c", 1.0, 2.0);
        let tie = point("tie", 1.0, 1.0);
        assert!(a.dominates(&b));
        assert!(a.dominates(&c));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&tie)); // equal points do not dominate
    }

    #[test]
    fn front_evicts_dominated_points() {
        let mut front = ParetoFront::new();
        assert!(front.offer(point("mediocre", 5.0, 5.0)));
        assert!(front.offer(point("better", 1.0, 1.0)));
        assert_eq!(front.len(), 1);
        assert_eq!(front.points()[0].label, "better");
    }

    #[test]
    fn front_keeps_tradeoffs() {
        let mut front = ParetoFront::new();
        front.offer(point("low-energy", 1.0, 10.0));
        front.offer(point("low-latency", 10.0, 1.0));
        front.offer(point("middle", 5.0, 5.0));
        assert_eq!(front.len(), 3);
        assert_eq!(front.min_energy().expect("non-empty").label, "low-energy");
        assert_eq!(front.min_latency().expect("non-empty").label, "low-latency");
        // points() sorted by energy
        let labels: Vec<&str> = front.points().iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["low-energy", "middle", "low-latency"]);
    }

    #[test]
    fn constraints_check_area_and_cost() {
        let mut c = DesignConstraints::new();
        c.max_gates = Some(50);
        c.max_unit_cost = Some(0.5);
        let p = point("p", 1.0, 1.0);
        let problems = c.check(&p).expect_err("two overruns");
        assert_eq!(problems.len(), 2);
        assert!(problems[0].contains("area"));
        assert!(problems[1].contains("cost"));
    }

    #[test]
    fn constraints_combine_qos_and_cost() {
        let mut c = DesignConstraints::new();
        c.qos = QosRequirement::new().max_energy_j(0.5);
        c.max_gates = Some(50);
        let p = point("p", 1.0, 1.0);
        let problems = c.check(&p).expect_err("qos + area");
        assert_eq!(problems.len(), 2);
    }

    #[test]
    fn empty_constraints_pass() {
        assert!(DesignConstraints::new()
            .check(&point("p", 9.0, 9.0))
            .is_ok());
    }
}
