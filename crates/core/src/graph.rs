//! Process graphs: the application model.
//!
//! "A natural choice is to use process graphs where each node corresponds
//! to a process in the multimedia application, while each edge represents
//! a communication channel (link) which allows data to be exchanged
//! (usually asynchronously) between different communicating processes"
//! (§2.1). Channels carry tokens through finite-length buffers.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Identifier of a process within a [`ProcessGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// The process's index within its graph.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a channel within a [`ProcessGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub(crate) usize);

impl ChannelId {
    /// The channel's index within its graph.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A computational process (graph node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Process {
    /// Human-readable name ("VLD", "IDCT", …).
    pub name: String,
    /// Average computation cost per consumed token, in cycles.
    ///
    /// Multimedia systems are designed for the *average* case (§2), so
    /// this is an expected value, not a WCET.
    pub cycles_per_token: u64,
}

/// A communication channel (graph edge) with a finite buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Producing process.
    pub src: ProcessId,
    /// Consuming process.
    pub dst: ProcessId,
    /// Buffer capacity in tokens.
    pub capacity: usize,
    /// Size of one token in bytes (e.g. 188 for an MPEG-2 TS packet).
    pub token_bytes: u64,
}

/// A directed process graph with finite-buffer channels.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dms_core::CoreError> {
/// use dms_core::graph::ProcessGraph;
///
/// let mut g = ProcessGraph::new("decoder");
/// let vld = g.add_process("VLD", 120);
/// let idct = g.add_process("IDCT", 300);
/// let b3 = g.connect(vld, idct, 16, 64)?;
/// assert_eq!(g.channel(b3)?.capacity, 16);
/// assert_eq!(g.successors(vld).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessGraph {
    name: String,
    processes: Vec<Process>,
    channels: Vec<Channel>,
}

impl ProcessGraph {
    /// Creates an empty graph with a descriptive name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ProcessGraph {
            name: name.into(),
            processes: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// The application's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a process and returns its id.
    pub fn add_process(&mut self, name: impl Into<String>, cycles_per_token: u64) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.processes.push(Process {
            name: name.into(),
            cycles_per_token,
        });
        id
    }

    /// Connects `src` to `dst` with a buffer of `capacity` tokens of
    /// `token_bytes` bytes each.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownProcess`] if either endpoint is not in the graph.
    /// * [`CoreError::ZeroCapacityChannel`] if `capacity == 0`.
    pub fn connect(
        &mut self,
        src: ProcessId,
        dst: ProcessId,
        capacity: usize,
        token_bytes: u64,
    ) -> Result<ChannelId, CoreError> {
        self.check_process(src)?;
        self.check_process(dst)?;
        if capacity == 0 {
            return Err(CoreError::ZeroCapacityChannel);
        }
        let id = ChannelId(self.channels.len());
        self.channels.push(Channel {
            src,
            dst,
            capacity,
            token_bytes,
        });
        Ok(id)
    }

    /// Number of processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Looks up a process.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownProcess`] for a stale or foreign id.
    pub fn process(&self, id: ProcessId) -> Result<&Process, CoreError> {
        self.processes
            .get(id.0)
            .ok_or(CoreError::UnknownProcess(id.0))
    }

    /// Looks up a channel.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownChannel`] for a stale or foreign id.
    pub fn channel(&self, id: ChannelId) -> Result<&Channel, CoreError> {
        self.channels
            .get(id.0)
            .ok_or(CoreError::UnknownChannel(id.0))
    }

    /// Iterates over `(id, process)` pairs.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &Process)> {
        self.processes
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcessId(i), p))
    }

    /// Iterates over `(id, channel)` pairs.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId(i), c))
    }

    /// Channels produced by `p` (outgoing edges).
    pub fn successors(&self, p: ProcessId) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels().filter(move |(_, c)| c.src == p)
    }

    /// Channels consumed by `p` (incoming edges).
    pub fn predecessors(&self, p: ProcessId) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels().filter(move |(_, c)| c.dst == p)
    }

    /// Processes with no incoming channels — the stream *sources*
    /// (encoders) of Fig. 1.
    #[must_use]
    pub fn sources(&self) -> Vec<ProcessId> {
        (0..self.processes.len())
            .map(ProcessId)
            .filter(|&p| self.predecessors(p).next().is_none())
            .collect()
    }

    /// Processes with no outgoing channels — the stream *sinks*
    /// (decoders/displays) of Fig. 1.
    #[must_use]
    pub fn sinks(&self) -> Vec<ProcessId> {
        (0..self.processes.len())
            .map(ProcessId)
            .filter(|&p| self.successors(p).next().is_none())
            .collect()
    }

    /// Total communication volume in bytes if every channel transfers
    /// `tokens` tokens.
    #[must_use]
    pub fn traffic_bytes(&self, tokens: u64) -> u64 {
        self.channels.iter().map(|c| c.token_bytes * tokens).sum()
    }

    fn check_process(&self, id: ProcessId) -> Result<(), CoreError> {
        if id.0 < self.processes.len() {
            Ok(())
        } else {
            Err(CoreError::UnknownProcess(id.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (ProcessGraph, [ProcessId; 4]) {
        let mut g = ProcessGraph::new("diamond");
        let a = g.add_process("a", 1);
        let b = g.add_process("b", 2);
        let c = g.add_process("c", 3);
        let d = g.add_process("d", 4);
        g.connect(a, b, 4, 10).expect("valid");
        g.connect(a, c, 4, 20).expect("valid");
        g.connect(b, d, 4, 30).expect("valid");
        g.connect(c, d, 4, 40).expect("valid");
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, _, d]) = diamond();
        assert_eq!(g.process_count(), 4);
        assert_eq!(g.channel_count(), 4);
        assert_eq!(g.process(a).expect("exists").name, "a");
        assert_eq!(g.successors(a).count(), 2);
        assert_eq!(g.predecessors(d).count(), 2);
        assert_eq!(g.predecessors(b).count(), 1);
    }

    #[test]
    fn sources_and_sinks() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn connect_rejects_bad_endpoints() {
        let mut g = ProcessGraph::new("g");
        let a = g.add_process("a", 1);
        let ghost = ProcessId(17);
        assert_eq!(
            g.connect(a, ghost, 4, 1),
            Err(CoreError::UnknownProcess(17))
        );
        assert_eq!(
            g.connect(ghost, a, 4, 1),
            Err(CoreError::UnknownProcess(17))
        );
    }

    #[test]
    fn connect_rejects_zero_capacity() {
        let mut g = ProcessGraph::new("g");
        let a = g.add_process("a", 1);
        let b = g.add_process("b", 1);
        assert_eq!(g.connect(a, b, 0, 1), Err(CoreError::ZeroCapacityChannel));
    }

    #[test]
    fn traffic_volume() {
        let (g, _) = diamond();
        assert_eq!(g.traffic_bytes(1), 100);
        assert_eq!(g.traffic_bytes(10), 1000);
    }

    #[test]
    fn unknown_lookups_error() {
        let (g, _) = diamond();
        assert!(g.process(ProcessId(99)).is_err());
        assert!(g.channel(ChannelId(99)).is_err());
    }

    #[test]
    fn self_loop_is_allowed() {
        // Feedback (e.g. a rate-control loop) is legitimate in process networks.
        let mut g = ProcessGraph::new("fb");
        let a = g.add_process("a", 1);
        let ch = g.connect(a, a, 2, 8).expect("self loop ok");
        assert_eq!(g.channel(ch).expect("exists").src, a);
        assert!(g.sources().is_empty());
        assert!(g.sinks().is_empty());
    }
}
