//! Finite-length queues — the buffer primitive of Producer–Consumer
//! modelling (§2.1 of the paper).
//!
//! Communication between multimedia processes "happens through dedicated
//! buffers that behave like finite-length queues"; the average length of
//! those buffers "is very important as it reflects their utilization over
//! time". [`FiniteQueue`] therefore tracks occupancy statistics and drop
//! counts alongside the payload itself.

use std::collections::VecDeque;

use dms_sim::{SimTime, TimeWeighted};

/// A bounded FIFO queue with occupancy statistics.
///
/// # Examples
///
/// ```
/// use dms_core::FiniteQueue;
/// use dms_sim::SimTime;
///
/// let mut q: FiniteQueue<u32> = FiniteQueue::new(2);
/// assert!(q.push(SimTime::ZERO, 1).is_ok());
/// assert!(q.push(SimTime::ZERO, 2).is_ok());
/// assert!(q.push(SimTime::ZERO, 3).is_err()); // full: dropped
/// assert_eq!(q.pop(SimTime::from_ticks(5)), Some(1));
/// assert_eq!(q.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FiniteQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    dropped: u64,
    accepted: u64,
    occupancy: TimeWeighted,
}

/// Error returned when pushing to a full [`FiniteQueue`]; carries the
/// rejected item back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError<T>(pub T);

impl<T> std::fmt::Display for QueueFullError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue is at capacity; item rejected")
    }
}

impl<T: std::fmt::Debug> std::error::Error for QueueFullError<T> {}

impl<T> FiniteQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity channel cannot carry
    /// data and always indicates a modelling mistake.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least one");
        FiniteQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            accepted: 0,
            occupancy: TimeWeighted::new(SimTime::ZERO, 0.0),
        }
    }

    /// Maximum number of items the queue can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Attempts to enqueue `item` at simulated time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] (handing the item back) if the queue is
    /// full; the drop is counted towards [`FiniteQueue::dropped`].
    pub fn push(&mut self, now: SimTime, item: T) -> Result<(), QueueFullError<T>> {
        if self.is_full() {
            self.dropped += 1;
            return Err(QueueFullError(item));
        }
        self.items.push_back(item);
        self.accepted += 1;
        self.occupancy.update(now, self.items.len() as f64);
        Ok(())
    }

    /// Dequeues the oldest item, or `None` if empty.
    pub fn pop(&mut self, now: SimTime) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.occupancy.update(now, self.items.len() as f64);
        }
        item
    }

    /// Peeks at the oldest item without removing it.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of items rejected because the queue was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of items successfully enqueued.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Loss rate: dropped / offered (0 if nothing was offered).
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        let offered = self.accepted + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }

    /// Time-averaged queue length over `[0, now]` — the "average length
    /// of these buffers" metric of §2.1.
    #[must_use]
    pub fn average_occupancy(&self, now: SimTime) -> f64 {
        self.occupancy.time_average(now)
    }

    /// Largest occupancy ever reached.
    #[must_use]
    pub fn peak_occupancy(&self) -> f64 {
        self.occupancy.peak()
    }

    /// Iterates over queued items front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = FiniteQueue::new(3);
        q.push(SimTime::ZERO, 'a').expect("not full");
        q.push(SimTime::ZERO, 'b').expect("not full");
        assert_eq!(q.pop(SimTime::ZERO), Some('a'));
        assert_eq!(q.pop(SimTime::ZERO), Some('b'));
        assert_eq!(q.pop(SimTime::ZERO), None);
    }

    #[test]
    fn full_queue_rejects_and_counts() {
        let mut q = FiniteQueue::new(1);
        q.push(SimTime::ZERO, 1).expect("not full");
        let err = q.push(SimTime::ZERO, 2).expect_err("full");
        assert_eq!(err.0, 2); // rejected item handed back
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.accepted(), 1);
        assert!((q.loss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: FiniteQueue<u8> = FiniteQueue::new(0);
    }

    #[test]
    fn occupancy_time_average() {
        let mut q = FiniteQueue::new(4);
        q.push(SimTime::ZERO, ()).expect("not full");
        // one item for 10 ticks, then empty for 10 ticks
        q.pop(SimTime::from_ticks(10));
        assert!((q.average_occupancy(SimTime::from_ticks(20)) - 0.5).abs() < 1e-12);
        assert_eq!(q.peak_occupancy(), 1.0);
    }

    #[test]
    fn loss_rate_empty_is_zero() {
        let q: FiniteQueue<u8> = FiniteQueue::new(1);
        assert_eq!(q.loss_rate(), 0.0);
    }

    #[test]
    fn front_and_iter() {
        let mut q = FiniteQueue::new(3);
        q.push(SimTime::ZERO, 10).expect("ok");
        q.push(SimTime::ZERO, 20).expect("ok");
        assert_eq!(q.front(), Some(&10));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![10, 20]);
    }
}
