//! # dms-core — system-level modelling front-end
//!
//! The paper's design methodology (§2) is the classic Y-chart: model the
//! **application** as a process graph, model the **architecture** as a
//! platform of heterogeneous processing elements, **map** one onto the
//! other, and **evaluate** the mapped system against QoS requirements
//! and design constraints. This crate provides those four ingredients:
//!
//! * [`graph`] — process graphs: processes connected by finite-queue
//!   channels with Producer–Consumer semantics (Fig. 1 of the paper);
//! * [`platform`] — heterogeneous platforms of GPP/DSP/ASIC/ASIP
//!   processing elements with power/frequency operating points;
//! * [`mapping`] — assignment of processes to processing elements;
//! * [`qos`] — QoS metrics (latency, jitter, loss rate, throughput,
//!   energy) with *soft* (probabilistic) requirement semantics;
//! * [`task`] — deadline-carrying task graphs for the scheduling
//!   experiments (E5);
//! * [`queue`] — the finite-length buffer primitive shared by every
//!   simulator in the workspace;
//! * [`exec`] — the "evaluate by simulation" arm: executes any mapped
//!   process graph on the DES kernel with blocking process-network
//!   semantics and per-PE round-robin scheduling;
//! * [`ychart`] — the `map → evaluate → iterate` loop and a Pareto-front
//!   design-space explorer.
//!
//! ## Example
//!
//! Build a two-process producer–consumer application, a single-CPU
//! platform, map both processes to the CPU and check the mapping:
//!
//! ```
//! # fn main() -> Result<(), dms_core::CoreError> {
//! use dms_core::graph::ProcessGraph;
//! use dms_core::mapping::Mapping;
//! use dms_core::platform::{PeKind, Platform};
//!
//! let mut app = ProcessGraph::new("pc");
//! let prod = app.add_process("producer", 100);
//! let cons = app.add_process("consumer", 250);
//! app.connect(prod, cons, 8, 188)?;
//!
//! let mut plat = Platform::new("single-cpu");
//! let cpu = plat.add_pe("cpu0", PeKind::Gpp, 200e6);
//!
//! let mut map = Mapping::new();
//! map.assign(prod, cpu);
//! map.assign(cons, cpu);
//! map.validate(&app, &plat)?;
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod exec;
pub mod graph;
pub mod mapping;
pub mod platform;
pub mod qos;
pub mod queue;
pub mod task;
pub mod ychart;

pub use error::CoreError;
pub use exec::{ExecConfig, ExecReport, MappedSystemSim};
pub use graph::{ChannelId, ProcessGraph, ProcessId};
pub use mapping::Mapping;
pub use platform::{PeId, PeKind, Platform};
pub use qos::{QosReport, QosRequirement};
pub use queue::FiniteQueue;
pub use task::{TaskGraph, TaskId};
pub use ychart::{DesignConstraints, DesignPoint, ParetoFront};
