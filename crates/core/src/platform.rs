//! Heterogeneous platform (architecture) model.
//!
//! §1 of the paper: "generic design platforms consist of fixed processing
//! resources (e.g. ASICs) and programmable resources (e.g. general-purpose
//! or DSP processors) that can co-operate and run the target application".
//! A [`Platform`] is a bag of [`ProcessingElement`]s, each with a kind,
//! a set of voltage/frequency operating points (for DVFS, §4) and a
//! simple power model.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Identifier of a processing element within a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeId(pub(crate) usize);

impl PeId {
    /// The PE's index within its platform.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The class of a processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PeKind {
    /// General-purpose processor (possibly with multimedia ISA extensions).
    Gpp,
    /// Digital signal processor.
    Dsp,
    /// Fixed-function hardware block.
    Asic,
    /// Application-specific instruction-set processor (extensible core).
    Asip,
}

impl PeKind {
    /// Whether the element is programmable after fabrication.
    #[must_use]
    pub fn is_programmable(self) -> bool {
        !matches!(self, PeKind::Asic)
    }
}

/// A voltage/frequency operating point for DVFS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
}

impl OperatingPoint {
    /// Dynamic power at this point relative to `reference`, using the
    /// CMOS scaling law `P ∝ V² · f`.
    #[must_use]
    pub fn relative_power(&self, reference: &OperatingPoint) -> f64 {
        (self.voltage / reference.voltage).powi(2) * (self.frequency_hz / reference.frequency_hz)
    }
}

/// One processing element of the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessingElement {
    /// Human-readable name.
    pub name: String,
    /// Element class.
    pub kind: PeKind,
    /// Nominal clock frequency in Hz (the fastest operating point).
    pub frequency_hz: f64,
    /// Active power draw at the nominal point, in watts.
    pub active_power_w: f64,
    /// Idle power draw, in watts.
    pub idle_power_w: f64,
    /// Available DVFS operating points, fastest first. Always contains
    /// at least the nominal point.
    pub operating_points: Vec<OperatingPoint>,
}

impl ProcessingElement {
    /// Time to execute `cycles` at the nominal frequency, in seconds.
    #[must_use]
    pub fn exec_time_s(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz
    }

    /// Energy to execute `cycles` at the nominal point, in joules.
    #[must_use]
    pub fn exec_energy_j(&self, cycles: u64) -> f64 {
        self.exec_time_s(cycles) * self.active_power_w
    }
}

/// A heterogeneous multimedia platform.
///
/// # Examples
///
/// ```
/// use dms_core::platform::{PeKind, Platform};
///
/// let mut p = Platform::new("pda");
/// let cpu = p.add_pe("xscale", PeKind::Gpp, 400e6);
/// let dsp = p.add_pe("dsp", PeKind::Dsp, 200e6);
/// assert_eq!(p.pe_count(), 2);
/// assert!(p.pe(cpu).is_ok());
/// assert_ne!(cpu, dsp);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    pes: Vec<ProcessingElement>,
}

impl Platform {
    /// Creates an empty platform.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Platform {
            name: name.into(),
            pes: Vec::new(),
        }
    }

    /// The platform's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a PE with a default power model derived from its kind and
    /// frequency, returning its id.
    ///
    /// Power defaults (active, at nominal frequency): GPP 0.9 W/GHz,
    /// DSP 0.45 W/GHz, ASIP 0.30 W/GHz, ASIC 0.12 W/GHz — reflecting the
    /// performance-per-power ordering discussed in §3.
    pub fn add_pe(&mut self, name: impl Into<String>, kind: PeKind, frequency_hz: f64) -> PeId {
        let per_ghz = match kind {
            PeKind::Gpp => 0.9,
            PeKind::Dsp => 0.45,
            PeKind::Asip => 0.30,
            PeKind::Asic => 0.12,
        };
        let active = per_ghz * frequency_hz / 1e9;
        self.add_pe_with_power(name, kind, frequency_hz, active, active * 0.1)
    }

    /// Adds a PE with an explicit power model, returning its id.
    pub fn add_pe_with_power(
        &mut self,
        name: impl Into<String>,
        kind: PeKind,
        frequency_hz: f64,
        active_power_w: f64,
        idle_power_w: f64,
    ) -> PeId {
        let id = PeId(self.pes.len());
        self.pes.push(ProcessingElement {
            name: name.into(),
            kind,
            frequency_hz,
            active_power_w,
            idle_power_w,
            operating_points: vec![OperatingPoint {
                frequency_hz,
                voltage: 1.3,
            }],
        });
        id
    }

    /// Replaces a PE's DVFS operating points (fastest first).
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownPe`] if `pe` is not in the platform.
    /// * [`CoreError::InvalidParameter`] if `points` is empty.
    pub fn set_operating_points(
        &mut self,
        pe: PeId,
        points: Vec<OperatingPoint>,
    ) -> Result<(), CoreError> {
        if points.is_empty() {
            return Err(CoreError::InvalidParameter("operating_points"));
        }
        let elem = self.pes.get_mut(pe.0).ok_or(CoreError::UnknownPe(pe.0))?;
        elem.operating_points = points;
        Ok(())
    }

    /// Number of PEs.
    #[must_use]
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// Looks up a PE.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownPe`] for a stale or foreign id.
    pub fn pe(&self, id: PeId) -> Result<&ProcessingElement, CoreError> {
        self.pes.get(id.0).ok_or(CoreError::UnknownPe(id.0))
    }

    /// Iterates over `(id, element)` pairs.
    pub fn pes(&self) -> impl Iterator<Item = (PeId, &ProcessingElement)> {
        self.pes.iter().enumerate().map(|(i, p)| (PeId(i), p))
    }

    /// Whether `id` refers to a PE in this platform.
    #[must_use]
    pub fn contains(&self, id: PeId) -> bool {
        id.0 < self.pes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_defaults_order_by_kind() {
        let mut p = Platform::new("t");
        let gpp = p.add_pe("g", PeKind::Gpp, 1e9);
        let dsp = p.add_pe("d", PeKind::Dsp, 1e9);
        let asip = p.add_pe("x", PeKind::Asip, 1e9);
        let asic = p.add_pe("a", PeKind::Asic, 1e9);
        let pw = |id| p.pe(id).expect("exists").active_power_w;
        assert!(pw(gpp) > pw(dsp));
        assert!(pw(dsp) > pw(asip));
        assert!(pw(asip) > pw(asic));
    }

    #[test]
    fn exec_time_and_energy() {
        let mut p = Platform::new("t");
        let id = p.add_pe_with_power("cpu", PeKind::Gpp, 100e6, 2.0, 0.2);
        let pe = p.pe(id).expect("exists");
        assert!((pe.exec_time_s(100_000_000) - 1.0).abs() < 1e-12);
        assert!((pe.exec_energy_j(100_000_000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn operating_point_power_scaling() {
        let nominal = OperatingPoint {
            frequency_hz: 400e6,
            voltage: 1.3,
        };
        let half = OperatingPoint {
            frequency_hz: 200e6,
            voltage: 0.95,
        };
        let rel = half.relative_power(&nominal);
        // half frequency and ~73% voltage => well under half power
        assert!(rel < 0.5 && rel > 0.1, "rel = {rel}");
    }

    #[test]
    fn set_operating_points_validates() {
        let mut p = Platform::new("t");
        let id = p.add_pe("cpu", PeKind::Gpp, 400e6);
        assert_eq!(
            p.set_operating_points(id, vec![]),
            Err(CoreError::InvalidParameter("operating_points"))
        );
        assert_eq!(
            p.set_operating_points(
                PeId(9),
                vec![OperatingPoint {
                    frequency_hz: 1.0,
                    voltage: 1.0
                }]
            ),
            Err(CoreError::UnknownPe(9))
        );
        let pts = vec![
            OperatingPoint {
                frequency_hz: 400e6,
                voltage: 1.3,
            },
            OperatingPoint {
                frequency_hz: 200e6,
                voltage: 1.0,
            },
        ];
        p.set_operating_points(id, pts.clone()).expect("valid");
        assert_eq!(p.pe(id).expect("exists").operating_points, pts);
    }

    #[test]
    fn programmability() {
        assert!(PeKind::Gpp.is_programmable());
        assert!(PeKind::Asip.is_programmable());
        assert!(!PeKind::Asic.is_programmable());
    }

    #[test]
    fn contains_and_lookup() {
        let mut p = Platform::new("t");
        let id = p.add_pe("cpu", PeKind::Gpp, 1e6);
        assert!(p.contains(id));
        assert!(!p.contains(PeId(5)));
        assert!(p.pe(PeId(5)).is_err());
    }
}
