//! Mapping: binding application processes to platform resources.
//!
//! "Simply speaking, designing a multimedia system consists of mapping
//! the target application onto a given implementation architecture,
//! while satisfying a prescribed set of design constraints" (§2).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::graph::{ProcessGraph, ProcessId};
use crate::platform::{PeId, Platform};

/// An assignment of processes to processing elements.
///
/// Several processes may share one PE (they will then need a scheduler —
/// §2.1); a process is mapped to exactly one PE.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dms_core::CoreError> {
/// use dms_core::graph::ProcessGraph;
/// use dms_core::mapping::Mapping;
/// use dms_core::platform::{PeKind, Platform};
///
/// let mut g = ProcessGraph::new("app");
/// let p = g.add_process("p", 10);
/// let mut plat = Platform::new("plat");
/// let cpu = plat.add_pe("cpu", PeKind::Gpp, 1e9);
///
/// let mut m = Mapping::new();
/// m.assign(p, cpu);
/// m.validate(&g, &plat)?;
/// assert_eq!(m.pe_of(p), Some(cpu));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Mapping {
    assignment: HashMap<ProcessId, PeId>,
}

impl Mapping {
    /// Creates an empty mapping.
    #[must_use]
    pub fn new() -> Self {
        Mapping {
            assignment: HashMap::new(),
        }
    }

    /// Assigns (or re-assigns) `process` to `pe`.
    ///
    /// Returns the previous PE if the process was already mapped.
    pub fn assign(&mut self, process: ProcessId, pe: PeId) -> Option<PeId> {
        self.assignment.insert(process, pe)
    }

    /// The PE a process is mapped to, if any.
    #[must_use]
    pub fn pe_of(&self, process: ProcessId) -> Option<PeId> {
        self.assignment.get(&process).copied()
    }

    /// All processes mapped to `pe`, in process-id order.
    #[must_use]
    pub fn processes_on(&self, pe: PeId) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self
            .assignment
            .iter()
            .filter(|&(_, &p)| p == pe)
            .map(|(&proc, _)| proc)
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of mapped processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether nothing is mapped yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Checks that every process of `graph` is mapped to a PE that exists
    /// in `platform`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnmappedProcess`] for the first unmapped process.
    /// * [`CoreError::UnknownPe`] if an assignment targets a missing PE.
    pub fn validate(&self, graph: &ProcessGraph, platform: &Platform) -> Result<(), CoreError> {
        for (pid, _) in graph.processes() {
            match self.pe_of(pid) {
                None => return Err(CoreError::UnmappedProcess(pid.index())),
                Some(pe) if !platform.contains(pe) => return Err(CoreError::UnknownPe(pe.index())),
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Whether two communicating processes share a PE (communication is
    /// then local and effectively free) or cross PEs (communication costs
    /// energy and latency on the interconnect).
    #[must_use]
    pub fn is_local(&self, a: ProcessId, b: ProcessId) -> bool {
        match (self.pe_of(a), self.pe_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Iterates over `(process, pe)` pairs in process-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, PeId)> + '_ {
        let mut pairs: Vec<(ProcessId, PeId)> =
            self.assignment.iter().map(|(&p, &e)| (p, e)).collect();
        pairs.sort_unstable_by_key(|&(p, _)| p);
        pairs.into_iter()
    }
}

impl FromIterator<(ProcessId, PeId)> for Mapping {
    fn from_iter<I: IntoIterator<Item = (ProcessId, PeId)>>(iter: I) -> Self {
        Mapping {
            assignment: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PeKind;

    fn setup() -> (ProcessGraph, Platform, Vec<ProcessId>, Vec<PeId>) {
        let mut g = ProcessGraph::new("app");
        let ps = vec![
            g.add_process("a", 1),
            g.add_process("b", 1),
            g.add_process("c", 1),
        ];
        let mut plat = Platform::new("plat");
        let pes = vec![
            plat.add_pe("p0", PeKind::Gpp, 1e9),
            plat.add_pe("p1", PeKind::Dsp, 1e9),
        ];
        (g, plat, ps, pes)
    }

    #[test]
    fn validate_complete_mapping() {
        let (g, plat, ps, pes) = setup();
        let m: Mapping = vec![(ps[0], pes[0]), (ps[1], pes[0]), (ps[2], pes[1])]
            .into_iter()
            .collect();
        assert!(m.validate(&g, &plat).is_ok());
    }

    #[test]
    fn validate_flags_unmapped() {
        let (g, plat, ps, pes) = setup();
        let mut m = Mapping::new();
        m.assign(ps[0], pes[0]);
        assert!(matches!(
            m.validate(&g, &plat),
            Err(CoreError::UnmappedProcess(_))
        ));
    }

    #[test]
    fn validate_flags_unknown_pe() {
        let (g, plat, ps, _) = setup();
        let mut m = Mapping::new();
        for &p in &ps {
            m.assign(p, PeId(42));
        }
        assert_eq!(m.validate(&g, &plat), Err(CoreError::UnknownPe(42)));
    }

    #[test]
    fn reassign_returns_previous() {
        let (_, _, ps, pes) = setup();
        let mut m = Mapping::new();
        assert_eq!(m.assign(ps[0], pes[0]), None);
        assert_eq!(m.assign(ps[0], pes[1]), Some(pes[0]));
        assert_eq!(m.pe_of(ps[0]), Some(pes[1]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn locality() {
        let (_, _, ps, pes) = setup();
        let mut m = Mapping::new();
        m.assign(ps[0], pes[0]);
        m.assign(ps[1], pes[0]);
        m.assign(ps[2], pes[1]);
        assert!(m.is_local(ps[0], ps[1]));
        assert!(!m.is_local(ps[0], ps[2]));
        assert!(!m.is_local(ps[0], ProcessId(99)));
    }

    #[test]
    fn processes_on_pe_sorted() {
        let (_, _, ps, pes) = setup();
        let mut m = Mapping::new();
        m.assign(ps[2], pes[0]);
        m.assign(ps[0], pes[0]);
        assert_eq!(m.processes_on(pes[0]), vec![ps[0], ps[2]]);
        assert!(m.processes_on(pes[1]).is_empty());
    }

    #[test]
    fn iter_is_ordered() {
        let (_, _, ps, pes) = setup();
        let mut m = Mapping::new();
        m.assign(ps[1], pes[1]);
        m.assign(ps[0], pes[0]);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(ps[0], pes[0]), (ps[1], pes[1])]);
    }
}
