//! Quality-of-Service metrics and *soft* requirements.
//!
//! "QoS embraces all the non-functional properties of a system (e.g.
//! power consumption, latency, jitter, cost, etc.)" and multimedia
//! applications "are characterized by 'soft' rather than hard real-time
//! constraints and then they may tolerate a small percentage of missed
//! deadlines" (§2, §2.1). A [`QosRequirement`] therefore bounds each
//! metric *and* the tolerated deadline-miss ratio, and a [`QosReport`]
//! carries the measured values out of any evaluator in the workspace.

use serde::{Deserialize, Serialize};

/// Measured quality-of-service of one evaluated design point.
///
/// Produced by every simulator/evaluator in the workspace; consumed by
/// [`QosRequirement::check`] and the design-space explorer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosReport {
    /// Mean end-to-end latency in seconds.
    pub mean_latency_s: f64,
    /// Latency jitter (standard deviation) in seconds.
    pub jitter_s: f64,
    /// Fraction of tokens/packets lost in `[0, 1]`.
    pub loss_rate: f64,
    /// Delivered throughput in tokens (or packets) per second.
    pub throughput_per_s: f64,
    /// Total energy consumed in joules.
    pub energy_j: f64,
    /// Fraction of deadlines missed in `[0, 1]`.
    pub deadline_miss_ratio: f64,
}

impl QosReport {
    /// A report with every metric at its ideal value — useful as a
    /// starting point when accumulating.
    #[must_use]
    pub fn ideal() -> Self {
        QosReport {
            mean_latency_s: 0.0,
            jitter_s: 0.0,
            loss_rate: 0.0,
            throughput_per_s: f64::INFINITY,
            energy_j: 0.0,
            deadline_miss_ratio: 0.0,
        }
    }

    /// Average power in watts over `duration_s` seconds.
    ///
    /// Returns zero for a non-positive duration.
    #[must_use]
    pub fn average_power_w(&self, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            0.0
        } else {
            self.energy_j / duration_s
        }
    }
}

/// A soft QoS requirement: bounds on the metrics plus a tolerated
/// deadline-miss probability.
///
/// # Examples
///
/// ```
/// use dms_core::qos::{QosReport, QosRequirement};
///
/// let req = QosRequirement::new()
///     .max_latency_s(0.040)
///     .max_loss_rate(0.01)
///     .max_miss_ratio(0.05); // soft: 5% missed deadlines tolerated
///
/// let measured = QosReport {
///     mean_latency_s: 0.025,
///     jitter_s: 0.004,
///     loss_rate: 0.002,
///     throughput_per_s: 30.0,
///     energy_j: 1.2,
///     deadline_miss_ratio: 0.03,
/// };
/// assert!(req.check(&measured).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct QosRequirement {
    /// Upper bound on mean latency (seconds), if any.
    pub max_latency_s: Option<f64>,
    /// Upper bound on jitter (seconds), if any.
    pub max_jitter_s: Option<f64>,
    /// Upper bound on loss rate, if any.
    pub max_loss_rate: Option<f64>,
    /// Lower bound on throughput (per second), if any.
    pub min_throughput_per_s: Option<f64>,
    /// Upper bound on energy (joules), if any.
    pub max_energy_j: Option<f64>,
    /// Tolerated deadline-miss ratio (the "soft" in soft real-time), if any.
    pub max_miss_ratio: Option<f64>,
}

/// A QoS metric that failed its requirement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum QosViolation {
    /// Mean latency exceeded the bound (measured, bound).
    Latency(f64, f64),
    /// Jitter exceeded the bound (measured, bound).
    Jitter(f64, f64),
    /// Loss rate exceeded the bound (measured, bound).
    Loss(f64, f64),
    /// Throughput fell below the bound (measured, bound).
    Throughput(f64, f64),
    /// Energy exceeded the bound (measured, bound).
    Energy(f64, f64),
    /// Deadline-miss ratio exceeded the tolerance (measured, bound).
    MissRatio(f64, f64),
}

impl std::fmt::Display for QosViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QosViolation::Latency(m, b) => write!(f, "latency {m:.6}s exceeds bound {b:.6}s"),
            QosViolation::Jitter(m, b) => write!(f, "jitter {m:.6}s exceeds bound {b:.6}s"),
            QosViolation::Loss(m, b) => write!(f, "loss rate {m:.4} exceeds bound {b:.4}"),
            QosViolation::Throughput(m, b) => {
                write!(f, "throughput {m:.2}/s below bound {b:.2}/s")
            }
            QosViolation::Energy(m, b) => write!(f, "energy {m:.4}J exceeds bound {b:.4}J"),
            QosViolation::MissRatio(m, b) => {
                write!(f, "deadline-miss ratio {m:.4} exceeds tolerance {b:.4}")
            }
        }
    }
}

impl QosRequirement {
    /// A requirement with no bounds (everything passes).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds mean latency.
    #[must_use]
    pub fn max_latency_s(mut self, s: f64) -> Self {
        self.max_latency_s = Some(s);
        self
    }

    /// Bounds jitter.
    #[must_use]
    pub fn max_jitter_s(mut self, s: f64) -> Self {
        self.max_jitter_s = Some(s);
        self
    }

    /// Bounds loss rate.
    #[must_use]
    pub fn max_loss_rate(mut self, r: f64) -> Self {
        self.max_loss_rate = Some(r);
        self
    }

    /// Requires a minimum throughput.
    #[must_use]
    pub fn min_throughput_per_s(mut self, t: f64) -> Self {
        self.min_throughput_per_s = Some(t);
        self
    }

    /// Bounds total energy.
    #[must_use]
    pub fn max_energy_j(mut self, e: f64) -> Self {
        self.max_energy_j = Some(e);
        self
    }

    /// Sets the tolerated deadline-miss ratio.
    #[must_use]
    pub fn max_miss_ratio(mut self, r: f64) -> Self {
        self.max_miss_ratio = Some(r);
        self
    }

    /// Checks a measured report against the requirement.
    ///
    /// # Errors
    ///
    /// Returns the full list of violated metrics (never an empty list).
    pub fn check(&self, report: &QosReport) -> Result<(), Vec<QosViolation>> {
        let mut violations = Vec::new();
        if let Some(b) = self.max_latency_s {
            if report.mean_latency_s > b {
                violations.push(QosViolation::Latency(report.mean_latency_s, b));
            }
        }
        if let Some(b) = self.max_jitter_s {
            if report.jitter_s > b {
                violations.push(QosViolation::Jitter(report.jitter_s, b));
            }
        }
        if let Some(b) = self.max_loss_rate {
            if report.loss_rate > b {
                violations.push(QosViolation::Loss(report.loss_rate, b));
            }
        }
        if let Some(b) = self.min_throughput_per_s {
            if report.throughput_per_s < b {
                violations.push(QosViolation::Throughput(report.throughput_per_s, b));
            }
        }
        if let Some(b) = self.max_energy_j {
            if report.energy_j > b {
                violations.push(QosViolation::Energy(report.energy_j, b));
            }
        }
        if let Some(b) = self.max_miss_ratio {
            if report.deadline_miss_ratio > b {
                violations.push(QosViolation::MissRatio(report.deadline_miss_ratio, b));
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Media-type presets reflecting §2 of the paper: video wants high
    /// throughput but tolerates jitter and loss; audio is the opposite.
    #[must_use]
    pub fn video_stream(frame_rate: f64) -> Self {
        QosRequirement::new()
            .min_throughput_per_s(frame_rate)
            .max_loss_rate(0.02)
            .max_jitter_s(0.030)
            .max_miss_ratio(0.05)
    }

    /// Audio preset: low bandwidth but tight jitter and loss bounds (§2).
    #[must_use]
    pub fn audio_stream(packet_rate: f64) -> Self {
        QosRequirement::new()
            .min_throughput_per_s(packet_rate)
            .max_loss_rate(0.001)
            .max_jitter_s(0.005)
            .max_miss_ratio(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> QosReport {
        QosReport {
            mean_latency_s: 0.02,
            jitter_s: 0.002,
            loss_rate: 0.0005,
            throughput_per_s: 50.0,
            energy_j: 2.0,
            deadline_miss_ratio: 0.005,
        }
    }

    #[test]
    fn empty_requirement_passes_everything() {
        assert!(QosRequirement::new().check(&report()).is_ok());
    }

    #[test]
    fn each_bound_is_enforced() {
        let r = report();
        assert!(QosRequirement::new().max_latency_s(0.01).check(&r).is_err());
        assert!(QosRequirement::new().max_jitter_s(0.001).check(&r).is_err());
        assert!(QosRequirement::new()
            .max_loss_rate(0.0001)
            .check(&r)
            .is_err());
        assert!(QosRequirement::new()
            .min_throughput_per_s(100.0)
            .check(&r)
            .is_err());
        assert!(QosRequirement::new().max_energy_j(1.0).check(&r).is_err());
        assert!(QosRequirement::new()
            .max_miss_ratio(0.001)
            .check(&r)
            .is_err());
    }

    #[test]
    fn violations_accumulate() {
        let req = QosRequirement::new().max_latency_s(0.001).max_energy_j(0.1);
        let violations = req.check(&report()).expect_err("two violations");
        assert_eq!(violations.len(), 2);
        assert!(violations[0].to_string().contains("latency"));
    }

    #[test]
    fn boundary_values_pass() {
        let req = QosRequirement::new()
            .max_latency_s(0.02)
            .min_throughput_per_s(50.0);
        assert!(req.check(&report()).is_ok());
    }

    #[test]
    fn video_vs_audio_presets_reflect_media_asymmetry() {
        let video = QosRequirement::video_stream(30.0);
        let audio = QosRequirement::audio_stream(50.0);
        // Audio places tighter jitter and loss constraints (§2).
        assert!(audio.max_jitter_s.expect("set") < video.max_jitter_s.expect("set"));
        assert!(audio.max_loss_rate.expect("set") < video.max_loss_rate.expect("set"));
    }

    #[test]
    fn average_power() {
        let r = report();
        assert!((r.average_power_w(2.0) - 1.0).abs() < 1e-12);
        assert_eq!(r.average_power_w(0.0), 0.0);
    }

    #[test]
    fn ideal_report_passes_tight_bounds() {
        let req = QosRequirement::new()
            .max_latency_s(1e-9)
            .max_loss_rate(0.0)
            .min_throughput_per_s(1e12)
            .max_miss_ratio(0.0);
        assert!(req.check(&QosReport::ideal()).is_ok());
    }
}
