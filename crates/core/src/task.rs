//! Deadline-carrying task graphs for scheduling.
//!
//! §3.3's last design step "includes deciding on the assignment of tasks
//! and communication transactions onto different computation and
//! communication resources ... and fixing the order of their execution".
//! A [`TaskGraph`] is the DAG those schedulers (EDF baseline and the
//! energy-aware scheduler in `dms-noc`) consume: tasks carry a cycle
//! count and an absolute deadline; edges carry communication volumes.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Identifier of a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// The task's index within its graph.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from an index previously obtained via
    /// [`TaskId::index`]. The caller is responsible for pairing it with
    /// the right graph; lookups with a stale id fail with
    /// [`CoreError::UnknownTask`].
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        TaskId(index)
    }
}

/// One schedulable task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable name.
    pub name: String,
    /// Average-case execution demand in cycles.
    pub cycles: u64,
    /// Absolute deadline in seconds from graph release (soft; see
    /// [`crate::qos::QosRequirement::max_miss_ratio`]).
    pub deadline_s: f64,
}

/// A precedence edge with a communication payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dependency {
    /// The producing task.
    pub from: TaskId,
    /// The consuming task.
    pub to: TaskId,
    /// Data transferred once `from` completes, in bytes.
    pub bytes: u64,
}

/// A directed acyclic task graph.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dms_core::CoreError> {
/// use dms_core::task::TaskGraph;
///
/// let mut g = TaskGraph::new("pipeline");
/// let a = g.add_task("produce", 1_000, 0.01);
/// let b = g.add_task("consume", 2_000, 0.02);
/// g.add_dependency(a, b, 512)?;
/// let order = g.topological_order()?;
/// assert_eq!(order, vec![a, b]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
    deps: Vec<Dependency>,
}

impl TaskGraph {
    /// Creates an empty task graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraph {
            name: name.into(),
            tasks: Vec::new(),
            deps: Vec::new(),
        }
    }

    /// The graph's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, name: impl Into<String>, cycles: u64, deadline_s: f64) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            name: name.into(),
            cycles,
            deadline_s,
        });
        id
    }

    /// Adds a precedence edge carrying `bytes` of data.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] if either endpoint is missing.
    /// Cycle detection is deferred to [`TaskGraph::topological_order`]
    /// so graphs can be built incrementally.
    pub fn add_dependency(
        &mut self,
        from: TaskId,
        to: TaskId,
        bytes: u64,
    ) -> Result<(), CoreError> {
        self.check(from)?;
        self.check(to)?;
        self.deps.push(Dependency { from, to, bytes });
        Ok(())
    }

    /// Number of tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Looks up a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for a stale or foreign id.
    pub fn task(&self, id: TaskId) -> Result<&Task, CoreError> {
        self.tasks.get(id.0).ok_or(CoreError::UnknownTask(id.0))
    }

    /// Iterates over `(id, task)` pairs.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// All dependency edges.
    #[must_use]
    pub fn dependencies(&self) -> &[Dependency] {
        &self.deps
    }

    /// Direct predecessors of `t`.
    pub fn predecessors(&self, t: TaskId) -> impl Iterator<Item = &Dependency> {
        self.deps.iter().filter(move |d| d.to == t)
    }

    /// Direct successors of `t`.
    pub fn successors(&self, t: TaskId) -> impl Iterator<Item = &Dependency> {
        self.deps.iter().filter(move |d| d.from == t)
    }

    /// Kahn topological sort.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CyclicTaskGraph`] if the graph has a cycle.
    pub fn topological_order(&self) -> Result<Vec<TaskId>, CoreError> {
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        for d in &self.deps {
            indegree[d.to.0] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        // Pop smallest-id first for determinism.
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(TaskId(i));
            for d in self.deps.iter().filter(|d| d.from.0 == i) {
                indegree[d.to.0] -= 1;
                if indegree[d.to.0] == 0 {
                    // Insert keeping descending order so pop() yields ascending ids.
                    let pos = ready.partition_point(|&x| x > d.to.0);
                    ready.insert(pos, d.to.0);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(CoreError::CyclicTaskGraph)
        }
    }

    /// Length of the critical (longest) path in cycles, ignoring
    /// communication delays.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CyclicTaskGraph`] if the graph has a cycle.
    pub fn critical_path_cycles(&self) -> Result<u64, CoreError> {
        let order = self.topological_order()?;
        let mut finish = vec![0u64; self.tasks.len()];
        for t in order {
            let start = self
                .predecessors(t)
                .map(|d| finish[d.from.0])
                .max()
                .unwrap_or(0);
            finish[t.0] = start + self.tasks[t.0].cycles;
        }
        Ok(finish.into_iter().max().unwrap_or(0))
    }

    /// Sum of all task demands in cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.tasks.iter().map(|t| t.cycles).sum()
    }

    /// Sum of all communication payloads in bytes.
    #[must_use]
    pub fn total_comm_bytes(&self) -> u64 {
        self.deps.iter().map(|d| d.bytes).sum()
    }

    fn check(&self, id: TaskId) -> Result<(), CoreError> {
        if id.0 < self.tasks.len() {
            Ok(())
        } else {
            Err(CoreError::UnknownTask(id.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (TaskGraph, [TaskId; 3]) {
        let mut g = TaskGraph::new("chain");
        let a = g.add_task("a", 10, 1.0);
        let b = g.add_task("b", 20, 2.0);
        let c = g.add_task("c", 30, 3.0);
        g.add_dependency(a, b, 100).expect("valid");
        g.add_dependency(b, c, 200).expect("valid");
        (g, [a, b, c])
    }

    #[test]
    fn topo_order_of_chain() {
        let (g, [a, b, c]) = chain();
        assert_eq!(g.topological_order().expect("acyclic"), vec![a, b, c]);
    }

    #[test]
    fn topo_order_is_deterministic_for_parallel_tasks() {
        let mut g = TaskGraph::new("par");
        let ids: Vec<TaskId> = (0..5)
            .map(|i| g.add_task(format!("t{i}"), 1, 1.0))
            .collect();
        assert_eq!(g.topological_order().expect("acyclic"), ids);
    }

    #[test]
    fn cycle_is_detected() {
        let (mut g, [a, _, c]) = chain();
        g.add_dependency(c, a, 1).expect("endpoints valid");
        assert_eq!(g.topological_order(), Err(CoreError::CyclicTaskGraph));
        assert_eq!(g.critical_path_cycles(), Err(CoreError::CyclicTaskGraph));
    }

    #[test]
    fn critical_path_of_chain_is_sum() {
        let (g, _) = chain();
        assert_eq!(g.critical_path_cycles().expect("acyclic"), 60);
    }

    #[test]
    fn critical_path_of_diamond_takes_longer_branch() {
        let mut g = TaskGraph::new("diamond");
        let a = g.add_task("a", 10, 1.0);
        let fast = g.add_task("fast", 5, 1.0);
        let slow = g.add_task("slow", 50, 1.0);
        let d = g.add_task("d", 10, 1.0);
        g.add_dependency(a, fast, 1).expect("valid");
        g.add_dependency(a, slow, 1).expect("valid");
        g.add_dependency(fast, d, 1).expect("valid");
        g.add_dependency(slow, d, 1).expect("valid");
        assert_eq!(g.critical_path_cycles().expect("acyclic"), 70);
    }

    #[test]
    fn totals() {
        let (g, _) = chain();
        assert_eq!(g.total_cycles(), 60);
        assert_eq!(g.total_comm_bytes(), 300);
    }

    #[test]
    fn unknown_task_errors() {
        let (mut g, [a, _, _]) = chain();
        assert_eq!(
            g.add_dependency(a, TaskId(99), 1),
            Err(CoreError::UnknownTask(99))
        );
        assert!(g.task(TaskId(99)).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new("empty");
        assert!(g.topological_order().expect("trivially acyclic").is_empty());
        assert_eq!(g.critical_path_cycles().expect("acyclic"), 0);
    }
}
