//! Wireless channel models: path loss and slow fading.
//!
//! Substitutes for the measured indoor channels of \[27\] and the
//! time-varying links of \[26\]: a log-distance path-loss law plus an
//! AR(1) shadow-fading process in dB, which produces the slowly varying
//! SNR traces the adaptive transceiver policies react to.

use dms_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::error::WirelessError;

/// Log-distance path loss: `PL(d) = PL₀ + 10·n·log₁₀(d/d₀)` dB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLoss {
    /// Reference loss at `d₀ = 1 m`, in dB.
    pub pl0_db: f64,
    /// Path-loss exponent (2 free space, 3–4 indoor).
    pub exponent: f64,
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss {
            pl0_db: 40.0,
            exponent: 3.3,
        }
    }
}

impl PathLoss {
    /// Loss in dB at distance `d` metres (clamped below at 1 m).
    #[must_use]
    pub fn loss_db(&self, d: f64) -> f64 {
        self.pl0_db + 10.0 * self.exponent * d.max(1.0).log10()
    }
}

/// A slow-fading channel producing per-slot SNR values (dB):
/// `snr[t] = mean + shadow[t]` with `shadow` an AR(1) process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FadingChannel {
    /// Mean SNR in dB.
    pub mean_snr_db: f64,
    /// Standard deviation of the shadow fading, in dB.
    pub sigma_db: f64,
    /// AR(1) persistence in `[0, 1)`; near 1 = slow fading.
    pub persistence: f64,
}

impl FadingChannel {
    /// Creates a channel.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] for a negative sigma
    /// or persistence outside `[0, 1)`.
    pub fn new(mean_snr_db: f64, sigma_db: f64, persistence: f64) -> Result<Self, WirelessError> {
        if !(sigma_db.is_finite() && sigma_db >= 0.0) {
            return Err(WirelessError::InvalidParameter("sigma_db"));
        }
        if !(0.0..1.0).contains(&persistence) {
            return Err(WirelessError::InvalidParameter("persistence"));
        }
        if !mean_snr_db.is_finite() {
            return Err(WirelessError::InvalidParameter("mean_snr_db"));
        }
        Ok(FadingChannel {
            mean_snr_db,
            sigma_db,
            persistence,
        })
    }

    /// A typical indoor link: 28 dB mean gain-to-noise, 5 dB shadowing,
    /// slow fading.
    ///
    /// # Errors
    ///
    /// Never fails in practice; keeps the constructor signature uniform.
    pub fn indoor() -> Result<Self, WirelessError> {
        FadingChannel::new(28.0, 5.0, 0.95)
    }

    /// Generates `slots` per-slot SNR values in dB.
    #[must_use]
    pub fn snr_trace_db(&self, slots: usize, rng: &mut SimRng) -> Vec<f64> {
        // Stationary AR(1): innovations scaled so the marginal std is
        // sigma_db.
        let innov = self.sigma_db * (1.0 - self.persistence * self.persistence).sqrt();
        let mut shadow = rng.normal(0.0, self.sigma_db.max(1e-12));
        if self.sigma_db == 0.0 {
            shadow = 0.0;
        }
        (0..slots)
            .map(|_| {
                let snr = self.mean_snr_db + shadow;
                shadow = self.persistence * shadow
                    + if self.sigma_db > 0.0 {
                        rng.normal(0.0, innov)
                    } else {
                        0.0
                    };
                snr
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_grows_with_distance() {
        let pl = PathLoss::default();
        assert!(pl.loss_db(10.0) > pl.loss_db(2.0));
        assert_eq!(pl.loss_db(0.5), pl.loss_db(1.0)); // clamped
                                                      // 10× distance adds 10·n dB.
        assert!((pl.loss_db(10.0) - pl.loss_db(1.0) - 33.0).abs() < 1e-9);
    }

    #[test]
    fn channel_validation() {
        assert!(FadingChannel::new(10.0, -1.0, 0.9).is_err());
        assert!(FadingChannel::new(10.0, 3.0, 1.0).is_err());
        assert!(FadingChannel::new(f64::NAN, 3.0, 0.9).is_err());
    }

    #[test]
    fn trace_statistics_match_parameters() {
        let ch = FadingChannel::indoor().expect("preset valid");
        let trace = ch.snr_trace_db(50_000, &mut SimRng::new(3));
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        let var = trace.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / trace.len() as f64;
        assert!((mean - 28.0).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 5.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_constant() {
        let ch = FadingChannel::new(12.0, 0.0, 0.9).expect("valid");
        let trace = ch.snr_trace_db(100, &mut SimRng::new(4));
        assert!(trace.iter().all(|&s| (s - 12.0).abs() < 1e-9));
    }

    #[test]
    fn fading_is_persistent() {
        let ch = FadingChannel::indoor().expect("preset valid");
        let trace = ch.snr_trace_db(20_000, &mut SimRng::new(5));
        // Lag-1 autocorrelation should be near the persistence.
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        let var = trace.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / trace.len() as f64;
        let cov = trace
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (trace.len() - 1) as f64;
        let rho = cov / var;
        assert!((rho - 0.95).abs() < 0.03, "lag-1 correlation {rho}");
    }

    #[test]
    fn deterministic_per_seed() {
        let ch = FadingChannel::indoor().expect("preset valid");
        let a = ch.snr_trace_db(64, &mut SimRng::new(9));
        let b = ch.snr_trace_db(64, &mut SimRng::new(9));
        assert_eq!(a, b);
    }
}
