//! Error type for the wireless substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by wireless models and optimisers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WirelessError {
    /// A probability parameter fell outside `[0, 1]`.
    InvalidProbability(&'static str, f64),
    /// A numeric parameter was out of its valid range.
    InvalidParameter(&'static str),
    /// No feasible configuration meets the quality constraint.
    Infeasible(&'static str),
}

impl fmt::Display for WirelessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WirelessError::InvalidProbability(name, v) => {
                write!(f, "probability `{name}` = {v} is outside [0, 1]")
            }
            WirelessError::InvalidParameter(name) => {
                write!(f, "parameter `{name}` is out of range")
            }
            WirelessError::Infeasible(what) => {
                write!(f, "no feasible configuration: {what}")
            }
        }
    }
}

impl Error for WirelessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_offender() {
        assert!(WirelessError::InvalidParameter("snr")
            .to_string()
            .contains("snr"));
        assert!(WirelessError::Infeasible("ber target")
            .to_string()
            .contains("ber"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<WirelessError>();
    }
}
