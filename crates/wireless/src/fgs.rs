//! Energy-aware MPEG-4 FGS streaming — experiment E8.
//!
//! After \[28\]: "a low energy MPEG-4 FGS streaming policy using a
//! client-feedback method ... the client decoding aptitude in each
//! timeslot is communicated to the server, and the server subsequently
//! determines the additional amount of data in the form of enhancement
//! layers on top of the MPEG-4 base layer. ... a video streaming system
//! that maintains this normalized load at unity produces the optimum
//! video quality with no energy waste. ... the authors report an average
//! of 15% communication energy reduction in the client."
//!
//! Two policies over the same [`dms_media::fgs`] stream:
//!
//! * [`StreamingPolicy::FullRate`] — the server pushes every enhancement
//!   bit; the client runs at maximum frequency and discards whatever it
//!   cannot decode before the frame deadline (received ≠ useful);
//! * [`StreamingPolicy::ClientFeedback`] — the client reports its
//!   decoding aptitude, the server truncates the enhancement layer to
//!   exactly that amount, and the client DVFS-scales so its normalised
//!   decoding load sits at unity.

use dms_media::fgs::FgsFrame;
use serde::{Deserialize, Serialize};

use crate::dvfs::DvfsCpu;
use crate::error::WirelessError;

/// The streaming policy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamingPolicy {
    /// Server sends everything; client decodes at maximum frequency and
    /// drops the excess.
    FullRate,
    /// Client-feedback truncation + DVFS at unit normalised load.
    ClientFeedback,
}

/// Outcome of streaming one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FgsStreamReport {
    /// Frames streamed.
    pub frames: usize,
    /// Mean delivered PSNR, dB.
    pub mean_psnr_db: f64,
    /// Client communication (receive) energy, joules.
    pub comm_energy_j: f64,
    /// Client computation (decode) energy, joules.
    pub compute_energy_j: f64,
    /// Mean normalised decoding load (decode time / slot time).
    pub mean_normalized_load: f64,
    /// Bits received by the client.
    pub bits_received: u64,
    /// Bits received but never decoded (FullRate waste).
    pub bits_wasted: u64,
}

impl FgsStreamReport {
    /// Total client energy.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.comm_energy_j + self.compute_energy_j
    }
}

/// The client/server streaming model.
#[derive(Debug, Clone, PartialEq)]
pub struct FgsStreamer {
    cpu: DvfsCpu,
    /// Client receive energy per bit, joules.
    rx_energy_per_bit_j: f64,
    /// Decode cost: fixed cycles per frame.
    cycles_per_frame: f64,
    /// Decode cost: cycles per received bit.
    cycles_per_bit: f64,
    /// Frame rate in frames per second.
    fps: f64,
}

impl FgsStreamer {
    /// Creates a streamer.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] for non-positive
    /// energies, costs or frame rate.
    pub fn new(
        cpu: DvfsCpu,
        rx_energy_per_bit_j: f64,
        cycles_per_frame: f64,
        cycles_per_bit: f64,
        fps: f64,
    ) -> Result<Self, WirelessError> {
        if !(rx_energy_per_bit_j.is_finite() && rx_energy_per_bit_j > 0.0) {
            return Err(WirelessError::InvalidParameter("rx_energy_per_bit_j"));
        }
        if !(cycles_per_frame.is_finite() && cycles_per_frame >= 0.0) {
            return Err(WirelessError::InvalidParameter("cycles_per_frame"));
        }
        if !(cycles_per_bit.is_finite() && cycles_per_bit > 0.0) {
            return Err(WirelessError::InvalidParameter("cycles_per_bit"));
        }
        if !(fps.is_finite() && fps > 0.0) {
            return Err(WirelessError::InvalidParameter("fps"));
        }
        Ok(FgsStreamer {
            cpu,
            rx_energy_per_bit_j,
            cycles_per_frame,
            cycles_per_bit,
            fps,
        })
    }

    /// An XScale-class client at 30 fps with 0.2 nJ/bit receive energy.
    ///
    /// The decode-cost constants put the client's full-speed aptitude at
    /// roughly 85% of a typical frame's total bits, which is what makes
    /// full-rate streaming wasteful.
    ///
    /// # Errors
    ///
    /// Never fails in practice; keeps the constructor signature uniform.
    pub fn xscale_client() -> Result<Self, WirelessError> {
        FgsStreamer::new(DvfsCpu::xscale()?, 0.2e-9, 2.0e6, 450.0, 30.0)
    }

    /// Bits the client can decode in one slot at CPU frequency `hz`.
    #[must_use]
    pub fn aptitude_bits(&self, hz: f64) -> u64 {
        let slot_s = 1.0 / self.fps;
        let budget = hz * slot_s - self.cycles_per_frame;
        (budget / self.cycles_per_bit).max(0.0) as u64
    }

    /// Streams `frames` under `policy`.
    #[must_use]
    pub fn stream(&self, frames: &[FgsFrame], policy: StreamingPolicy) -> FgsStreamReport {
        let slot_s = 1.0 / self.fps;
        let max = self.cpu.max_point();
        let max_aptitude = self.aptitude_bits(max.frequency_hz);
        let mut psnr_sum = 0.0;
        let mut comm = 0.0;
        let mut compute = 0.0;
        let mut load_sum = 0.0;
        let mut received = 0u64;
        let mut wasted = 0u64;
        for f in frames {
            match policy {
                StreamingPolicy::FullRate => {
                    // Everything arrives; decoding is capped by the
                    // full-speed aptitude.
                    let rx = f.total_bits();
                    let decodable = rx.min(max_aptitude.max(f.base_bits));
                    let (_, psnr) = f.truncate_to(decodable);
                    psnr_sum += psnr;
                    comm += rx as f64 * self.rx_energy_per_bit_j;
                    let cycles = self.cycles_per_frame + decodable as f64 * self.cycles_per_bit;
                    compute += cycles * self.cpu.energy_per_cycle_j(max);
                    load_sum += (cycles / max.frequency_hz) / slot_s;
                    received += rx;
                    wasted += rx - decodable;
                }
                StreamingPolicy::ClientFeedback => {
                    // Feedback: server truncates to the client's
                    // full-speed aptitude; client then picks the slowest
                    // DVFS point that decodes it in time (normalised
                    // load → 1).
                    let target = max_aptitude.max(f.base_bits);
                    let (rx, psnr) = f.truncate_to(target);
                    psnr_sum += psnr;
                    comm += rx as f64 * self.rx_energy_per_bit_j;
                    let cycles = self.cycles_per_frame + rx as f64 * self.cycles_per_bit;
                    let point = self
                        .cpu
                        .slowest_feasible(cycles.ceil() as u64, slot_s)
                        .unwrap_or(max);
                    compute += cycles * self.cpu.energy_per_cycle_j(point);
                    load_sum += (cycles / point.frequency_hz) / slot_s;
                    received += rx;
                }
            }
        }
        let n = frames.len().max(1) as f64;
        FgsStreamReport {
            frames: frames.len(),
            mean_psnr_db: psnr_sum / n,
            comm_energy_j: comm,
            compute_energy_j: compute,
            mean_normalized_load: load_sum / n,
            bits_received: received,
            bits_wasted: wasted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dms_media::fgs::FgsEncoder;
    use dms_media::trace_gen::VideoTraceGenerator;
    use dms_sim::SimRng;

    fn frames(n: usize) -> Vec<FgsFrame> {
        let gen = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let enc = FgsEncoder::streaming_default().expect("preset valid");
        enc.encode(&gen, n, &mut SimRng::new(21))
    }

    fn streamer() -> FgsStreamer {
        FgsStreamer::xscale_client().expect("preset valid")
    }

    #[test]
    fn validation() {
        let cpu = DvfsCpu::xscale().expect("preset valid");
        assert!(FgsStreamer::new(cpu.clone(), 0.0, 1.0, 1.0, 30.0).is_err());
        assert!(FgsStreamer::new(cpu.clone(), 1e-9, -1.0, 1.0, 30.0).is_err());
        assert!(FgsStreamer::new(cpu.clone(), 1e-9, 1.0, 0.0, 30.0).is_err());
        assert!(FgsStreamer::new(cpu, 1e-9, 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn aptitude_grows_with_frequency() {
        let s = streamer();
        assert!(s.aptitude_bits(800e6) > s.aptitude_bits(400e6));
        assert_eq!(s.aptitude_bits(0.0), 0);
    }

    #[test]
    fn equal_quality_between_policies() {
        let s = streamer();
        let fs = frames(300);
        let full = s.stream(&fs, StreamingPolicy::FullRate);
        let smart = s.stream(&fs, StreamingPolicy::ClientFeedback);
        // The client decodes the same bits either way, so quality matches.
        assert!(
            (full.mean_psnr_db - smart.mean_psnr_db).abs() < 1e-9,
            "{} vs {}",
            full.mean_psnr_db,
            smart.mean_psnr_db
        );
    }

    #[test]
    fn headline_fifteen_percent_comm_saving() {
        // E8: ≈15% client communication-energy reduction at equal
        // quality. Band 8–30% allows for trace variability.
        let s = streamer();
        let fs = frames(1000);
        let full = s.stream(&fs, StreamingPolicy::FullRate);
        let smart = s.stream(&fs, StreamingPolicy::ClientFeedback);
        let saving = 1.0 - smart.comm_energy_j / full.comm_energy_j;
        assert!(
            (0.08..=0.30).contains(&saving),
            "comm saving {:.1}% outside band",
            saving * 100.0
        );
    }

    #[test]
    fn feedback_also_saves_compute_via_dvfs() {
        let s = streamer();
        let fs = frames(300);
        let full = s.stream(&fs, StreamingPolicy::FullRate);
        let smart = s.stream(&fs, StreamingPolicy::ClientFeedback);
        assert!(smart.compute_energy_j <= full.compute_energy_j);
    }

    #[test]
    fn normalized_load_moves_towards_unity() {
        let s = streamer();
        let fs = frames(300);
        let full = s.stream(&fs, StreamingPolicy::FullRate);
        let smart = s.stream(&fs, StreamingPolicy::ClientFeedback);
        // Feedback + DVFS pushes the load to (just under) 1; full rate at
        // max frequency leaves it lower.
        assert!(smart.mean_normalized_load <= 1.0 + 1e-9);
        assert!(smart.mean_normalized_load > full.mean_normalized_load);
    }

    #[test]
    fn no_waste_under_feedback() {
        let s = streamer();
        let fs = frames(100);
        let full = s.stream(&fs, StreamingPolicy::FullRate);
        let smart = s.stream(&fs, StreamingPolicy::ClientFeedback);
        assert!(full.bits_wasted > 0, "full-rate should over-send");
        assert_eq!(smart.bits_wasted, 0);
        assert!(smart.bits_received < full.bits_received);
    }

    #[test]
    fn empty_session_is_benign() {
        let s = streamer();
        let r = s.stream(&[], StreamingPolicy::ClientFeedback);
        assert_eq!(r.frames, 0);
        assert_eq!(r.total_energy_j(), 0.0);
    }
}
