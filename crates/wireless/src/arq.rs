//! Retransmission (ARQ) energetics and optimal packet sizing.
//!
//! §2.1: at the highest level of abstraction "one can decide ... the
//! best rate for the source, how much retransmission can be afforded".
//! This module prices those decisions: given a bit-error rate, a packet
//! either survives (probability `(1−BER)^L`) or is retransmitted up to
//! a cap. Longer packets amortise the header but die more often — so
//! the energy per *delivered payload bit* has an interior optimum in
//! the packet length, the wireless twin of the NoC packet-size
//! exploration (E4).

use serde::{Deserialize, Serialize};

use crate::error::WirelessError;
use crate::modulation::Modulation;
use crate::transceiver::Transceiver;

/// A stop-and-wait ARQ configuration over a given link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArqLink {
    /// Per-bit error probability after demodulation/decoding.
    pub ber: f64,
    /// Header + trailer overhead per packet, bits.
    pub header_bits: u64,
    /// Maximum transmissions per packet (1 = no retransmission).
    pub max_transmissions: u32,
}

impl ArqLink {
    /// Creates a link.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidProbability`] for a BER outside
    /// `[0, 1)`, or [`WirelessError::InvalidParameter`] for a zero
    /// transmission cap.
    pub fn new(ber: f64, header_bits: u64, max_transmissions: u32) -> Result<Self, WirelessError> {
        if !(0.0..1.0).contains(&ber) {
            return Err(WirelessError::InvalidProbability("ber", ber));
        }
        if max_transmissions == 0 {
            return Err(WirelessError::InvalidParameter("max_transmissions"));
        }
        Ok(ArqLink {
            ber,
            header_bits,
            max_transmissions,
        })
    }

    /// Probability one transmission of a packet with `payload_bits`
    /// payload arrives intact: `(1−BER)^(payload+header)`.
    #[must_use]
    pub fn packet_success(&self, payload_bits: u64) -> f64 {
        (1.0 - self.ber).powi((payload_bits + self.header_bits).min(i32::MAX as u64) as i32)
    }

    /// Probability the packet is delivered within the transmission cap:
    /// `1 − (1−s)^k`.
    #[must_use]
    pub fn delivery_probability(&self, payload_bits: u64) -> f64 {
        let s = self.packet_success(payload_bits);
        1.0 - (1.0 - s).powi(self.max_transmissions as i32)
    }

    /// Expected transmissions per packet attempt (capped geometric):
    /// `Σ_{i=1..k} i·(1−s)^{i−1}·s + k·(1−s)^k`.
    #[must_use]
    pub fn expected_transmissions(&self, payload_bits: u64) -> f64 {
        let s = self.packet_success(payload_bits);
        if s <= 0.0 {
            return f64::from(self.max_transmissions);
        }
        let k = self.max_transmissions as i32;
        let q = 1.0 - s;
        // Closed form: (1 − q^k)/s, the mean of a geometric truncated at k.
        (1.0 - q.powi(k)) / s
    }

    /// Expected radio energy per *delivered payload bit*, joules:
    ///
    /// ```text
    /// E[tx] · (payload+header) · e_bit / (payload · P[delivered])
    /// ```
    ///
    /// Returns `f64::INFINITY` when delivery is (numerically) impossible.
    #[must_use]
    pub fn energy_per_delivered_bit_j(
        &self,
        payload_bits: u64,
        radio: &Transceiver,
        modulation: Modulation,
        tx_power_w: f64,
    ) -> f64 {
        if payload_bits == 0 {
            return f64::INFINITY;
        }
        let delivered = self.delivery_probability(payload_bits);
        if delivered <= 0.0 {
            return f64::INFINITY;
        }
        let e_bit = radio.energy_per_bit_j(modulation, tx_power_w);
        let bits_per_attempt = (payload_bits + self.header_bits) as f64;
        self.expected_transmissions(payload_bits) * bits_per_attempt * e_bit
            / (payload_bits as f64 * delivered)
    }

    /// Sweeps packet sizes and returns the payload length minimising the
    /// energy per delivered bit, together with that energy.
    ///
    /// The sweep is geometric between `min_bits` and `max_bits`
    /// (inclusive), matching how MAC layers actually quantise sizes.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] if the range is empty.
    pub fn optimal_payload_bits(
        &self,
        radio: &Transceiver,
        modulation: Modulation,
        tx_power_w: f64,
        min_bits: u64,
        max_bits: u64,
    ) -> Result<(u64, f64), WirelessError> {
        if min_bits == 0 || min_bits > max_bits {
            return Err(WirelessError::InvalidParameter("payload range"));
        }
        let mut best: Option<(u64, f64)> = None;
        let mut size = min_bits;
        while size <= max_bits {
            let e = self.energy_per_delivered_bit_j(size, radio, modulation, tx_power_w);
            if best.is_none_or(|(_, be)| e < be) {
                best = Some((size, e));
            }
            // ~12% geometric steps hit the interesting structure without
            // an exhaustive scan.
            size = (size + size / 8).max(size + 1);
        }
        best.ok_or(WirelessError::InvalidParameter("payload range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radio() -> Transceiver {
        Transceiver::default_radio().expect("preset valid")
    }

    #[test]
    fn validation() {
        assert!(ArqLink::new(1.0, 64, 3).is_err());
        assert!(ArqLink::new(-0.1, 64, 3).is_err());
        assert!(ArqLink::new(1e-4, 64, 0).is_err());
        assert!(ArqLink::new(0.0, 64, 1).is_ok());
    }

    #[test]
    fn perfect_link_costs_exactly_one_transmission() {
        let link = ArqLink::new(0.0, 64, 5).expect("valid");
        assert_eq!(link.packet_success(1000), 1.0);
        assert_eq!(link.delivery_probability(1000), 1.0);
        assert_eq!(link.expected_transmissions(1000), 1.0);
        let e = link.energy_per_delivered_bit_j(1000, &radio(), Modulation::Qpsk, 0.1);
        let raw = radio().energy_per_bit_j(Modulation::Qpsk, 0.1);
        // Only the header overhead inflates the per-payload-bit cost.
        assert!((e / raw - 1064.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn longer_packets_fail_more() {
        let link = ArqLink::new(1e-4, 64, 4).expect("valid");
        assert!(link.packet_success(10_000) < link.packet_success(1_000));
        assert!(link.expected_transmissions(10_000) > link.expected_transmissions(1_000));
    }

    #[test]
    fn retransmission_cap_bounds_delivery() {
        let link1 = ArqLink::new(5e-4, 64, 1).expect("valid");
        let link4 = ArqLink::new(5e-4, 64, 4).expect("valid");
        let payload = 4_000;
        assert!(link4.delivery_probability(payload) > link1.delivery_probability(payload));
        assert!(link4.delivery_probability(payload) <= 1.0);
        // Expected transmissions stay within the cap.
        assert!(link4.expected_transmissions(payload) <= 4.0);
        assert!(link4.expected_transmissions(payload) >= 1.0);
    }

    #[test]
    fn packet_size_has_an_interior_optimum() {
        // With a 64-bit header and BER 1e-4, tiny packets waste header
        // energy and huge packets waste retransmissions: the optimum is
        // strictly inside the sweep.
        let link = ArqLink::new(1e-4, 64, 8).expect("valid");
        let (best, e_best) = link
            .optimal_payload_bits(&radio(), Modulation::Qpsk, 0.1, 16, 1 << 20)
            .expect("non-empty range");
        assert!(best > 16, "optimum {best} stuck at the minimum");
        assert!(best < 1 << 20, "optimum {best} stuck at the maximum");
        let e_small = link.energy_per_delivered_bit_j(16, &radio(), Modulation::Qpsk, 0.1);
        let e_large = link.energy_per_delivered_bit_j(1 << 20, &radio(), Modulation::Qpsk, 0.1);
        assert!(e_best < e_small && e_best < e_large);
    }

    #[test]
    fn optimum_shrinks_on_noisier_links() {
        let clean = ArqLink::new(1e-5, 64, 8).expect("valid");
        let noisy = ArqLink::new(1e-3, 64, 8).expect("valid");
        let r = radio();
        let (best_clean, _) = clean
            .optimal_payload_bits(&r, Modulation::Qpsk, 0.1, 16, 1 << 20)
            .expect("valid range");
        let (best_noisy, _) = noisy
            .optimal_payload_bits(&r, Modulation::Qpsk, 0.1, 16, 1 << 20)
            .expect("valid range");
        assert!(
            best_noisy < best_clean,
            "noisy link optimum {best_noisy} should be below clean {best_clean}"
        );
    }

    #[test]
    fn range_validation() {
        let link = ArqLink::new(1e-4, 64, 4).expect("valid");
        let r = radio();
        assert!(link
            .optimal_payload_bits(&r, Modulation::Qpsk, 0.1, 0, 100)
            .is_err());
        assert!(link
            .optimal_payload_bits(&r, Modulation::Qpsk, 0.1, 200, 100)
            .is_err());
    }

    #[test]
    fn zero_payload_is_infinite_cost() {
        let link = ArqLink::new(1e-4, 64, 4).expect("valid");
        assert!(link
            .energy_per_delivered_bit_j(0, &radio(), Modulation::Qpsk, 0.1)
            .is_infinite());
    }
}
