//! # dms-wireless — wireless networking substrate
//!
//! §4 of the paper: battery-powered multimedia systems spend their
//! energy on *computation* (scaled by DVFS) and *communication* (scaled
//! by modulation level, transmit power and codec complexity). This
//! crate implements those trade-offs:
//!
//! * [`modulation`] — BPSK/QPSK/16-QAM/64-QAM with closed-form
//!   BER-vs-SNR curves ("different modulation schemes result in
//!   different BER vs. received SNR characteristics");
//! * [`channel`] — log-distance path loss and a slow-fading SNR trace
//!   generator;
//! * [`arq`] — retransmission energetics and optimal packet sizing
//!   (§2.1's "how much retransmission can be afforded");
//! * [`fec`] — a convolutional-code-style model trading coding gain
//!   against decoder complexity (the base-band knob of §4);
//! * [`transceiver`] — the transceiver energy model and the **dynamic
//!   modulation/power scaling policy** of \[26\] (experiment E6, ≈12%
//!   energy reduction);
//! * [`dvfs`] — an XScale-class DVFS processor model \[24\]\[28\];
//! * [`jscc`] — **joint source-channel coding** for image transmission
//!   \[27\] (experiment E7, ≈60% energy saving);
//! * [`fgs`] — **energy-aware MPEG-4 FGS streaming** with client
//!   feedback and the normalised-decoding-load rule \[28\] (experiment
//!   E8, ≈15% client communication-energy reduction).
//!
//! ## Example
//!
//! Pick the cheapest modulation/power pair for a 10⁻⁵ BER at 20 dB
//! channel gain-to-noise:
//!
//! ```
//! use dms_wireless::transceiver::{AdaptivePolicy, Transceiver};
//!
//! # fn main() -> Result<(), dms_wireless::WirelessError> {
//! let radio = Transceiver::default_radio()?;
//! let policy = AdaptivePolicy::new(1e-5)?;
//! let choice = policy.choose(&radio, 20.0).expect("feasible at 20 dB");
//! assert!(choice.energy_j > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod arq;
pub mod channel;
pub mod dvfs;
pub mod error;
pub mod fec;
pub mod fgs;
pub mod jscc;
pub mod modulation;
pub mod transceiver;

pub use arq::ArqLink;
pub use channel::{FadingChannel, PathLoss};
pub use dvfs::DvfsCpu;
pub use error::WirelessError;
pub use fec::FecScheme;
pub use fgs::{FgsStreamReport, FgsStreamer, StreamingPolicy};
pub use jscc::{JsccOptimizer, JsccReport};
pub use modulation::Modulation;
pub use transceiver::{AdaptivePolicy, Transceiver, TxChoice};
