//! Dynamic voltage and frequency scaling (DVFS) processor model.
//!
//! "The computation energy is usually a strong function of the CPU clock
//! frequency of the multimedia system, which may be varied by using
//! methods such as dynamic voltage and frequency scaling" (§4, \[24\]).
//! The operating points below follow the XScale-class processor used in
//! the \[28\] testbed; energy per cycle scales as `V²`.

use serde::{Deserialize, Serialize};

use crate::error::WirelessError;

/// One frequency/voltage operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsPoint {
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
}

/// A DVFS-capable CPU with discrete operating points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsCpu {
    points: Vec<DvfsPoint>,
    /// Effective switched capacitance in farads (energy/cycle = C·V²).
    capacitance_f: f64,
}

impl DvfsCpu {
    /// An XScale-class preset: 150/400/600/800 MHz at 0.75/1.0/1.3/1.6 V
    /// with 1 nF effective switched capacitance.
    ///
    /// # Errors
    ///
    /// Never fails in practice; keeps the constructor signature uniform.
    pub fn xscale() -> Result<Self, WirelessError> {
        DvfsCpu::new(
            vec![
                DvfsPoint {
                    frequency_hz: 150e6,
                    voltage: 0.75,
                },
                DvfsPoint {
                    frequency_hz: 400e6,
                    voltage: 1.0,
                },
                DvfsPoint {
                    frequency_hz: 600e6,
                    voltage: 1.3,
                },
                DvfsPoint {
                    frequency_hz: 800e6,
                    voltage: 1.6,
                },
            ],
            1e-9,
        )
    }

    /// Creates a CPU from operating points (any order; they are sorted
    /// by frequency).
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] for an empty point
    /// list, non-positive frequencies/voltages, or a non-positive
    /// capacitance.
    pub fn new(mut points: Vec<DvfsPoint>, capacitance_f: f64) -> Result<Self, WirelessError> {
        if points.is_empty() {
            return Err(WirelessError::InvalidParameter("points"));
        }
        for p in &points {
            if !(p.frequency_hz.is_finite() && p.frequency_hz > 0.0) {
                return Err(WirelessError::InvalidParameter("frequency_hz"));
            }
            if !(p.voltage.is_finite() && p.voltage > 0.0) {
                return Err(WirelessError::InvalidParameter("voltage"));
            }
        }
        if !(capacitance_f.is_finite() && capacitance_f > 0.0) {
            return Err(WirelessError::InvalidParameter("capacitance_f"));
        }
        points.sort_by(|a, b| {
            a.frequency_hz
                .partial_cmp(&b.frequency_hz)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(DvfsCpu {
            points,
            capacitance_f,
        })
    }

    /// The operating points, slowest first.
    #[must_use]
    pub fn points(&self) -> &[DvfsPoint] {
        &self.points
    }

    /// The fastest operating point.
    #[must_use]
    pub fn max_point(&self) -> DvfsPoint {
        *self.points.last().expect("non-empty by construction")
    }

    /// Energy of one cycle at `point`, in joules (`C·V²`).
    #[must_use]
    pub fn energy_per_cycle_j(&self, point: DvfsPoint) -> f64 {
        self.capacitance_f * point.voltage * point.voltage
    }

    /// Power at `point`, in watts (`C·V²·f`).
    #[must_use]
    pub fn power_w(&self, point: DvfsPoint) -> f64 {
        self.energy_per_cycle_j(point) * point.frequency_hz
    }

    /// The slowest point that still delivers `cycles` within
    /// `deadline_s` seconds, or `None` if even the fastest cannot.
    #[must_use]
    pub fn slowest_feasible(&self, cycles: u64, deadline_s: f64) -> Option<DvfsPoint> {
        if deadline_s <= 0.0 {
            return None;
        }
        let required_hz = cycles as f64 / deadline_s;
        self.points
            .iter()
            .copied()
            .find(|p| p.frequency_hz >= required_hz)
    }

    /// Energy to execute `cycles` at `point`, joules.
    #[must_use]
    pub fn execution_energy_j(&self, cycles: u64, point: DvfsPoint) -> f64 {
        cycles as f64 * self.energy_per_cycle_j(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> DvfsCpu {
        DvfsCpu::xscale().expect("preset valid")
    }

    #[test]
    fn validation() {
        assert!(DvfsCpu::new(vec![], 1e-9).is_err());
        assert!(DvfsCpu::new(
            vec![DvfsPoint {
                frequency_hz: 0.0,
                voltage: 1.0
            }],
            1e-9
        )
        .is_err());
        assert!(DvfsCpu::new(
            vec![DvfsPoint {
                frequency_hz: 1e6,
                voltage: -1.0
            }],
            1e-9
        )
        .is_err());
        assert!(DvfsCpu::new(
            vec![DvfsPoint {
                frequency_hz: 1e6,
                voltage: 1.0
            }],
            0.0
        )
        .is_err());
    }

    #[test]
    fn points_sorted_and_max() {
        let c = cpu();
        let freqs: Vec<f64> = c.points().iter().map(|p| p.frequency_hz).collect();
        assert!(freqs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(c.max_point().frequency_hz, 800e6);
    }

    #[test]
    fn energy_scales_with_v_squared() {
        let c = cpu();
        let slow = c.points()[0];
        let fast = c.max_point();
        let ratio = c.energy_per_cycle_j(fast) / c.energy_per_cycle_j(slow);
        let expected = (1.6f64 / 0.75).powi(2);
        assert!((ratio - expected).abs() < 1e-9);
    }

    #[test]
    fn slowest_feasible_picks_minimum() {
        let c = cpu();
        // 300e6 cycles in 1 s → 400 MHz point.
        let p = c.slowest_feasible(300_000_000, 1.0).expect("feasible");
        assert_eq!(p.frequency_hz, 400e6);
        // 100e6 cycles in 1 s → 150 MHz point.
        let p = c.slowest_feasible(100_000_000, 1.0).expect("feasible");
        assert_eq!(p.frequency_hz, 150e6);
        // Impossible deadline.
        assert!(c.slowest_feasible(1_000_000_000, 0.5).is_none());
        assert!(c.slowest_feasible(1, 0.0).is_none());
    }

    #[test]
    fn running_slower_saves_energy_for_same_work() {
        let c = cpu();
        let cycles = 100_000_000;
        let slow = c.execution_energy_j(cycles, c.points()[0]);
        let fast = c.execution_energy_j(cycles, c.max_point());
        assert!(slow < fast * 0.3, "slow {slow}, fast {fast}");
    }
}
