//! Modulation schemes and their BER-vs-SNR characteristics.
//!
//! §4: "The first category of techniques, which focus on the pass-band
//! transceiver, exploits the fact that different modulation schemes
//! result in different BER vs. received signal-to-noise ratio (SNR)
//! characteristics. The key trade-off is thus between the modulation
//! and/or power levels and the BER."
//!
//! Standard AWGN closed forms: BPSK/QPSK `BER = Q(√(2γ_b))`; square
//! M-QAM `BER ≈ (4/log₂M)(1−1/√M) · Q(√(3·log₂M·γ_b/(M−1)))` with
//! `γ_b` the per-bit SNR.

use serde::{Deserialize, Serialize};

/// The Gaussian tail function `Q(x) = ½·erfc(x/√2)`.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (|error| < 1.5·10⁻⁷), which is ample for BER work.
#[must_use]
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function via Abramowitz–Stegun 7.1.26.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// A digital modulation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Modulation {
    /// Binary phase-shift keying (1 bit/symbol).
    Bpsk,
    /// Quadrature phase-shift keying (2 bits/symbol).
    Qpsk,
    /// 16-point quadrature amplitude modulation (4 bits/symbol).
    Qam16,
    /// 64-point quadrature amplitude modulation (6 bits/symbol).
    Qam64,
}

impl Modulation {
    /// All schemes from most robust to fastest.
    pub const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    /// Bits carried per symbol.
    #[must_use]
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Constellation size `M`.
    #[must_use]
    pub fn constellation(self) -> u32 {
        1 << self.bits_per_symbol()
    }

    /// Bit-error rate on an AWGN channel at per-bit SNR `gamma_b`
    /// (linear, not dB). Clamped to `[0, 0.5]`.
    #[must_use]
    pub fn ber(self, gamma_b: f64) -> f64 {
        if gamma_b <= 0.0 {
            return 0.5;
        }
        let ber = match self {
            Modulation::Bpsk | Modulation::Qpsk => q_function((2.0 * gamma_b).sqrt()),
            m => {
                let k = f64::from(m.bits_per_symbol());
                let big_m = f64::from(m.constellation());
                let coef = 4.0 / k * (1.0 - 1.0 / big_m.sqrt());
                coef * q_function((3.0 * k * gamma_b / (big_m - 1.0)).sqrt())
            }
        };
        ber.clamp(0.0, 0.5)
    }

    /// The smallest per-bit SNR (linear) achieving `target_ber`, found
    /// by bisection. Returns `None` for unattainable targets (≤ 0) or a
    /// trivial target (≥ 0.5 needs no signal).
    ///
    /// The bisection result depends only on `(self, target_ber)`, and
    /// adaptive-modulation traces ask the same question once per slot
    /// per scheme, so results are memoised per thread. The cache is
    /// thread-local rather than shared to keep parallel replications
    /// lock-free; each worker pays the bisection at most once per key.
    #[must_use]
    pub fn required_gamma_b(self, target_ber: f64) -> Option<f64> {
        use std::cell::RefCell;
        use std::collections::HashMap;

        thread_local! {
            static GAMMA_B_CACHE: RefCell<HashMap<(Modulation, u64), Option<f64>>> =
                RefCell::new(HashMap::new());
        }
        GAMMA_B_CACHE.with(|cache| {
            *cache
                .borrow_mut()
                .entry((self, target_ber.to_bits()))
                .or_insert_with(|| self.bisect_gamma_b(target_ber))
        })
    }

    /// Uncached bisection behind [`Modulation::required_gamma_b`].
    fn bisect_gamma_b(self, target_ber: f64) -> Option<f64> {
        if target_ber <= 0.0 {
            return None;
        }
        if target_ber >= 0.5 {
            return Some(0.0);
        }
        let mut lo = 1e-6;
        let mut hi = 1e8;
        if self.ber(hi) > target_ber {
            return None;
        }
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if self.ber(mid) > target_ber {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    }
}

/// Converts decibels to a linear ratio.
#[must_use]
pub fn db_to_linear(db: f64) -> f64 {
    10.0f64.powf(db / 10.0)
}

/// Converts a linear ratio to decibels.
#[must_use]
pub fn linear_to_db(x: f64) -> f64 {
    10.0 * x.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-4);
        assert!((q_function(3.0) - 0.001_35).abs() < 1e-4);
        assert!(q_function(-1.0) > 0.8);
    }

    #[test]
    fn bpsk_reference_ber() {
        // At γ_b = 10 dB BPSK gives BER ≈ 3.9e-6 (textbook value).
        let ber = Modulation::Bpsk.ber(db_to_linear(10.0));
        assert!((ber / 3.9e-6 - 1.0).abs() < 0.2, "ber {ber}");
    }

    #[test]
    fn ber_decreases_with_snr() {
        for m in Modulation::ALL {
            let mut last = 0.5;
            for db in [0.0, 5.0, 10.0, 15.0, 20.0, 25.0] {
                let ber = m.ber(db_to_linear(db));
                assert!(ber <= last + 1e-15, "{m:?} at {db} dB");
                last = ber;
            }
        }
    }

    #[test]
    fn denser_constellations_need_more_snr() {
        let snr = db_to_linear(12.0);
        assert!(Modulation::Qpsk.ber(snr) < Modulation::Qam16.ber(snr));
        assert!(Modulation::Qam16.ber(snr) < Modulation::Qam64.ber(snr));
    }

    #[test]
    fn zero_snr_is_coin_flip() {
        for m in Modulation::ALL {
            assert_eq!(m.ber(0.0), 0.5);
            assert_eq!(m.ber(-1.0), 0.5);
        }
    }

    #[test]
    fn required_gamma_achieves_target() {
        for m in Modulation::ALL {
            for target in [1e-3, 1e-5, 1e-7] {
                let g = m.required_gamma_b(target).expect("achievable");
                assert!(m.ber(g) <= target * 1.01, "{m:?} target {target}");
                // Not grossly over-provisioned either.
                assert!(m.ber(g * 0.8) > target, "{m:?} bisection too loose");
            }
        }
    }

    #[test]
    fn required_gamma_ordering() {
        // Denser constellations need more per-bit SNR at the same BER.
        let target = 1e-5;
        let g: Vec<f64> = Modulation::ALL
            .iter()
            .map(|m| m.required_gamma_b(target).expect("achievable"))
            .collect();
        assert!(g[1] <= g[2] && g[2] < g[3]);
    }

    #[test]
    fn required_gamma_edge_cases() {
        assert_eq!(Modulation::Bpsk.required_gamma_b(0.0), None);
        assert_eq!(Modulation::Bpsk.required_gamma_b(0.5), Some(0.0));
    }

    #[test]
    fn required_gamma_cache_is_transparent() {
        // The memoised entry must be bit-identical to a fresh bisection,
        // including a repeat call served from the cache.
        for m in Modulation::ALL {
            for target in [1e-2, 1e-4, 1e-6, 0.0, 0.5, -1.0] {
                let fresh = m.bisect_gamma_b(target);
                assert_eq!(m.required_gamma_b(target), fresh, "{m:?} target {target}");
                assert_eq!(m.required_gamma_b(target), fresh, "{m:?} cached repeat");
            }
        }
    }

    #[test]
    fn db_round_trip() {
        for db in [-10.0, 0.0, 3.0, 20.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
    }
}
