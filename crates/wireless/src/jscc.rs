//! Joint source-channel coding for image transmission — experiment E7.
//!
//! After \[27\]: "an energy-optimized image transmission system for indoor
//! wireless applications that exploits the variations in the image data
//! and the wireless multi-path channel ... a global optimization problem
//! is solved ... This results in an average of 60% energy saving for
//! different channel conditions."
//!
//! The global optimisation couples three knobs per transmitted image:
//! the **quantiser rate** (bits/pixel — more bits, better source PSNR,
//! more energy), the **FEC scheme** (coding gain vs. decoder work and
//! bandwidth expansion) and the **transmit power** (residual BER vs. PA
//! energy). [`JsccOptimizer`] finds the minimum-energy triple that
//! delivers a target PSNR at the current channel state; the baseline is
//! the same optimiser run once for the *worst-case* channel and then
//! frozen.

use dms_media::image::{ImageModel, QuantizerChoice};
use serde::{Deserialize, Serialize};

use crate::error::WirelessError;
use crate::fec::FecScheme;
use crate::modulation::{db_to_linear, Modulation};
use crate::transceiver::Transceiver;

/// Energy constants of the encoding/decoding hardware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecEnergy {
    /// Energy of one source-encoder operation, joules.
    pub enc_op_j: f64,
    /// Source-encoder operations per pixel.
    pub enc_ops_per_pixel: f64,
    /// Energy of one Viterbi add-compare-select, joules.
    pub acs_op_j: f64,
}

impl Default for CodecEnergy {
    fn default() -> Self {
        CodecEnergy {
            enc_op_j: 0.25e-9,
            enc_ops_per_pixel: 20.0,
            acs_op_j: 0.4e-9,
        }
    }
}

/// One evaluated JSCC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JsccChoice {
    /// Source rate in bits/pixel.
    pub bits_per_pixel: f64,
    /// FEC scheme.
    pub fec: FecScheme,
    /// Radiated power, W.
    pub tx_power_w: f64,
    /// Delivered PSNR, dB.
    pub psnr_db: f64,
    /// Total system energy (encode + FEC + transmit + decode), joules.
    pub energy_j: f64,
}

/// Per-trace comparison of adaptive JSCC against the worst-case design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsccReport {
    /// Energy of the per-state optimum, summed over the trace.
    pub adaptive_energy_j: f64,
    /// Energy of the frozen worst-case design over the same trace.
    pub fixed_energy_j: f64,
    /// Channel states where no configuration met the PSNR target.
    pub infeasible_states: usize,
    /// States evaluated.
    pub states: usize,
}

impl JsccReport {
    /// Fractional energy saving of adaptive over fixed.
    #[must_use]
    pub fn saving(&self) -> f64 {
        if self.fixed_energy_j <= 0.0 {
            0.0
        } else {
            1.0 - self.adaptive_energy_j / self.fixed_energy_j
        }
    }
}

/// The joint source-channel optimiser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JsccOptimizer {
    image: ImageModel,
    radio: Transceiver,
    codec: CodecEnergy,
    /// Fixed modulation (QPSK — the robust workhorse; the adaptive
    /// *modulation* study is experiment E6).
    modulation: Modulation,
    target_psnr_db: f64,
}

/// Candidate source rates swept by the optimiser.
const BPP_GRID: [f64; 7] = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0];

impl JsccOptimizer {
    /// Creates an optimiser for `image` with a delivered-PSNR target.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] for a non-positive
    /// PSNR target.
    pub fn new(
        image: ImageModel,
        radio: Transceiver,
        target_psnr_db: f64,
    ) -> Result<Self, WirelessError> {
        if !(target_psnr_db.is_finite() && target_psnr_db > 0.0) {
            return Err(WirelessError::InvalidParameter("target_psnr_db"));
        }
        Ok(JsccOptimizer {
            image,
            radio,
            codec: CodecEnergy::default(),
            modulation: Modulation::Qpsk,
            target_psnr_db,
        })
    }

    /// Evaluates one `(bpp, fec, power)` triple at channel gain
    /// `gain_db`; returns `None` if the PSNR target is missed.
    #[must_use]
    pub fn evaluate(
        &self,
        bpp: f64,
        fec: FecScheme,
        tx_power_w: f64,
        gain_db: f64,
    ) -> Option<JsccChoice> {
        let q = QuantizerChoice::new(bpp).ok()?;
        let g = db_to_linear(gain_db);
        let b = f64::from(self.modulation.bits_per_symbol());
        // Per-bit SNR with FEC: energy per *coded* bit is spread, but
        // coding gain more than recovers it at the decoder.
        let gamma_b = tx_power_w * g / b * fec.rate() * db_to_linear(fec.coding_gain_db());
        let residual_ber = self.modulation.ber(gamma_b);
        let psnr = self.image.psnr_with_errors_db(q, residual_ber);
        if psnr < self.target_psnr_db {
            return None;
        }
        let info_bits = self.image.encoded_bits(q) as f64;
        let tx_bits = info_bits * fec.expansion();
        let e_encode =
            self.image.pixels() as f64 * self.codec.enc_ops_per_pixel * self.codec.enc_op_j;
        let e_fec = info_bits * fec.decoder_energy_per_bit_j(self.codec.acs_op_j);
        let e_tx = tx_bits * self.radio.energy_per_bit_j(self.modulation, tx_power_w);
        Some(JsccChoice {
            bits_per_pixel: bpp,
            fec,
            tx_power_w,
            psnr_db: psnr,
            energy_j: e_encode + e_fec + e_tx,
        })
    }

    /// Finds the minimum-energy feasible configuration at the given
    /// channel state (grid over bpp × FEC, bisection over power).
    #[must_use]
    pub fn optimize(&self, gain_db: f64) -> Option<JsccChoice> {
        let mut best: Option<JsccChoice> = None;
        for &bpp in &BPP_GRID {
            for fec in FecScheme::ALL {
                // Minimal feasible power by bisection (PSNR is monotone
                // in power through the residual BER).
                let p_max = self.radio.max_tx_power_w;
                if self.evaluate(bpp, fec, p_max, gain_db).is_none() {
                    continue;
                }
                let mut lo = 1e-9;
                let mut hi = p_max;
                for _ in 0..60 {
                    let mid = (lo * hi).sqrt();
                    if self.evaluate(bpp, fec, mid, gain_db).is_some() {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                let choice = self
                    .evaluate(bpp, fec, hi, gain_db)
                    .expect("hi stays feasible");
                if best.as_ref().is_none_or(|b| choice.energy_j < b.energy_j) {
                    best = Some(choice);
                }
            }
        }
        best
    }

    /// Runs the E7 comparison over a channel trace: per-state optimum
    /// versus the worst-case design frozen across all states.
    #[must_use]
    pub fn compare_over_trace(&self, gains_db: &[f64]) -> JsccReport {
        let worst = gains_db.iter().copied().fold(f64::INFINITY, f64::min);
        let fixed = self.optimize(worst);
        let mut adaptive = 0.0;
        let mut fixed_total = 0.0;
        let mut infeasible = 0;
        for &g in gains_db {
            match self.optimize(g) {
                Some(c) => adaptive += c.energy_j,
                None => infeasible += 1,
            }
            // The frozen design spends the same energy regardless of the
            // actual state (it was provisioned for the worst one).
            if let Some(f) = &fixed {
                fixed_total += f.energy_j;
            }
        }
        JsccReport {
            adaptive_energy_j: adaptive,
            fixed_energy_j: fixed_total,
            infeasible_states: infeasible,
            states: gains_db.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::FadingChannel;
    use dms_sim::SimRng;

    fn optimizer() -> JsccOptimizer {
        let image = ImageModel::new(256, 256, 2500.0).expect("valid");
        let radio = Transceiver::default_radio().expect("preset valid");
        JsccOptimizer::new(image, radio, 32.0).expect("valid target")
    }

    #[test]
    fn validation() {
        let image = ImageModel::new(16, 16, 100.0).expect("valid");
        let radio = Transceiver::default_radio().expect("preset valid");
        assert!(JsccOptimizer::new(image, radio, 0.0).is_err());
        assert!(JsccOptimizer::new(image, radio, f64::NAN).is_err());
    }

    #[test]
    fn evaluate_rejects_low_quality() {
        let o = optimizer();
        // Tiny power in a bad channel: residual BER wrecks the image.
        assert!(o.evaluate(4.0, FecScheme::None, 1e-6, 0.0).is_none());
        // Too coarse a quantiser can never reach 32 dB PSNR.
        assert!(o.evaluate(2.0, FecScheme::None, 0.2, 40.0).is_none());
        // Enough source bits + ample power in a good channel: feasible.
        assert!(o.evaluate(4.0, FecScheme::None, 0.2, 40.0).is_some());
    }

    #[test]
    fn optimum_exists_in_reasonable_channels() {
        let o = optimizer();
        let c = o.optimize(20.0).expect("feasible at 20 dB");
        assert!(c.psnr_db >= 32.0);
        assert!(c.energy_j > 0.0);
        assert!(c.tx_power_w <= 0.4);
    }

    #[test]
    fn bad_channels_need_more_energy() {
        let o = optimizer();
        let good = o.optimize(30.0).expect("feasible");
        let bad = o.optimize(14.0).expect("feasible");
        assert!(bad.energy_j > good.energy_j);
    }

    #[test]
    fn fec_pays_off_in_bad_channels() {
        let o = optimizer();
        let bad = o.optimize(12.0).expect("feasible with coding");
        assert!(
            bad.fec != FecScheme::None,
            "at 12 dB the optimiser should reach for FEC, got {:?}",
            bad.fec
        );
    }

    #[test]
    fn headline_sixty_percent_saving() {
        // E7: ≈60% average energy saving across channel conditions vs a
        // worst-case design. We assert the saving is large (>35%) and
        // the comparison well-formed.
        let o = optimizer();
        let ch = FadingChannel::new(22.0, 3.0, 0.9).expect("valid");
        let trace = ch.snr_trace_db(300, &mut SimRng::new(13));
        let report = o.compare_over_trace(&trace);
        assert_eq!(report.infeasible_states, 0);
        let s = report.saving();
        assert!(s > 0.35, "saving {:.1}% too small", s * 100.0);
        assert!(s < 0.95, "saving {:.1}% implausibly large", s * 100.0);
    }

    #[test]
    fn adaptive_never_loses() {
        let o = optimizer();
        let trace = vec![14.0, 18.0, 22.0, 26.0, 30.0];
        let report = o.compare_over_trace(&trace);
        assert!(report.adaptive_energy_j <= report.fixed_energy_j * 1.0001);
    }
}
