//! Forward error correction: coding gain versus decoder complexity.
//!
//! §4's second category "studies the interaction between code
//! performance and encoder/decoder design complexity. The key trade-off
//! is between the complexity of the encoding/decoding algorithms and
//! the BER." We model a family of convolutional codes indexed by
//! constraint length: longer constraint lengths buy coding gain (dB)
//! at exponentially growing Viterbi decoder work (states = 2^(K−1)).

use serde::{Deserialize, Serialize};

/// A convolutional-code configuration (rate-1/2 family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FecScheme {
    /// No coding.
    None,
    /// Constraint length 3 (4-state Viterbi).
    K3,
    /// Constraint length 5 (16-state Viterbi).
    K5,
    /// Constraint length 7 (64-state Viterbi, the 802.11 classic).
    K7,
    /// Constraint length 9 (256-state Viterbi).
    K9,
}

impl FecScheme {
    /// All schemes from cheapest to strongest.
    pub const ALL: [FecScheme; 5] = [
        FecScheme::None,
        FecScheme::K3,
        FecScheme::K5,
        FecScheme::K7,
        FecScheme::K9,
    ];

    /// Constraint length `K` (0 for no coding).
    #[must_use]
    pub fn constraint_length(self) -> u32 {
        match self {
            FecScheme::None => 0,
            FecScheme::K3 => 3,
            FecScheme::K5 => 5,
            FecScheme::K7 => 7,
            FecScheme::K9 => 9,
        }
    }

    /// Asymptotic coding gain in dB at BER ≈ 10⁻⁵ (textbook values for
    /// rate-1/2 soft-decision Viterbi).
    #[must_use]
    pub fn coding_gain_db(self) -> f64 {
        match self {
            FecScheme::None => 0.0,
            FecScheme::K3 => 3.3,
            FecScheme::K5 => 4.6,
            FecScheme::K7 => 5.8,
            FecScheme::K9 => 6.7,
        }
    }

    /// Code rate: information bits per transmitted bit.
    #[must_use]
    pub fn rate(self) -> f64 {
        match self {
            FecScheme::None => 1.0,
            _ => 0.5,
        }
    }

    /// Bandwidth expansion: transmitted bits per information bit.
    #[must_use]
    pub fn expansion(self) -> f64 {
        1.0 / self.rate()
    }

    /// Viterbi decoder work in add-compare-select operations per
    /// information bit (`2^(K−1)` states, one ACS each).
    #[must_use]
    pub fn decoder_ops_per_bit(self) -> u64 {
        match self.constraint_length() {
            0 => 0,
            k => 1 << (k - 1),
        }
    }

    /// Decoder energy per information bit, in joules, given the energy
    /// of one ACS operation.
    #[must_use]
    pub fn decoder_energy_per_bit_j(self, acs_energy_j: f64) -> f64 {
        self.decoder_ops_per_bit() as f64 * acs_energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_grows_with_constraint_length() {
        let mut last = -1.0;
        for s in FecScheme::ALL {
            assert!(s.coding_gain_db() > last);
            last = s.coding_gain_db();
        }
    }

    #[test]
    fn decoder_work_is_exponential() {
        assert_eq!(FecScheme::None.decoder_ops_per_bit(), 0);
        assert_eq!(FecScheme::K3.decoder_ops_per_bit(), 4);
        assert_eq!(FecScheme::K7.decoder_ops_per_bit(), 64);
        assert_eq!(FecScheme::K9.decoder_ops_per_bit(), 256);
    }

    #[test]
    fn rate_and_expansion() {
        assert_eq!(FecScheme::None.expansion(), 1.0);
        assert_eq!(FecScheme::K7.expansion(), 2.0);
        assert!((FecScheme::K5.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn decoder_energy_scales_with_ops() {
        let e = 1e-12;
        assert_eq!(FecScheme::None.decoder_energy_per_bit_j(e), 0.0);
        assert!(
            FecScheme::K9.decoder_energy_per_bit_j(e) > FecScheme::K3.decoder_energy_per_bit_j(e)
        );
    }
}
