//! Transceiver energy model and dynamic modulation/power scaling.
//!
//! Experiment E6, after \[26\]: "the modulation level and transmit power
//! of the transmitter ... are dynamically changed to match the
//! characteristics of the communication channel thereby minimizing the
//! energy consumption of the transceivers. Experimental results show an
//! average of 12% reduction in the overall energy consumption of the
//! transceivers without any appreciable performance penalty."
//!
//! The model: transmitting `B` bits with modulation `m` (b bits/symbol)
//! at symbol rate `R_s` takes `B/(b·R_s)` seconds and burns
//! `(P_elec + P_tx/η)` watts over that airtime. The received per-bit
//! SNR is `γ_b = P_tx · g / b` where `g` is the channel gain-to-noise
//! (linear). The policy picks `(m, P_tx)` per slot to meet a BER target
//! at minimum energy; the baseline provisions one fixed pair for the
//! worst slot.

use serde::{Deserialize, Serialize};

use crate::error::WirelessError;
use crate::modulation::{db_to_linear, Modulation};

/// Transceiver hardware parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transceiver {
    /// Symbol rate in symbols per second.
    pub symbol_rate_hz: f64,
    /// Electronics power while transmitting (mixers, filters, PLL), W.
    pub electronics_w: f64,
    /// Power-amplifier drain efficiency in `(0, 1]`.
    pub pa_efficiency: f64,
    /// Maximum radiated power, W.
    pub max_tx_power_w: f64,
}

impl Transceiver {
    /// A short-range-radio preset (1 Msym/s, 300 mW transmit-chain
    /// electronics, 35% PA efficiency, 400 mW maximum radiated power).
    ///
    /// # Errors
    ///
    /// Never fails in practice; keeps the constructor signature uniform.
    pub fn default_radio() -> Result<Self, WirelessError> {
        Transceiver::new(1e6, 0.3, 0.35, 0.4)
    }

    /// Creates a transceiver.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] for non-positive
    /// rates/powers or an efficiency outside `(0, 1]`.
    pub fn new(
        symbol_rate_hz: f64,
        electronics_w: f64,
        pa_efficiency: f64,
        max_tx_power_w: f64,
    ) -> Result<Self, WirelessError> {
        if !(symbol_rate_hz.is_finite() && symbol_rate_hz > 0.0) {
            return Err(WirelessError::InvalidParameter("symbol_rate_hz"));
        }
        if !(electronics_w.is_finite() && electronics_w >= 0.0) {
            return Err(WirelessError::InvalidParameter("electronics_w"));
        }
        if !(pa_efficiency > 0.0 && pa_efficiency <= 1.0) {
            return Err(WirelessError::InvalidParameter("pa_efficiency"));
        }
        if !(max_tx_power_w.is_finite() && max_tx_power_w > 0.0) {
            return Err(WirelessError::InvalidParameter("max_tx_power_w"));
        }
        Ok(Transceiver {
            symbol_rate_hz,
            electronics_w,
            pa_efficiency,
            max_tx_power_w,
        })
    }

    /// Energy to send one bit with modulation `m` at radiated power
    /// `tx_power_w`, in joules.
    #[must_use]
    pub fn energy_per_bit_j(&self, m: Modulation, tx_power_w: f64) -> f64 {
        let airtime = 1.0 / (f64::from(m.bits_per_symbol()) * self.symbol_rate_hz);
        (self.electronics_w + tx_power_w / self.pa_efficiency) * airtime
    }
}

/// A per-slot transmission decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxChoice {
    /// Chosen modulation.
    pub modulation: Modulation,
    /// Radiated power in W.
    pub tx_power_w: f64,
    /// Energy per information bit, joules.
    pub energy_j: f64,
}

/// The dynamic modulation/power scaling policy of \[26\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    target_ber: f64,
}

impl AdaptivePolicy {
    /// Creates a policy with a BER target in `(0, 0.5)`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidProbability`] otherwise.
    pub fn new(target_ber: f64) -> Result<Self, WirelessError> {
        if !(target_ber > 0.0 && target_ber < 0.5) {
            return Err(WirelessError::InvalidProbability("target_ber", target_ber));
        }
        Ok(AdaptivePolicy { target_ber })
    }

    /// The BER target.
    #[must_use]
    pub fn target_ber(&self) -> f64 {
        self.target_ber
    }

    /// Minimum radiated power for modulation `m` to meet the BER target
    /// at channel gain-to-noise `gain_db`, or `None` if it exceeds the
    /// radio's maximum.
    #[must_use]
    pub fn required_power_w(
        &self,
        radio: &Transceiver,
        m: Modulation,
        gain_db: f64,
    ) -> Option<f64> {
        let g = db_to_linear(gain_db);
        let gamma_b = m.required_gamma_b(self.target_ber)?;
        let p = gamma_b * f64::from(m.bits_per_symbol()) / g;
        (p <= radio.max_tx_power_w).then_some(p)
    }

    /// The cheapest feasible `(modulation, power)` pair at the given
    /// channel state, or `None` when even BPSK at maximum power misses
    /// the BER target.
    #[must_use]
    pub fn choose(&self, radio: &Transceiver, gain_db: f64) -> Option<TxChoice> {
        Modulation::ALL
            .iter()
            .filter_map(|&m| {
                let p = self.required_power_w(radio, m, gain_db)?;
                Some(TxChoice {
                    modulation: m,
                    tx_power_w: p,
                    energy_j: radio.energy_per_bit_j(m, p),
                })
            })
            .min_by(|a, b| {
                a.energy_j
                    .partial_cmp(&b.energy_j)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// The fixed baseline: the single best modulation for the whole
    /// trace, with standard per-slot power control. (Power control is
    /// assumed in both schemes; *modulation scaling* is the \[26\]
    /// contribution being measured.)
    ///
    /// Only modulations that meet the BER target in at least 95% of the
    /// slots are admissible — a fixed scheme that routinely misses its
    /// QoS would never be deployed. Falls back to BPSK if nothing
    /// qualifies. Infeasible slots transmit at maximum power.
    #[must_use]
    pub fn best_fixed_modulation(&self, radio: &Transceiver, gains_db: &[f64]) -> Modulation {
        let n = gains_db.len().max(1) as f64;
        Modulation::ALL
            .iter()
            .copied()
            .filter(|&m| {
                let feasible = gains_db
                    .iter()
                    .filter(|&&g| self.required_power_w(radio, m, g).is_some())
                    .count() as f64;
                feasible / n >= 0.95
            })
            .min_by(|&a, &b| {
                let ea = self.fixed_trace_energy(radio, a, gains_db);
                let eb = self.fixed_trace_energy(radio, b, gains_db);
                ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(Modulation::Bpsk)
    }

    /// Per-bit trace energy of one fixed modulation with per-slot power
    /// control (maximum power in infeasible slots).
    fn fixed_trace_energy(&self, radio: &Transceiver, m: Modulation, gains_db: &[f64]) -> f64 {
        gains_db
            .iter()
            .map(|&g| {
                let p = self
                    .required_power_w(radio, m, g)
                    .unwrap_or(radio.max_tx_power_w);
                radio.energy_per_bit_j(m, p)
            })
            .sum()
    }
}

/// Outcome of simulating both schemes over a channel trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptationReport {
    /// Total adaptive-scheme energy, joules.
    pub adaptive_energy_j: f64,
    /// Total fixed-scheme energy, joules.
    pub fixed_energy_j: f64,
    /// Slots where even the adaptive scheme could not meet the target.
    pub adaptive_outages: usize,
    /// Slots simulated.
    pub slots: usize,
}

impl AdaptationReport {
    /// Fractional energy saving of adaptive over fixed.
    #[must_use]
    pub fn saving(&self) -> f64 {
        if self.fixed_energy_j <= 0.0 {
            0.0
        } else {
            1.0 - self.adaptive_energy_j / self.fixed_energy_j
        }
    }
}

/// Simulates both schemes sending `bits_per_slot` bits in every slot of
/// `gains_db` (experiment E6's apparatus).
///
/// The fixed scheme uses the single best modulation for the trace with
/// per-slot power control; the adaptive scheme additionally scales the
/// modulation. In outage slots both transmit BPSK at maximum power
/// (best effort).
#[must_use]
pub fn compare_over_trace(
    radio: &Transceiver,
    policy: &AdaptivePolicy,
    gains_db: &[f64],
    bits_per_slot: u64,
) -> AdaptationReport {
    let fixed_mod = policy.best_fixed_modulation(radio, gains_db);
    let mut adaptive_energy = 0.0;
    let mut fixed_energy = 0.0;
    let mut outages = 0;
    let best_effort = TxChoice {
        modulation: Modulation::Bpsk,
        tx_power_w: radio.max_tx_power_w,
        energy_j: radio.energy_per_bit_j(Modulation::Bpsk, radio.max_tx_power_w),
    };
    for &g in gains_db {
        let choice = policy.choose(radio, g).unwrap_or_else(|| {
            outages += 1;
            best_effort
        });
        adaptive_energy += choice.energy_j * bits_per_slot as f64;
        let p_fixed = policy
            .required_power_w(radio, fixed_mod, g)
            .unwrap_or(radio.max_tx_power_w);
        fixed_energy += radio.energy_per_bit_j(fixed_mod, p_fixed) * bits_per_slot as f64;
    }
    AdaptationReport {
        adaptive_energy_j: adaptive_energy,
        fixed_energy_j: fixed_energy,
        adaptive_outages: outages,
        slots: gains_db.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::FadingChannel;
    use dms_sim::SimRng;

    fn radio() -> Transceiver {
        Transceiver::default_radio().expect("preset valid")
    }

    #[test]
    fn transceiver_validation() {
        assert!(Transceiver::new(0.0, 0.1, 0.3, 0.1).is_err());
        assert!(Transceiver::new(1e6, -0.1, 0.3, 0.1).is_err());
        assert!(Transceiver::new(1e6, 0.1, 0.0, 0.1).is_err());
        assert!(Transceiver::new(1e6, 0.1, 1.5, 0.1).is_err());
        assert!(Transceiver::new(1e6, 0.1, 0.3, 0.0).is_err());
    }

    #[test]
    fn policy_validation() {
        assert!(AdaptivePolicy::new(0.0).is_err());
        assert!(AdaptivePolicy::new(0.5).is_err());
        assert!(AdaptivePolicy::new(1e-5).is_ok());
    }

    #[test]
    fn faster_modulation_cuts_airtime_energy() {
        let r = radio();
        let e_bpsk = r.energy_per_bit_j(Modulation::Bpsk, 0.1);
        let e_qam64 = r.energy_per_bit_j(Modulation::Qam64, 0.1);
        assert!((e_bpsk / e_qam64 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn required_power_grows_in_bad_channels() {
        let r = radio();
        let p = AdaptivePolicy::new(1e-5).expect("valid");
        let good = p
            .required_power_w(&r, Modulation::Qpsk, 30.0)
            .expect("feasible");
        let bad = p
            .required_power_w(&r, Modulation::Qpsk, 20.0)
            .expect("feasible");
        assert!(bad > good);
        // Terrible channel: infeasible.
        assert_eq!(p.required_power_w(&r, Modulation::Qam64, -20.0), None);
    }

    #[test]
    fn choose_prefers_denser_modulation_in_good_channels() {
        let r = radio();
        let p = AdaptivePolicy::new(1e-5).expect("valid");
        let good = p.choose(&r, 35.0).expect("feasible");
        let bad = p.choose(&r, 18.0).expect("feasible");
        assert!(
            good.modulation.bits_per_symbol() >= bad.modulation.bits_per_symbol(),
            "good {:?}, bad {:?}",
            good.modulation,
            bad.modulation
        );
        assert!(good.energy_j < bad.energy_j);
    }

    #[test]
    fn adaptive_never_loses_to_fixed() {
        let r = radio();
        let p = AdaptivePolicy::new(1e-5).expect("valid");
        let ch = FadingChannel::indoor().expect("preset valid");
        let trace = ch.snr_trace_db(5_000, &mut SimRng::new(7));
        let report = compare_over_trace(&r, &p, &trace, 10_000);
        assert!(report.adaptive_energy_j <= report.fixed_energy_j * 1.0001);
        assert!(report.saving() >= -1e-9);
    }

    #[test]
    fn headline_twelve_percent_saving() {
        // E6: ≈12% average transceiver-energy reduction. Exact numbers
        // depend on radio constants; we assert the saving lands in a
        // credible 5–35% band and is substantial.
        let r = radio();
        let p = AdaptivePolicy::new(1e-5).expect("valid");
        let ch = FadingChannel::indoor().expect("preset valid");
        let trace = ch.snr_trace_db(20_000, &mut SimRng::new(11));
        let report = compare_over_trace(&r, &p, &trace, 10_000);
        let s = report.saving();
        assert!(
            (0.05..=0.35).contains(&s),
            "saving {:.1}% outside band",
            s * 100.0
        );
        // Deep fades may cause a handful of best-effort slots.
        assert!(report.adaptive_outages < report.slots / 100);
    }

    #[test]
    fn static_channel_gives_no_saving() {
        let r = radio();
        let p = AdaptivePolicy::new(1e-5).expect("valid");
        let trace = vec![18.0; 1000];
        let report = compare_over_trace(&r, &p, &trace, 1000);
        assert!(report.saving().abs() < 1e-9);
    }

    #[test]
    fn outage_slots_are_counted() {
        let r = radio();
        let p = AdaptivePolicy::new(1e-7).expect("valid");
        let trace = vec![-30.0; 10];
        let report = compare_over_trace(&r, &p, &trace, 100);
        assert_eq!(report.adaptive_outages, 10);
    }
}
