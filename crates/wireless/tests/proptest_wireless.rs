//! Property-based tests for the wireless substrate.

use dms_media::fgs::FgsEncoder;
use dms_media::trace_gen::VideoTraceGenerator;
use dms_sim::SimRng;
use dms_wireless::dvfs::DvfsCpu;
use dms_wireless::fec::FecScheme;
use dms_wireless::modulation::{db_to_linear, Modulation};
use dms_wireless::transceiver::{AdaptivePolicy, Transceiver};
use proptest::prelude::*;

proptest! {
    /// BER is monotonically non-increasing in SNR for every scheme and
    /// always within [0, 0.5].
    #[test]
    fn ber_monotone_and_bounded(snr_db in -10.0f64..40.0, step in 0.1f64..10.0) {
        for m in Modulation::ALL {
            let low = m.ber(db_to_linear(snr_db));
            let high = m.ber(db_to_linear(snr_db + step));
            prop_assert!((0.0..=0.5).contains(&low));
            prop_assert!(high <= low + 1e-15, "{m:?}: BER rose with SNR");
        }
    }

    /// required_gamma_b is the *least* SNR meeting the target: it meets
    /// it, and 20% less does not.
    #[test]
    fn required_gamma_is_tight(exponent in 2.0f64..7.0) {
        let target = 10f64.powf(-exponent);
        for m in Modulation::ALL {
            let g = m.required_gamma_b(target).expect("achievable target");
            prop_assert!(m.ber(g) <= target * 1.01);
            prop_assert!(m.ber(g * 0.8) > target);
        }
    }

    /// The adaptive policy's choice is optimal: no other feasible
    /// modulation at that channel state is cheaper.
    #[test]
    fn adaptive_choice_is_optimal(gain_db in 14.0f64..40.0, ber_exp in 3.0f64..7.0) {
        let radio = Transceiver::default_radio().expect("preset valid");
        let policy = AdaptivePolicy::new(10f64.powf(-ber_exp)).expect("valid");
        if let Some(choice) = policy.choose(&radio, gain_db) {
            for m in Modulation::ALL {
                if let Some(p) = policy.required_power_w(&radio, m, gain_db) {
                    prop_assert!(
                        choice.energy_j <= radio.energy_per_bit_j(m, p) + 1e-18,
                        "{m:?} beats the chosen {:?}",
                        choice.modulation
                    );
                }
            }
            prop_assert!(choice.tx_power_w <= radio.max_tx_power_w);
        }
    }

    /// FGS truncation is monotone in the budget: more bits never lower
    /// PSNR, and sent bits never exceed the budget (beyond the mandatory
    /// base layer) or the total.
    #[test]
    fn fgs_truncation_monotone(seed in 0u64..200, budget_frac in 0.0f64..1.2) {
        let generator = VideoTraceGenerator::cif_mpeg2().expect("preset valid");
        let encoder = FgsEncoder::streaming_default().expect("preset valid");
        let frame = encoder.encode(&generator, 1, &mut SimRng::new(seed)).remove(0);
        let budget = (frame.total_bits() as f64 * budget_frac) as u64;
        let (sent, psnr) = frame.truncate_to(budget);
        prop_assert!(sent >= frame.base_bits);
        prop_assert!(sent <= frame.total_bits());
        prop_assert!(sent <= budget.max(frame.base_bits));
        prop_assert!(psnr >= frame.base_psnr_db - 1e-12);
        prop_assert!(psnr <= frame.max_psnr_db() + 1e-12);
        // Monotonicity against a larger budget.
        let (sent2, psnr2) = frame.truncate_to(budget.saturating_add(5_000));
        prop_assert!(sent2 >= sent);
        prop_assert!(psnr2 >= psnr - 1e-12);
    }

    /// DVFS: the slowest feasible point always meets the deadline, and
    /// no slower point does.
    #[test]
    fn slowest_feasible_is_tight(cycles in 1u64..2_000_000_000, deadline_ms in 1.0f64..2000.0) {
        let cpu = DvfsCpu::xscale().expect("preset valid");
        let deadline = deadline_ms / 1e3;
        match cpu.slowest_feasible(cycles, deadline) {
            Some(point) => {
                prop_assert!(cycles as f64 / point.frequency_hz <= deadline * (1.0 + 1e-12));
                // Any strictly slower point misses.
                for p in cpu.points() {
                    if p.frequency_hz < point.frequency_hz {
                        prop_assert!(cycles as f64 / p.frequency_hz > deadline);
                    }
                }
            }
            None => {
                let fastest = cpu.max_point();
                prop_assert!(cycles as f64 / fastest.frequency_hz > deadline);
            }
        }
    }

    /// FEC: stronger codes always cost more decoder work and more
    /// bandwidth never less.
    #[test]
    fn fec_order_is_consistent(_x in 0u8..1) {
        for w in FecScheme::ALL.windows(2) {
            prop_assert!(w[1].coding_gain_db() > w[0].coding_gain_db());
            prop_assert!(w[1].decoder_ops_per_bit() >= w[0].decoder_ops_per_bit());
            prop_assert!(w[1].expansion() >= w[0].expansion());
        }
    }
}
